"""Legacy setup shim.

The sandboxed environment ships setuptools without the ``wheel`` package,
so PEP-660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets ``python setup.py develop`` (and plain
``pip install .``) work offline.
"""

from setuptools import setup

setup()
