"""Fig. 9 — nodes skipped per query vs elision height.

Paper (tree height 14): eliding conflicts below level 2 skips ~100% of
nodes; at level 12 only ~10% are skipped.  Reproduction target: skips
decrease monotonically as the elision height rises, spanning at least a
4× range.
"""

import numpy as np

from repro.accel import workload_points
from repro.analysis import format_series, nodes_skipped_vs_elision_height

ELISION_HEIGHTS = (3, 5, 7, 9, 11)


def test_fig09_nodes_skipped_vs_elision(benchmark):
    points = workload_points("PointNet++ (c)")
    rng = np.random.default_rng(2)
    queries = points[rng.choice(len(points), 256, replace=False)]

    result = benchmark.pedantic(
        lambda: nodes_skipped_vs_elision_height(
            points, queries, 0.1, 16, top_height=2,
            elision_heights=ELISION_HEIGHTS,
        ),
        rounds=1, iterations=1,
    )
    print()
    print(format_series(
        "Fig. 9: normalized nodes skipped per query vs elision height",
        list(result.keys()), list(result.values()),
    ))
    values = [result[h] for h in ELISION_HEIGHTS]
    assert values[0] == 1.0  # most aggressive elision skips the most
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert values[-1] < 0.25
