"""Fig. 8 — nodes visited per query vs top-tree height.

Paper: increasing the top-tree height monotonically reduces per-query node
visits (only ~2% of nodes visited at h_t = 10 on KITTI-scale trees).
Reproduction target: monotone non-increasing, with the tallest split
visiting well under half the exact search's nodes.
"""

import numpy as np

from repro.accel import workload_points
from repro.analysis import format_series, nodes_visited_vs_top_height

HEIGHTS = (0, 2, 4, 6, 8)


def test_fig08_nodes_visited_vs_tth(benchmark):
    points = workload_points("PointNet++ (c)")
    rng = np.random.default_rng(1)
    queries = points[rng.choice(len(points), 256, replace=False)]

    result = benchmark.pedantic(
        lambda: nodes_visited_vs_top_height(points, queries, 0.1, 16, HEIGHTS),
        rounds=1, iterations=1,
    )
    print()
    print(format_series(
        "Fig. 8: normalized nodes visited per query vs top-tree height",
        list(result.keys()), list(result.values()),
    ))
    values = [result[h] for h in HEIGHTS]
    assert values[0] == 1.0
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert values[-1] < 0.5
