"""Fig. 14 — end-to-end speedup and normalized energy vs the baselines.

Paper: ANS averages 1.7× and ANS+BCE 1.9× speedup over Mesorasi (up to
2.8×/3.1× on DensePoint); ANS/ANS+BCE save 33%/36% energy; Tigris+GPU and
GPU are far slower and consume 25×/38× more energy than Mesorasi.
Reproduction target: same ordering, ANS+BCE ≥ 1.4× average speedup with
DensePoint the best network, energy saved on average, GPU ≫ Mesorasi
energy.
"""

import statistics

from repro.analysis import format_table, run_evaluation_suite


def test_fig14_speedup_and_energy(benchmark):
    suite = benchmark.pedantic(run_evaluation_suite, rounds=1, iterations=1)
    rows = []
    for name, r in suite.items():
        rows.append([
            name,
            f"{r.speedup_ans:.2f}x", f"{r.speedup_bce:.2f}x",
            f"{r.norm_energy_ans:.2f}", f"{r.norm_energy_bce:.2f}",
            f"{r.gpu_energy / r.mesorasi.energy.total:.0f}x",
            f"{r.tigris_gpu_energy / r.mesorasi.energy.total:.0f}x",
        ])
    print()
    print(format_table(
        "Fig. 14: end-to-end speedup / normalized energy (vs Mesorasi = 1)",
        ["network", "ANS speedup", "ANS+BCE speedup", "ANS energy",
         "ANS+BCE energy", "GPU energy", "Tigris+GPU energy"],
        rows,
    ))
    speedups_bce = [r.speedup_bce for r in suite.values()]
    avg = statistics.geometric_mean(speedups_bce)
    print(f"geomean ANS+BCE speedup: {avg:.2f}x (paper: 1.9x)")

    assert avg > 1.4
    best = max(suite.values(), key=lambda r: r.speedup_bce)
    assert best.name == "DensePoint"
    assert best.speedup_bce > 2.0
    for r in suite.values():
        assert r.speedup_bce >= r.speedup_ans * 0.95  # BCE adds on top of ANS
        assert r.norm_energy_bce < 1.0
        assert r.gpu_energy > 10 * r.mesorasi.energy.total
        assert r.tigris_gpu_energy < r.gpu_energy
        # GPU baselines are slower than any accelerator variant.
        assert r.gpu_cycles > r.mesorasi.cycles
