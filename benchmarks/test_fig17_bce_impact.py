"""Fig. 17 — bank-conflict reduction and tree-node-access reduction of
ANS+BCE relative to ANS.

Paper: BCE elides >45% of bank conflicts and cuts ~50% of tree node
accesses in neighbor search.  Reproduction target: on every network, BCE
meaningfully reduces both the stall-causing conflicts and the node visits
relative to ANS alone.
"""

from repro.analysis import format_table, run_evaluation_suite


def _search_reports(result):
    """Aggregate per-layer search reports of a network run."""
    conflicts = sum(l.search.report.tree_sram.conflicted for l in result.layers)
    stalls = sum(l.search.report.stall_cycles for l in result.layers)
    visits = sum(l.search.report.traversal.nodes_visited for l in result.layers)
    return conflicts, stalls, visits


def test_fig17_bce_reductions(benchmark):
    suite = benchmark.pedantic(run_evaluation_suite, rounds=1, iterations=1)
    rows = []
    for name, r in suite.items():
        _, ans_stalls, ans_visits = _search_reports(r.ans)
        _, bce_stalls, bce_visits = _search_reports(r.ans_bce)
        stall_red = 1.0 - bce_stalls / max(ans_stalls, 1)
        visit_red = 1.0 - bce_visits / max(ans_visits, 1)
        rows.append([name, f"{stall_red * 100:.1f}", f"{visit_red * 100:.1f}"])
    print()
    print(format_table(
        "Fig. 17: ANS+BCE vs ANS (paper: >45% conflict, ~50% node reduction)",
        ["network", "conflict-stall reduction (%)", "node access reduction (%)"],
        rows,
    ))
    for name, r in suite.items():
        _, ans_stalls, ans_visits = _search_reports(r.ans)
        _, bce_stalls, bce_visits = _search_reports(r.ans_bce)
        assert bce_stalls < ans_stalls, name  # elision removes stalls
        assert bce_visits < ans_visits, name  # skipped subtrees
        assert 1.0 - bce_visits / ans_visits > 0.10, name
