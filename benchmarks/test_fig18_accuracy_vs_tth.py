"""Fig. 18 — dedicated-model accuracy vs top-tree height.

Paper (PointNet++(c)): accuracy decays gently up to h_t = 4 (89.6% →
88.8%) and faster beyond (84.4% at h_t = 12).  Reproduction target: the
h_t sweep is (weakly) decreasing overall and the drop from exact to the
mid-range h_t is small compared to the drop at the aggressive end.
"""

import paperbench as pb
from repro.analysis import format_series
from repro.core import ApproxSetting

# Not slow-marked since PR 8: the dedicated trainers ride the stacked
# mini-batch path (tape autograd, one forward/backward per chunk), which
# brings the four trainings down to smoke-lane runtime, so training
# correctness is exercised in the default CI matrix.  Training is fully
# seeded/deterministic, so the trend margins below are stable run to run.

HEIGHTS = (0, 2, 4, 6)


def test_fig18_dedicated_accuracy_vs_tth(benchmark):
    def run():
        accs = {}
        test = pb.cls_test_set()
        for ht in HEIGHTS:
            trainer = pb.classification_trainer(
                "PointNet++ (c)", ("fixed", ht, None),
                batch_size=pb.FIG18_TRAIN_BATCH,
            )
            accs[ht] = trainer.evaluate(test, ApproxSetting(ht, None))
        return accs

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series(
        "Fig. 18: dedicated PointNet++(c) accuracy vs top-tree height",
        list(accs.keys()), list(accs.values()),
    ))
    # Gentle decay: the best setting is at/near exact search, the worst at
    # the aggressive end; mid-range stays within a few points of exact.
    assert accs[0] >= accs[HEIGHTS[-1]] - 0.02
    assert max(accs.values()) - min(accs.values()) < 0.45
    assert accs[0] > 0.5  # the baseline model actually learned the task
