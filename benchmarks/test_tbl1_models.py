"""Table 1 — the evaluation suite: models, tasks, datasets, metrics.

Verifies the registry reproduces the paper's suite and that every model
is constructable and runnable end to end.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ApproxSetting
from repro.geometry import generate_scene, sample_shape
from repro.models import MODEL_REGISTRY, build_model, frustum_crop


def test_tbl1_model_suite(benchmark):
    def run():
        outputs = {}
        shape = sample_shape("cube", np.random.default_rng(0), num_points=128)
        scene = generate_scene(np.random.default_rng(0), num_points=1024, num_cars=1)
        for name, entry in MODEL_REGISTRY.items():
            model = build_model(name, num_classes=8, seed=0)
            model.eval()
            if entry.task == "detection":
                crop = frustum_crop(scene.cloud.points, scene.boxes[0].center[:2],
                                    max_points=128)
                outputs[name] = model(crop, ApproxSetting()).box_params.shape
            else:
                outputs[name] = model(shape.points, ApproxSetting()).shape
        return outputs

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [e.name, e.task, e.paper_dataset, e.dataset, e.metric]
        for e in MODEL_REGISTRY.values()
    ]
    print()
    print(format_table(
        "Table 1: evaluation models",
        ["model", "task", "paper dataset", "our dataset", "metric"], rows,
    ))
    assert len(outputs) == 4
    assert outputs["PointNet++ (c)"] == (1, 8)
    assert outputs["PointNet++ (s)"][1] == 8
    assert outputs["F-PointNet"] == (1, 8)
