"""Fig. 15 — neighbor-search and aggregation speedups in isolation.

Paper: ANS+BCE speeds up neighbor search by 4.9× and aggregation by 2.1×
on average, with sizeable energy savings on both stages.  Reproduction
target: both stages accelerate on every network, and the stage speedups
exceed the end-to-end speedup (Amdahl).
"""

import statistics

from repro.analysis import format_table, run_evaluation_suite


def test_fig15_stage_speedups(benchmark):
    suite = benchmark.pedantic(run_evaluation_suite, rounds=1, iterations=1)
    rows = []
    search_speedups, agg_speedups = [], []
    for name, r in suite.items():
        search = r.mesorasi.search_cycles / max(r.ans_bce.search_cycles, 1)
        agg = r.mesorasi.aggregation_cycles / max(r.ans_bce.aggregation_cycles, 1)
        search_speedups.append(search)
        agg_speedups.append(agg)
        rows.append([name, f"{search:.2f}x", f"{agg:.2f}x"])
    print()
    print(format_table(
        "Fig. 15: stage speedups of ANS+BCE (paper avg: search 4.9x, agg 2.1x)",
        ["network", "neighbor search", "aggregation"], rows,
    ))
    print(f"geomean: search {statistics.geometric_mean(search_speedups):.2f}x, "
          f"aggregation {statistics.geometric_mean(agg_speedups):.2f}x")

    for name, r in suite.items():
        search = r.mesorasi.search_cycles / max(r.ans_bce.search_cycles, 1)
        agg = r.mesorasi.aggregation_cycles / max(r.ans_bce.aggregation_cycles, 1)
        end_to_end = r.speedup_bce
        assert search > 1.5, name
        assert agg > 1.2, name
        assert search > end_to_end, name  # Amdahl: the MLP stage is untouched
