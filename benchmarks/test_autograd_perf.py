"""Benchmark-lane guard for the tape autograd engine + stacked batching.

PR 8's tentpole retires the last per-sample Python hot path: ops record
onto a flat tape replayed in reverse, and the models/trainer stack a
leading sample axis so one forward/backward covers a whole mini-batch.
This bench pins both halves against the frozen closure-walking reference
engine (:class:`repro.nn.ReferenceTensor`) on a model-shaped workload —
MLP feature lift, neighbor gather, per-group max-pool, global pool,
cross-entropy — and asserts

* identity: every per-sample loss of the batched tape pass equals the
  reference engine's scalar loss bit for bit, and parameter gradients
  agree to float64 resolution (accumulation order differs, so bitwise
  equality is not the contract for grads);
* speed: one batched tape pass is >= 3x faster than the per-sample
  reference loop.  The full gap measures well above the floor; the slack
  absorbs shared-runner throttling without ever re-admitting a
  per-sample Python loop.
"""

import time

import numpy as np
import pytest

from repro.nn import ReferenceTensor, Tensor

BATCH = 256
N_POINTS = 16
K_NEIGHBORS = 4
HIDDEN = 16
CLASSES = 8
ROUNDS = 3
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(20260808)
    clouds = rng.normal(scale=0.5, size=(BATCH, N_POINTS, 3))
    indices = rng.integers(0, N_POINTS, size=(BATCH, N_POINTS, K_NEIGHBORS))
    labels = rng.integers(0, CLASSES, size=BATCH)
    onehot = np.eye(CLASSES)[labels]
    params = {
        "w1": rng.normal(scale=0.3, size=(3, HIDDEN)),
        "b1": np.zeros(HIDDEN),
        "w2": rng.normal(scale=0.3, size=(HIDDEN, HIDDEN)),
        "b2": np.zeros(HIDDEN),
        "w3": rng.normal(scale=0.3, size=(HIDDEN, HIDDEN)),
        "b3": np.zeros(HIDDEN),
        "w4": rng.normal(scale=0.3, size=(HIDDEN, CLASSES)),
        "b4": np.zeros(CLASSES),
    }
    return clouds, indices, onehot, params


def _params(tensor_cls, raw):
    return {k: tensor_cls(v.copy(), requires_grad=True) for k, v in raw.items()}


def _head(tensor_cls, features, pooled_axis_max, onehot_row):
    """Global pool -> logits -> cross-entropy, engine-generic."""
    logits = pooled_axis_max @ features["w4"] + features["b4"]
    shifted = logits - tensor_cls(logits.data.max(axis=-1, keepdims=True))
    logp = shifted - shifted.exp().sum(axis=-1, keepdims=True).log()
    picked = (logp * tensor_cls(onehot_row)).sum(axis=-1)
    return picked


def run_reference(clouds, indices, onehot, raw_params):
    """The per-sample closure-engine loop the tape engine retired."""
    params = _params(ReferenceTensor, raw_params)
    losses = np.empty(BATCH)
    for b in range(BATCH):
        lifted = (ReferenceTensor(clouds[b]) @ params["w1"] + params["b1"]).relu()
        feats = (lifted @ params["w2"] + params["b2"]).relu()  # (N, H)
        gathered = feats.take(indices[b].reshape(-1)).reshape(
            N_POINTS, K_NEIGHBORS, HIDDEN
        )
        grouped = gathered.max(axis=-2)  # (N, H)
        refined = (grouped @ params["w3"] + params["b3"]).relu()  # (N, H)
        pooled = refined.max(axis=-2, keepdims=True)  # (1, H)
        picked = _head(ReferenceTensor, params, pooled, onehot[b][None, :])
        loss = -picked.mean()
        loss.backward()  # grads accumulate across samples
        losses[b] = loss.data
    grads = {k: p.grad for k, p in params.items()}
    return losses, grads


def run_batched_tape(clouds, indices, onehot, raw_params):
    """One stacked forward/backward on the tape engine."""
    params = _params(Tensor, raw_params)
    lifted = (Tensor(clouds) @ params["w1"] + params["b1"]).relu()  # (B, N, H)
    feats = (lifted @ params["w2"] + params["b2"]).relu()
    gathered = feats.gather_rows(
        indices.reshape(BATCH, N_POINTS * K_NEIGHBORS)
    ).reshape(BATCH, N_POINTS, K_NEIGHBORS, HIDDEN)
    grouped = gathered.max(axis=-2)  # (B, N, H)
    refined = (grouped @ params["w3"] + params["b3"]).relu()
    pooled = refined.max(axis=-2, keepdims=True)  # (B, 1, H)
    picked = _head(Tensor, params, pooled, onehot[:, None, :])
    per_sample = -picked.reshape(BATCH, -1).mean(axis=-1)  # (B,)
    per_sample.sum().backward()  # same total as the accumulating loop
    grads = {k: p.grad for k, p in params.items()}
    return per_sample.data.copy(), grads


def test_batched_tape_matches_reference_loop(workload):
    clouds, indices, onehot, raw = workload
    ref_losses, ref_grads = run_reference(clouds, indices, onehot, raw)
    tape_losses, tape_grads = run_batched_tape(clouds, indices, onehot, raw)
    # Per-sample losses: bit-identical (row-local arithmetic everywhere).
    assert tape_losses.tobytes() == ref_losses.tobytes()
    # Gradients: same sums in a different order — float64-close, not bitwise.
    for k in raw:
        np.testing.assert_allclose(
            tape_grads[k], ref_grads[k], rtol=1e-10, atol=1e-12
        )


def test_batched_tape_speed_floor(workload):
    clouds, indices, onehot, raw = workload
    run_reference(clouds, indices, onehot, raw)  # warm both paths
    run_batched_tape(clouds, indices, onehot, raw)
    ref_t = min(
        _timed(run_reference, clouds, indices, onehot, raw) for _ in range(ROUNDS)
    )
    tape_t = min(
        _timed(run_batched_tape, clouds, indices, onehot, raw) for _ in range(ROUNDS)
    )
    speedup = ref_t / tape_t
    print(
        f"\nper-sample reference loop: {ref_t * 1e3:.1f} ms; "
        f"batched tape: {tape_t * 1e3:.1f} ms; speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched tape only {speedup:.2f}x faster than the per-sample "
        f"reference loop (floor {MIN_SPEEDUP}x)"
    )


def _timed(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
