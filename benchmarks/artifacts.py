"""Per-PR perf-trajectory artifacts (the ROADMAP BENCH substrate, first slice).

The smoke-lane perf benches used to leave nothing behind but a pass/fail
floor assert: the measured throughput and speedup numbers evaporated with
the CI log, so a PR that halved a hot path's margin — while staying above
the static floor — was invisible.  This writer gives each bench one call
to persist its measurements as ``BENCH_<area>.json``; the CI smoke lane
uploads the files as build artifacts, so the perf trajectory accumulates
across PRs and regressions show up as a number moving, not a floor
finally tripping.

Records are shallow-merged per area: several tests in one bench module
(e.g. cold-build and end-to-end serving in ``test_treebuild_perf.py``)
contribute sections to the same file without clobbering each other.
Every record carries the schema version, a wall-clock stamp, and the
process's peak RSS alongside the bench's own payload (throughput,
speedup, cloud size, ...).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from typing import Dict, Sequence

__all__ = [
    "ARTIFACT_DIR_ENV",
    "latency_percentiles",
    "peak_rss_bytes",
    "write_bench_artifact",
]

# Benches write into $REPRO_BENCH_DIR (CI leaves the default, so the
# upload step globs bench_artifacts/BENCH_*.json at the workspace root).
ARTIFACT_DIR_ENV = "REPRO_BENCH_DIR"
DEFAULT_DIR = "bench_artifacts"
SCHEMA_VERSION = 1


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def latency_percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """p50/p99 of per-request latency ``samples`` (seconds), as ms fields.

    The shared shape serve-record payloads carry: ``{"p50_ms", "p99_ms"}``,
    nearest-rank on the sorted samples so a tiny bench population doesn't
    interpolate a latency no request actually saw.  Empty input yields an
    empty dict (the bench simply contributes no latency section).
    """
    ordered = sorted(float(s) for s in samples)
    if not ordered:
        return {}

    def rank(q: float) -> float:
        idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[idx]

    return {
        "p50_ms": round(rank(0.50) * 1000.0, 3),
        "p99_ms": round(rank(0.99) * 1000.0, 3),
    }


def write_bench_artifact(area: str, payload: Dict) -> str:
    """Merge ``payload`` into ``BENCH_<area>.json``; return the path.

    ``area`` names the subsystem (``treebuild``, ``serve``, ...).  An
    existing record for the area is updated key-by-key, so independent
    tests can each contribute their section; the stamp, schema, and peak
    RSS refresh on every write.
    """
    directory = os.environ.get(ARTIFACT_DIR_ENV) or DEFAULT_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{area}.json")
    record: Dict = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if isinstance(existing, dict):
                record = existing
        except (OSError, ValueError):
            record = {}  # a torn or foreign file is replaced, not fatal
    record.update(payload)
    record["schema"] = SCHEMA_VERSION
    record["area"] = area
    record["created_unix"] = round(time.time(), 3)
    record["peak_rss_bytes"] = peak_rss_bytes()
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
