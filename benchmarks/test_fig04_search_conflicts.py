"""Fig. 4 — neighbor-search bank conflict rate vs number of banks.

Paper (PointNet++(c), 8 concurrent queries): 26.9% conflicts at 4 banks,
dropping to 2.1% only when banks = 4× concurrent requests.  Reproduction
target: the rate decreases monotonically with the bank count and remains
substantial (>10%) at 4 banks.
"""

from repro.analysis import format_series, search_conflict_rate_vs_banks

BANKS = (2, 4, 8, 16, 32)


def test_fig04_conflict_rate_vs_banks(benchmark):
    rates = benchmark.pedantic(
        lambda: search_conflict_rate_vs_banks(BANKS), rounds=1, iterations=1
    )
    print()
    print(format_series(
        "Fig. 4: K-d search bank conflict rate vs #banks (8 queries)",
        list(rates.keys()), [f"{v * 100:.1f}%" for v in rates.values()],
    ))
    values = [rates[b] for b in BANKS]
    assert all(a >= b for a, b in zip(values, values[1:])), "must fall with banks"
    assert rates[4] > 0.10
    assert rates[32] < rates[2] / 2
