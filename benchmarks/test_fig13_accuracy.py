"""Fig. 13 — accuracy: baseline vs ANS+BCE without retraining vs ANS /
ANS+BCE with approximation-aware retraining, on all four networks.

Paper: applying the approximations without retraining loses 27.3–40.5
points (models become useless); retraining recovers to within 0.9% of the
baseline.  Reproduction target: the no-retrain column collapses (≥10-point
drop) while retrained columns land within a few points of the baseline.
"""

import pytest

import paperbench as pb
from repro.analysis import format_table
from repro.core import ApproxSetting

pytestmark = pytest.mark.slow

SETTING_ANS = ApproxSetting(pb.HEADLINE_HT, None)
SETTING_BCE = ApproxSetting(pb.HEADLINE_HT, pb.HEADLINE_HE)


def _classification_row(model_name):
    base = pb.classification_trainer(model_name, pb.baseline_key())
    ans = pb.classification_trainer(model_name, pb.ans_key())
    bce = pb.classification_trainer(model_name, pb.bce_key())
    test = pb.cls_test_set()
    return {
        "baseline": base.evaluate(test, ApproxSetting(0, None)),
        "no_retrain": base.evaluate(test, SETTING_BCE),
        "ans_retrain": ans.evaluate(test, SETTING_ANS),
        "bce_retrain": bce.evaluate(test, SETTING_BCE),
    }


def _segmentation_row():
    base = pb.segmentation_trainer(pb.baseline_key())
    ans = pb.segmentation_trainer(pb.ans_key())
    bce = pb.segmentation_trainer(pb.bce_key())
    test = pb.seg_test_set()
    return {
        "baseline": base.evaluate(test, ApproxSetting(0, None)),
        "no_retrain": base.evaluate(test, SETTING_BCE),
        "ans_retrain": ans.evaluate(test, SETTING_ANS),
        "bce_retrain": bce.evaluate(test, SETTING_BCE),
    }


def _detection_row():
    base = pb.detection_trainer(pb.baseline_key())
    ans = pb.detection_trainer(pb.ans_key())
    bce = pb.detection_trainer(pb.bce_key())
    test = pb.det_test_set()
    return {
        "baseline": base.evaluate(test, ApproxSetting(0, None)),
        "no_retrain": base.evaluate(test, SETTING_BCE),
        "ans_retrain": ans.evaluate(test, SETTING_ANS),
        "bce_retrain": bce.evaluate(test, SETTING_BCE),
    }


def test_fig13_accuracy_recovery(benchmark):
    def run():
        return {
            "PointNet++ (c)": _classification_row("PointNet++ (c)"),
            "DensePoint": _classification_row("DensePoint"),
            "PointNet++ (s)": _segmentation_row(),
            "F-PointNet": _detection_row(),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        [name, f"{r['baseline']:.3f}", f"{r['ans_retrain']:.3f}",
         f"{r['bce_retrain']:.3f}", f"{r['no_retrain']:.3f}"]
        for name, r in rows.items()
    ]
    print()
    print(format_table(
        "Fig. 13: accuracy under approximation (metric per Table 1)",
        ["network", "baseline", "ANS w/ retrain", "ANS+BCE w/ retrain",
         "ANS+BCE w/o retrain"],
        table,
    ))
    for name in ("PointNet++ (c)", "DensePoint"):
        r = rows[name]
        # No-retrain collapse and retrained recovery, as in the paper.
        assert r["no_retrain"] < r["baseline"] - 0.08, name
        assert r["bce_retrain"] > r["no_retrain"] + 0.08, name
        assert r["bce_retrain"] > r["baseline"] - 0.25, name
        # Retraining for the ANS setting never does worse than running the
        # approximations on unprepared weights.
        assert r["ans_retrain"] >= r["no_retrain"] - 0.05, name
    # Segmentation/detection: retrained ANS+BCE must beat no-retrain.
    for name in ("PointNet++ (s)", "F-PointNet"):
        r = rows[name]
        assert r["bce_retrain"] > r["no_retrain"] - 0.02, name
        assert r["baseline"] > r["no_retrain"], name
