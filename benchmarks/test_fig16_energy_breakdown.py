"""Fig. 16 — memory energy-saving contribution breakdown.

Paper: savings decompose into DRAM traffic reduction, random→streaming
DRAM conversion, SRAM traffic reduction in neighbor search, and SRAM
traffic reduction in aggregation; SRAM-side search savings are the
largest contributor.  Reproduction target: all four components are
non-negative, sum to 1, and the SRAM search component is material
(>10%) for every network.
"""

from repro.analysis import (
    energy_saving_contributions,
    format_table,
    run_evaluation_suite,
)

COMPONENTS = ("dram_traffic", "dram_streaming", "sram_search", "sram_aggregation")


def test_fig16_energy_saving_contributions(benchmark):
    def run():
        suite = run_evaluation_suite()
        return {name: energy_saving_contributions(r) for name, r in suite.items()}

    contributions = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{c[key] * 100:.1f}" for key in COMPONENTS]
        for name, c in contributions.items()
    ]
    print()
    print(format_table(
        "Fig. 16: memory energy saving contribution (%)",
        ["network", "DRAM traffic", "DRAM streaming", "SRAM search",
         "SRAM aggregation"],
        rows,
    ))
    for name, c in contributions.items():
        total = sum(c.values())
        assert abs(total - 1.0) < 1e-6, name
        assert all(v >= 0 for v in c.values()), name
        assert c["sram_search"] > 0.10, name
