"""Benchmark-suite configuration.

Each ``test_figXX_*.py`` regenerates one paper figure/table: it runs the
experiment through the library, prints the paper-style rows (visible with
``pytest benchmarks/ --benchmark-only -s``), and asserts the figure's
qualitative shape (who wins, monotonicity, crossovers).
"""

import sys
from pathlib import Path

# Make `import paperbench` work regardless of pytest rootdir configuration.
sys.path.insert(0, str(Path(__file__).parent))
