"""Benchmark-lane guard for the sharded multi-process serving tier.

The sharded tier exists to serve *distinct* clouds in parallel: the
single-process service flushes its digest groups serially behind one GIL,
while the dispatcher spreads them across worker processes that sweep
concurrently.  A regression that quietly serialized the shards (a shared
lock, a dispatcher that waits for each reply before sending the next
batch, workers degenerating to one) would keep every result bit-identical
while erasing the tier's entire reason to exist — so this bench runs in
the CI smoke lane and pins both properties: results identical to the
single-process service, and an all-distinct-cloud trace served at least
``MIN_SPEEDUP`` times faster.

The floor is conservative: with four workers over a balanced eight-cloud
trace the ideal is ~4x and CI runners measure well above 2.5x, so 2.0x
clears runner noise while staying far above the ~1x a serialized tier
measures.  Multi-core only — on fewer than four cores the workers time-
slice one CPU and the comparison measures the scheduler, not the tier.
"""

import os
import time

import numpy as np
import pytest

from repro.runtime import SearchSession
from repro.runtime.session import geometry_digest
from repro.serve import QueryService, ShardedQueryService

N_WORKERS = 4
N_CLOUDS = 8  # all distinct: the anti-coalescing, pro-sharding workload
CLOUD_SIZE = 4096
REQUESTS_PER_CLOUD = 6
QUERIES_PER_REQUEST = 128
RADIUS = 0.25
MAX_NEIGHBORS = 16
MIN_SPEEDUP = 2.0
RUNS = 3

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < N_WORKERS,
    reason=f"sharded scaling bench needs >= {N_WORKERS} cores",
)


def make_balanced_clouds(rng):
    """Draw distinct clouds until every shard slot owns exactly two.

    Digest routing is static hash-mod, so a random draw can skew the
    shards; balancing the draw makes the measured speedup a property of
    the tier, not of one seed's hash luck.
    """
    per_slot = N_CLOUDS // N_WORKERS
    owned = {slot: 0 for slot in range(N_WORKERS)}
    clouds = []
    while len(clouds) < N_CLOUDS:
        points = rng.normal(size=(CLOUD_SIZE, 3))
        digest = geometry_digest(np.asarray(points, dtype=np.float64))
        slot = int(digest[:16], 16) % N_WORKERS
        if owned[slot] < per_slot:
            owned[slot] += 1
            clouds.append(points)
    return clouds


def make_trace(rng, clouds):
    trace = []
    for cloud in clouds:
        for _ in range(REQUESTS_PER_CLOUD):
            queries = cloud[rng.integers(0, CLOUD_SIZE, size=QUERIES_PER_REQUEST)]
            trace.append((cloud, queries, RADIUS, MAX_NEIGHBORS))
    return trace


def test_sharded_tier_scales_past_single_process():
    rng = np.random.default_rng(20260730)
    clouds = make_balanced_clouds(rng)
    trace = make_trace(rng, clouds)

    # Single-process side: one warm session (trees prebuilt) so the
    # comparison is serving, not tree construction.
    session = SearchSession()
    for cloud in clouds:
        session.tree_for(cloud)

    def single_process():
        service = QueryService(session=session)
        tickets = [service.submit(*request) for request in trace]
        service.flush()
        return [ticket.result() for ticket in tickets]

    single_results = None
    single_time = float("inf")
    for _ in range(RUNS):
        t0 = time.perf_counter()
        single_results = single_process()
        single_time = min(single_time, time.perf_counter() - t0)

    with ShardedQueryService(num_workers=N_WORKERS) as service:
        # Registration is the warm-up: clouds ship once and the workers
        # build their trees eagerly, so the timed runs are handle-only.
        handles = {id(cloud): service.register(cloud) for cloud in clouds}
        sharded_results = None
        sharded_time = float("inf")
        for _ in range(RUNS):
            t0 = time.perf_counter()
            tickets = [
                service.submit_handle(handles[id(cloud)], queries, radius, k)
                for cloud, queries, radius, k in trace
            ]
            service.flush()
            sharded_results = [ticket.result() for ticket in tickets]
            sharded_time = min(sharded_time, time.perf_counter() - t0)
        stats = service.stats
        # No recovery events may pollute the measurement, every request
        # must be served, and each run must sweep once per distinct cloud.
        assert stats.respawns == 0 and stats.requeued_requests == 0
        assert stats.requests == RUNS * len(trace)
        assert stats.failed_requests == 0
        assert stats.sweeps == RUNS * N_CLOUDS

    # Identity: the sharded tier is a transparent drop-in.
    for (si, sc), (gi, gc) in zip(single_results, sharded_results):
        np.testing.assert_array_equal(gi, si)
        np.testing.assert_array_equal(gc, sc)

    speedup = single_time / sharded_time
    assert speedup >= MIN_SPEEDUP, (
        f"sharded tier only {speedup:.2f}x faster "
        f"({single_time:.3f}s single-process vs {sharded_time:.3f}s sharded)"
    )
