"""Fig. 2 — percentage of non-continuous DRAM accesses in neighbor search.

Paper: 99.54–99.95% of DRAM accesses in K-d tree neighbor search are
non-continuous across the four networks.  Reproduction target: the
overwhelming majority (>90%) of accesses are non-streaming for every
network.
"""

from repro.accel import evaluation_networks
from repro.analysis import format_table, nonstreaming_fraction

PAPER = {
    "PointNet++ (c)": 0.9995,
    "PointNet++ (s)": 0.9995,
    "DensePoint": 0.9993,
    "F-PointNet": 0.9954,
}


def test_fig02_nonstreaming_fraction(benchmark):
    def run():
        return {
            name: nonstreaming_fraction(name)
            for name in evaluation_networks()
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{PAPER[name] * 100:.2f}", f"{measured[name] * 100:.2f}"]
        for name in measured
    ]
    print()
    print(format_table(
        "Fig. 2: non-continuous DRAM accesses in neighbor search (%)",
        ["network", "paper", "measured"], rows,
    ))
    for name, frac in measured.items():
        assert frac > 0.90, f"{name}: only {frac:.2%} non-streaming"
