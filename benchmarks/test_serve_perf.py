"""Benchmark-lane guard for the request-coalescing serving layer.

The serving front-end exists to turn N concurrent same-cloud requests
into one merged frontier sweep; a regression that quietly serves them one
sweep per request would keep every result bit-identical while destroying
the throughput the subsystem was built for.  This bench runs in the CI
smoke lane (it is *not* marked slow): a down-scaled same-cloud request
trace with heterogeneous ``(radius, K)`` settings, an identity check of
the coalesced results against per-request serving, and a conservative
speed floor — well under the margin the full-size
``tests/test_runtime_perf.py`` bench demonstrates, so shared-runner noise
cannot flake it, but far above the ~1x a per-request fallback measures.
The measured numbers land in ``BENCH_serve.json`` (see :mod:`artifacts`),
uploaded by CI so the serving-throughput trajectory accumulates across
PRs.
"""

import time

import numpy as np

from artifacts import latency_percentiles, write_bench_artifact
from repro.runtime import SearchSession
from repro.serve import QueryService

N_POINTS = 1024
N_REQUESTS = 64
QUERIES_PER_REQUEST = 8
RADII = (0.1, 0.15, 0.25)
MAX_NEIGHBORS = (8, 16, 32)
MIN_SPEEDUP = 3.0


def make_trace(rng):
    points = rng.normal(size=(N_POINTS, 3))
    trace = []
    for i in range(N_REQUESTS):
        queries = points[rng.integers(0, N_POINTS, size=QUERIES_PER_REQUEST)]
        trace.append(
            (points, queries, RADII[i % len(RADII)], MAX_NEIGHBORS[i % len(MAX_NEIGHBORS)])
        )
    return points, trace


def test_coalesced_service_does_not_regress():
    rng = np.random.default_rng(20260730)
    points, trace = make_trace(rng)
    # Both sides share one warm session: the comparison is coalescing
    # versus per-request serving, not tree construction.
    session = SearchSession()
    session.tree_for(points)

    def coalesced():
        service = QueryService(session=session)
        tickets = [service.submit(*request) for request in trace]
        service.flush()
        waits = [ticket.wait for ticket in tickets]
        return [ticket.result() for ticket in tickets], service.stats, waits

    def sequential():
        service = QueryService(session=session)
        return [service.query(*request) for request in trace]

    coalesced()  # warm-up
    t0 = time.perf_counter()
    sequential_results = sequential()
    sequential_time = time.perf_counter() - t0
    coalesced_time = float("inf")
    coalesced_results = stats = waits = None
    for _ in range(3):
        t0 = time.perf_counter()
        attempt_results, attempt_stats, attempt_waits = coalesced()
        elapsed = time.perf_counter() - t0
        if elapsed < coalesced_time:
            coalesced_time = elapsed
            coalesced_results, stats, waits = (
                attempt_results,
                attempt_stats,
                attempt_waits,
            )

    # Identity: the coalesced stream equals per-request serving.
    for (ci, cc), (si, sc) in zip(coalesced_results, sequential_results):
        np.testing.assert_array_equal(ci, si)
        np.testing.assert_array_equal(cc, sc)
    # The whole same-cloud trace must have merged into one sweep.
    assert stats.sweeps == 1
    assert stats.coalesce_factor == N_REQUESTS

    speedup = sequential_time / coalesced_time
    write_bench_artifact(
        "serve",
        {
            "cloud_size": N_POINTS,
            "requests": N_REQUESTS,
            "queries_per_request": QUERIES_PER_REQUEST,
            "coalesce_factor": stats.coalesce_factor,
            "s_sequential": round(sequential_time, 4),
            "s_coalesced": round(coalesced_time, 4),
            "speedup": round(speedup, 2),
            "requests_per_s": round(N_REQUESTS / coalesced_time, 1),
            # Per-request submit-to-serve latency over the best run.
            **latency_percentiles(waits),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"coalesced serving only {speedup:.2f}x faster "
        f"({sequential_time:.3f}s sequential vs {coalesced_time:.3f}s coalesced)"
    )
