"""Benchmark-lane guard for the vectorized lockstep engine.

The figure benchmarks lean on :class:`repro.runtime.VectorizedLockstep`
for every conflict-simulated search, so a regression that silently sends
the hot path back to per-step Python speed would slow the whole suite
without failing anything.  This bench runs in the CI smoke lane (it is
*not* marked slow): a down-scaled lockstep workload, an identity check
against the reference engine, and a conservative speed floor — well under
the ≥5x the full-size ``tests/test_runtime_perf.py`` bench demonstrates,
so shared-runner noise cannot flake it, but far above any Python-loop
fallback (which measures at ~0.3x-1x here).
"""

import time

import numpy as np
import pytest

from repro.core import TreeBufferBanking
from repro.kdtree import build_kdtree
from repro.memsim import SramStats
from repro.runtime import VectorizedLockstep

N_POINTS = 2048
N_QUERIES = 1024
RADIUS = 0.25
MAX_NEIGHBORS = 16
TOP_HEIGHT = 5  # proportional split for the height-12 tree
ELISION = 9
NUM_PES = 8
NUM_BANKS = 8
MIN_SPEEDUP = 1.8


@pytest.fixture(scope="module")
def workload(lockstep_groups_builder):
    rng = np.random.default_rng(20260730)
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)[:N_QUERIES]]
    tree = build_kdtree(pts)
    groups, split = lockstep_groups_builder(tree, queries, TOP_HEIGHT)
    return tree, queries, split, groups


def run_vectorized(tree, queries, groups):
    sram = SramStats()
    engine = VectorizedLockstep(
        tree, banking=TreeBufferBanking(NUM_BANKS), num_pes=NUM_PES
    )
    mach_queries = np.concatenate([q for _, q in groups])
    outcome = engine.run(
        queries, RADIUS, groups,
        np.full(len(mach_queries), MAX_NEIGHBORS, dtype=np.int64),
        elide_depth=ELISION, sram=sram,
    )
    hits = {int(q): h for q, h in zip(mach_queries, outcome.hits)}
    return outcome.cycles, outcome.stalls, hits, sram


def test_lockstep_vectorization_does_not_regress(workload, reference_lockstep_driver):
    tree, queries, split, groups = workload
    run_vectorized(tree, queries, groups)  # warm-up

    def run_reference():
        cycles, stalls, hits, _, sram = reference_lockstep_driver(
            tree, queries, split, groups, RADIUS, MAX_NEIGHBORS, ELISION,
            NUM_PES, TreeBufferBanking(NUM_BANKS),
        )
        return cycles, stalls, hits, sram

    t0 = time.perf_counter()
    ref = run_reference()
    ref_time = time.perf_counter() - t0
    vec_time = float("inf")
    vec = None
    for _ in range(3):
        t0 = time.perf_counter()
        vec = run_vectorized(tree, queries, groups)
        vec_time = min(vec_time, time.perf_counter() - t0)

    assert vec[0] == ref[0]  # cycles
    assert vec[1] == ref[1]  # stalls
    assert vec[2] == ref[2]  # per-machine hit lists
    for field in ("accesses", "conflicted", "elided", "broadcasts",
                  "reads_served", "cycles"):
        assert getattr(vec[3], field) == getattr(ref[3], field), field
    speedup = ref_time / vec_time
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized lockstep only {speedup:.2f}x faster "
        f"({ref_time:.3f}s reference vs {vec_time:.3f}s vectorized)"
    )
