"""Benchmark-lane guard for the vectorized top-tree phase.

Every conflict-simulated search charges phase-1 cycles through
:func:`repro.runtime.vectorized_top_phase`, so a regression that silently
sends it back to the per-group Python loop would slow the whole figure
suite without failing anything — the same failure mode
``test_lockstep_perf.py`` guards for phase 2.  This bench runs in the CI
smoke lane (it is *not* marked slow): a down-scaled descent workload, an
identity check against the per-group reference loop, and a conservative
speed floor — well under the ≥5x the full-size
``tests/test_runtime_perf.py`` bench demonstrates (measured ~30x here),
so shared-runner noise cannot flake it, but far above any Python-loop
fallback (which measures at ~1x by construction).
"""

import time

import numpy as np
import pytest

from repro.core import TreeBufferBanking
from repro.core.split_tree import SplitTree
from repro.kdtree import build_kdtree
from repro.runtime import reference_top_phase, vectorized_top_phase

N_POINTS = 2048
N_QUERIES = 1024
TOP_HEIGHT = 5  # proportional split for the height-12 tree
NUM_PES = 8
NUM_BANKS = 8
FILL_CYCLES = 4
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(20260730)
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)[:N_QUERIES]]
    split = SplitTree(build_kdtree(pts), TOP_HEIGHT)
    return split, queries, TreeBufferBanking(NUM_BANKS)


def test_topphase_vectorization_does_not_regress(workload):
    split, queries, banking = workload
    vectorized_top_phase(split, queries, NUM_PES, banking, FILL_CYCLES)  # warm-up

    t0 = time.perf_counter()
    ref = reference_top_phase(split, queries, NUM_PES, banking, FILL_CYCLES)
    ref_time = time.perf_counter() - t0
    vec_time = float("inf")
    vec = None
    for _ in range(3):
        t0 = time.perf_counter()
        vec = vectorized_top_phase(split, queries, NUM_PES, banking, FILL_CYCLES)
        vec_time = min(vec_time, time.perf_counter() - t0)

    assert vec == ref  # (cycles, stalls) identical
    speedup = ref_time / vec_time
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized top phase only {speedup:.2f}x faster "
        f"({ref_time:.3f}s reference vs {vec_time:.3f}s vectorized)"
    )
