"""Benchmark-lane guard for the trace-capable batched exact search.

The Sec. 2 motivation drivers (``layer_search_traces`` and, through it,
the Fig. 2/3 benches) lean on :class:`repro.runtime.TracedBallQuery` for
every visit trace, so a regression that silently sends trace collection
back to the per-query Python loop would slow the whole suite without
failing anything.  This bench runs in the CI smoke lane (it is *not*
marked slow): a down-scaled trace workload, a trace/stats identity check
against the per-query reference, and a conservative speed floor — well
under the ≥5x the full-size ``tests/test_runtime_perf.py`` bench
demonstrates, so shared-runner noise cannot flake it, but far above any
Python-loop fallback (which measures at ~1x here by construction).
"""

import time

import numpy as np

from repro.kdtree import build_kdtree
from repro.kdtree.exact import radius_search
from repro.kdtree.stats import TraversalStats
from repro.runtime import TracedBallQuery

N_POINTS = 1024
N_QUERIES = 256
RADIUS = 0.25
MAX_NEIGHBORS = 16
MIN_SPEEDUP = 1.8


def test_traced_engine_does_not_regress():
    rng = np.random.default_rng(20260730)
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)[:N_QUERIES]]
    tree = build_kdtree(pts)
    engine = TracedBallQuery(tree)
    engine.query(queries[:8], RADIUS, MAX_NEIGHBORS)  # warm-up

    def reference():
        out = []
        for q in queries:
            stats = TraversalStats()
            radius_search(
                tree, q, RADIUS, max_neighbors=MAX_NEIGHBORS,
                stats=stats, record_trace=True,
            )
            out.append(stats)
        return out

    t0 = time.perf_counter()
    ref = reference()
    ref_time = time.perf_counter() - t0
    traced_time = float("inf")
    result = None
    for _ in range(3):
        t0 = time.perf_counter()
        result = engine.query(queries, RADIUS, MAX_NEIGHBORS)
        traced_time = min(traced_time, time.perf_counter() - t0)

    # Identity: traces and the counters the figure pipelines consume.
    assert [t.tolist() for t in result.traces] == [s.visit_trace for s in ref]
    np.testing.assert_array_equal(
        result.visited, [s.nodes_visited for s in ref]
    )
    np.testing.assert_array_equal(
        result.pushes, [s.stack_pushes for s in ref]
    )
    np.testing.assert_array_equal(
        result.pruned, [s.nodes_pruned for s in ref]
    )
    speedup = ref_time / traced_time
    assert speedup >= MIN_SPEEDUP, (
        f"traced engine only {speedup:.2f}x faster "
        f"({ref_time:.3f}s reference vs {traced_time:.3f}s traced)"
    )
