"""Benchmark-lane guard for incremental dynamic-cloud maintenance.

The dynamic overlay exists so a continuously mutating cloud does not pay
a full index rebuild on every frame; a regression that quietly fell back
to rebuild-from-scratch would keep every result bit-identical (the
parity contract guarantees it) while destroying the maintenance win.
This bench runs in the CI smoke lane: a low-churn drifting-scene trace
served twice through ``QueryService`` dynamic handles — incremental
maintenance versus rebuild-per-frame — with bit-identity asserted first
and then a conservative wall-clock floor (the measured margin is ~3x;
the floor is 2x so shared-runner noise cannot flake it, while a
rebuild-shaped regression measures ~1x and trips it cleanly).  The
numbers land in ``BENCH_dynamic.json`` (see :mod:`artifacts`), including
p50/p99 submit-to-serve latency on the incremental path.
"""

from artifacts import latency_percentiles, write_bench_artifact
from repro.serve import replay_drift_trace

NUM_POINTS = 4096
NUM_FRAMES = 30
CHURN = 0.01  # low churn: the regime incremental maintenance targets
QUERIES_PER_FRAME = 16
REPEATS = 3
MIN_SPEEDUP = 2.0


def test_incremental_maintenance_does_not_regress():
    best = None
    for _ in range(REPEATS):
        report = replay_drift_trace(
            num_frames=NUM_FRAMES,
            requests_per_frame=1,
            queries_per_request=QUERIES_PER_FRAME,
            num_points=NUM_POINTS,
            churn=CHURN,
            seed=11,
        )
        # Identity first: every frame's results must match the
        # rebuild-from-scratch-per-frame service bit for bit.
        assert report.results_identical
        if best is None or report.speedup > best.speedup:
            best = report

    write_bench_artifact(
        "dynamic",
        {
            "cloud_size": NUM_POINTS,
            "frames": NUM_FRAMES,
            "churn": CHURN,
            "queries_per_frame": QUERIES_PER_FRAME,
            "s_incremental": round(best.incremental_time, 4),
            "s_rebuild": round(best.rebuild_time, 4),
            "speedup": round(best.speedup, 2),
            "points_indexed_incremental": best.incremental_points_indexed,
            "points_indexed_rebuild": best.rebuild_points_indexed,
            "frames_per_s": round(NUM_FRAMES / best.incremental_time, 1),
            # Per-request submit-to-serve latency, incremental path.
            **latency_percentiles(best.incremental_waits),
        },
    )
    # The structural evidence cannot flake: incremental must index far
    # fewer points than a per-frame rebuild regardless of runner noise.
    assert best.incremental_points_indexed * 4 < best.rebuild_points_indexed
    assert best.speedup >= MIN_SPEEDUP, (
        f"incremental maintenance only {best.speedup:.2f}x faster than "
        f"rebuild-per-frame ({best.incremental_time:.3f}s vs "
        f"{best.rebuild_time:.3f}s over {NUM_FRAMES} frames)"
    )
