"""Benchmark-lane guard for the level-synchronous tree builders.

Tree construction is the serving cold path: every *distinct* cloud pays
one K-d tree build (and one split-tree layout per ``h_t``) on first
contact.  These benches pin the ``runtime.treebuild`` fast path in the CI
smoke lane (not slow-marked):

- bit-identity of the vectorized builder against the frozen per-node
  reference on the bench cloud, then a conservative >=5x cold-build floor
  on 4096 points (the measured gap is ~9x, so shared-runner throttling
  cannot flake it, but a silent fallback to the per-node Python loop
  fails here);
- an end-to-end >=1.5x floor on an all-distinct-cloud serving trace —
  the workload where cold builds dominate — with results bit-identical
  between a vector-builder session and a reference-builder session.

Both tests write their measurements into ``BENCH_treebuild.json``
(see :mod:`artifacts`), which CI uploads so the cold-path perf
trajectory accumulates across PRs.
"""

import time

import numpy as np

from artifacts import write_bench_artifact
from repro.core.split_tree import SplitTree
from repro.kdtree.build import build_kdtree
from repro.runtime import SearchSession
from repro.runtime.treebuild import VectorizedSplitTree, vectorized_build_kdtree
from repro.serve import QueryService

N_POINTS = 4096
TOP_HEIGHT = 4
MIN_BUILD_SPEEDUP = 5.0
MIN_SPLIT_SPEEDUP = 2.0

N_CLOUDS = 8
QUERIES_PER_CLOUD = 16
RADIUS = 0.3
MAX_NEIGHBORS = 16
MIN_SERVE_SPEEDUP = 1.5

NODE_FIELDS = ("point_id", "split_dim", "left", "right", "depth", "subtree_size")


def best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_vectorized_build_floor():
    rng = np.random.default_rng(20260808)
    points = rng.normal(size=(N_POINTS, 3))

    # Identity first: a fast builder that drifts by one tie is worthless.
    ref_tree = build_kdtree(points)
    fast_tree = vectorized_build_kdtree(points)
    for field in NODE_FIELDS:
        np.testing.assert_array_equal(
            getattr(ref_tree, field), getattr(fast_tree, field), err_msg=field
        )

    vectorized_build_kdtree(points)  # warm-up
    ref_build = best_of(lambda: build_kdtree(points), 3)
    fast_build = best_of(lambda: vectorized_build_kdtree(points), 5)
    build_speedup = ref_build / fast_build

    # Split-tree layout on a fresh tree each run (euler_tour caches tin/
    # tout onto the tree, and the reference benefits from neither).
    ref_split = best_of(lambda: SplitTree(ref_tree, TOP_HEIGHT), 3)

    def fresh_vectorized_split():
        tree = vectorized_build_kdtree(points)
        t0 = time.perf_counter()
        VectorizedSplitTree(tree, TOP_HEIGHT)
        return time.perf_counter() - t0

    fast_split = min(fresh_vectorized_split() for _ in range(5))
    split_speedup = ref_split / fast_split

    write_bench_artifact(
        "treebuild",
        {
            "cloud_size": N_POINTS,
            "top_height": TOP_HEIGHT,
            "build_ms_reference": round(ref_build * 1e3, 3),
            "build_ms_vectorized": round(fast_build * 1e3, 3),
            "build_speedup": round(build_speedup, 2),
            "build_clouds_per_s": round(1.0 / fast_build, 1),
            "split_ms_reference": round(ref_split * 1e3, 3),
            "split_ms_vectorized": round(fast_split * 1e3, 3),
            "split_speedup": round(split_speedup, 2),
        },
    )

    assert build_speedup >= MIN_BUILD_SPEEDUP, (
        f"vectorized build only {build_speedup:.2f}x faster "
        f"({ref_build * 1e3:.1f} ms reference vs {fast_build * 1e3:.1f} ms)"
    )
    assert split_speedup >= MIN_SPLIT_SPEEDUP, (
        f"vectorized split-tree layout only {split_speedup:.2f}x faster "
        f"({ref_split * 1e3:.1f} ms reference vs {fast_split * 1e3:.1f} ms)"
    )


def make_distinct_cloud_trace(rng):
    trace = []
    for _ in range(N_CLOUDS):
        points = rng.normal(size=(N_POINTS, 3))
        queries = points[rng.integers(0, N_POINTS, size=QUERIES_PER_CLOUD)]
        trace.append((points, queries, RADIUS, MAX_NEIGHBORS))
    return trace


def serve_trace_cold(trace, builder):
    """One flush over the whole trace through a cold session."""
    service = QueryService(session=SearchSession(builder=builder))
    tickets = [service.submit(*request) for request in trace]
    service.flush()
    return [ticket.result() for ticket in tickets]


def test_all_distinct_cloud_serving_floor():
    rng = np.random.default_rng(20260809)
    trace = make_distinct_cloud_trace(rng)

    serve_trace_cold(trace, "vector")  # warm-up (imports, allocator)
    t0 = time.perf_counter()
    ref_results = serve_trace_cold(trace, "reference")
    ref_time = time.perf_counter() - t0
    fast_time = float("inf")
    fast_results = None
    for _ in range(3):
        t0 = time.perf_counter()
        fast_results = serve_trace_cold(trace, "vector")
        fast_time = min(fast_time, time.perf_counter() - t0)

    for (fi, fc), (ri, rc) in zip(fast_results, ref_results):
        np.testing.assert_array_equal(fi, ri)
        np.testing.assert_array_equal(fc, rc)

    speedup = ref_time / fast_time
    total_requests = len(trace)
    write_bench_artifact(
        "treebuild",
        {
            "serve_clouds": N_CLOUDS,
            "serve_cloud_size": N_POINTS,
            "serve_queries_per_cloud": QUERIES_PER_CLOUD,
            "serve_s_reference": round(ref_time, 4),
            "serve_s_vectorized": round(fast_time, 4),
            "serve_speedup": round(speedup, 2),
            "serve_requests_per_s": round(total_requests / fast_time, 1),
        },
    )

    assert speedup >= MIN_SERVE_SPEEDUP, (
        f"all-distinct-cloud serving only {speedup:.2f}x faster with the "
        f"vectorized cold path ({ref_time:.3f}s reference vs {fast_time:.3f}s)"
    )
