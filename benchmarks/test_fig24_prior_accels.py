"""Fig. 24 — comparison with prior neighbor-search accelerators.

Paper: (a) retaining K-d search inside sub-trees visits 41% fewer tree
nodes than Tigris's exhaustive sub-tree scan; (b) staging queries in DRAM
and loading each sub-tree exactly once moves 48% fewer DRAM bytes than
QuickNN's reload-on-full-queue policy.  Reproduction target: both
reductions are substantial (>25%) on average.

This bench also serves as the ablation for two design decisions called
out in DESIGN.md: K-d-in-subtree (vs exhaustive) and batch staging (vs
reloading).
"""

import statistics

import numpy as np

from repro.accel import (
    ExhaustiveSplitSearchEngine,
    NeighborSearchEngine,
    evaluation_hardware,
    evaluation_networks,
    workload_points,
)
from repro.analysis import format_table
from repro.core import ApproxSetting
from repro.kdtree import build_kdtree


def _per_network(name, hw):
    """(tigris_visits, crescent_visits, quicknn_bytes, crescent_bytes)."""
    spec = evaluation_networks()[name]
    points = workload_points(name)
    rng = np.random.default_rng(0)
    crescent = NeighborSearchEngine(hw)
    quicknn = ExhaustiveSplitSearchEngine(hw, reload_on_full_queue=True)
    tigris_visits = crescent_visits = 0
    quicknn_bytes = crescent_bytes = 0
    current = points
    for layer in spec.layers:
        queries = current[rng.choice(len(current), layer.num_queries, replace=False)]
        tree = build_kdtree(current)
        _, _, ours = crescent.run(
            tree, queries, layer.radius, layer.max_neighbors, ApproxSetting(4, 8)
        )
        _, _, prior = quicknn.run(
            tree, queries, layer.radius, layer.max_neighbors, ApproxSetting()
        )
        crescent_visits += ours.report.traversal.nodes_visited
        tigris_visits += prior.report.traversal.nodes_visited
        crescent_bytes += ours.dram.total_bytes
        quicknn_bytes += prior.dram.total_bytes
        current = queries
    return tigris_visits, crescent_visits, quicknn_bytes, crescent_bytes


def test_fig24_vs_tigris_and_quicknn(benchmark):
    hw = evaluation_hardware()

    def run():
        return {name: _per_network(name, hw) for name in evaluation_networks()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    visit_reductions, byte_reductions = [], []
    for name, (tv, cv, qb, cb) in results.items():
        vr = 1.0 - cv / tv
        br = 1.0 - cb / qb
        visit_reductions.append(vr)
        byte_reductions.append(br)
        rows.append([name, f"{vr * 100:.1f}", f"{br * 100:.1f}"])
    print()
    print(format_table(
        "Fig. 24: vs Tigris (node visits) and QuickNN (DRAM bytes) — reduction %",
        ["network", "tree-node visit reduction (paper avg 41%)",
         "DRAM byte reduction (paper avg 48%)"],
        rows,
    ))
    print(f"averages: visits -{statistics.mean(visit_reductions) * 100:.1f}%, "
          f"bytes -{statistics.mean(byte_reductions) * 100:.1f}%")
    assert statistics.mean(visit_reductions) > 0.25
    assert statistics.mean(byte_reductions) > 0.25
    for vr in visit_reductions:
        assert vr > 0.0
