"""Fig. 5 — aggregation bank-conflict rate per network (16 banks, 16 reqs).

Paper: 38.43–57.27% of aggregation SRAM accesses conflict.  The metric
counts genuine serialization: requests for the *same point id* are served
by one broadcast read, so ``ball_query``'s repeat-first-neighbor padding
contributes nothing (before the PR 3 broadcast fix those phantom
conflicts inflated every rate here, e.g. PointNet++ from ~22% to ~39%).
Our synthetic scenes produce far more short (heavily padded, few distinct
ids) rows than the paper's ~1.2 M-point scans, so the measured pressure
sits *below* the paper band: the reproduction target is the 8–30% band
for every network, with the paper's own regime pinned on duplicate-free
random rows by ``tests/test_core_bank_conflict.py::test_paper_fig5_ballpark``.
"""

from repro.analysis import aggregation_conflict_by_network, format_table

PAPER = {
    "PointNet++ (c)": 0.5404,
    "PointNet++ (s)": 0.5404,
    "DensePoint": 0.5727,
    "F-PointNet": 0.3843,
}


def test_fig05_aggregation_conflicts(benchmark):
    measured = benchmark.pedantic(
        aggregation_conflict_by_network, rounds=1, iterations=1
    )
    rows = [
        [name, f"{PAPER[name] * 100:.1f}", f"{measured[name] * 100:.1f}"]
        for name in measured
    ]
    print()
    print(format_table(
        "Fig. 5: aggregation bank conflict rate, 16 banks / 16 requests (%)",
        ["network", "paper", "measured"], rows,
    ))
    for name, rate in measured.items():
        assert 0.08 < rate < 0.30, f"{name}: {rate:.2%}"
