"""Fig. 5 — aggregation bank-conflict rate per network (16 banks, 16 reqs).

Paper: 38.43–57.27% of aggregation SRAM accesses conflict.  Reproduction
target: every network lands in the 25–65% band.
"""

from repro.analysis import aggregation_conflict_by_network, format_table

PAPER = {
    "PointNet++ (c)": 0.5404,
    "PointNet++ (s)": 0.5404,
    "DensePoint": 0.5727,
    "F-PointNet": 0.3843,
}


def test_fig05_aggregation_conflicts(benchmark):
    measured = benchmark.pedantic(
        aggregation_conflict_by_network, rounds=1, iterations=1
    )
    rows = [
        [name, f"{PAPER[name] * 100:.1f}", f"{measured[name] * 100:.1f}"]
        for name in measured
    ]
    print()
    print(format_table(
        "Fig. 5: aggregation bank conflict rate, 16 banks / 16 requests (%)",
        ["network", "paper", "measured"], rows,
    ))
    for name, rate in measured.items():
        assert 0.25 < rate < 0.65, f"{name}: {rate:.2%}"
