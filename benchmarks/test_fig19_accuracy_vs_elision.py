"""Fig. 19 — accuracy vs elision height.

Paper (PointNet++(c), h_t = 4): accuracy rises with the elision height —
5%+ loss at h_e = 4 (almost everything elided) but only 0.8% at h_e = 12.

Reproduction: the *mechanical* trend — on fixed weights, eliding fewer
nodes recovers more accuracy — is asserted on the baseline model swept
across inference-time h_e (monotone non-decreasing).  Dedicated retrained
models are also reported; at our dataset scale retraining recovers even
the most aggressive elision (the per-input neighbor dropout acts as a
regularizer), so the dedicated-model curve is flatter than the paper's —
recorded as a scale deviation in EXPERIMENTS.md.
"""

import pytest

import paperbench as pb
from repro.analysis import format_table
from repro.core import ApproxSetting

pytestmark = pytest.mark.slow

ELISION_HEIGHTS = (2, 4, 6, 8)


def test_fig19_accuracy_vs_elision(benchmark):
    def run():
        test = pb.cls_test_set()
        baseline = pb.classification_trainer("PointNet++ (c)", pb.baseline_key())
        swept = baseline.evaluate_settings(
            test, [ApproxSetting(pb.HEADLINE_HT, he) for he in ELISION_HEIGHTS]
        )
        no_retrain = {s.elision_height: acc for s, acc in swept.items()}
        dedicated = {
            he: pb.classification_trainer(
                "PointNet++ (c)", ("fixed", pb.HEADLINE_HT, he)
            ).evaluate(test, ApproxSetting(pb.HEADLINE_HT, he))
            for he in ELISION_HEIGHTS
        }
        exact = baseline.evaluate(test, ApproxSetting(0, None))
        return no_retrain, dedicated, exact

    no_retrain, dedicated, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [he, f"{no_retrain[he]:.3f}", f"{dedicated[he]:.3f}"]
        for he in ELISION_HEIGHTS
    ]
    print()
    print(format_table(
        f"Fig. 19: accuracy vs elision height (ht=4; exact baseline {exact:.3f})",
        ["h_e", "fixed weights (mechanical trend)", "dedicated retrained"],
        rows,
    ))
    # Mechanical trend: fewer elided nodes can only help fixed weights.
    fixed = [no_retrain[he] for he in ELISION_HEIGHTS]
    assert all(a <= b + 0.02 for a, b in zip(fixed, fixed[1:]))
    assert fixed[-1] >= fixed[0]
    # Aggressive elision on fixed weights costs real accuracy vs exact.
    assert fixed[0] < exact - 0.05
    # Retraining recovers every dedicated setting to near the permissive end.
    for he in ELISION_HEIGHTS:
        assert dedicated[he] >= fixed[0], he
