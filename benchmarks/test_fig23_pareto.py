"""Fig. 23 — accuracy vs speedup vs energy across <h_t, h_e> combinations.

Paper (PointNet++(c)): sweeping h_t and h_e spans ~5% accuracy, ~2.0×
performance, and ~1.5× energy, with gentle settings (<2,12>-like) near
baseline accuracy and aggressive ones (<10,14>-like) fastest.
Reproduction target: the aggressive setting is the fastest, the gentle
setting is the most accurate, and the sweep spans a real trade-off range.
"""

import pytest

import paperbench as pb
from repro.accel import evaluation_hardware, evaluation_networks, workload_points
from repro.analysis import format_table, knob_performance_sweep
from repro.core import ApproxSetting

pytestmark = pytest.mark.slow

# Accuracy settings are at model-tree scale; performance settings at
# workload-tree scale — both use the same relative knob positions.
ACC_SETTINGS = [(1, 7), (2, 6), (4, 6), (5, 3)]
PERF_SETTINGS = [ApproxSetting(1, 10), ApproxSetting(2, 9),
                 ApproxSetting(4, 8), ApproxSetting(6, 5)]


def test_fig23_pareto_tradeoff(benchmark):
    def run():
        test = pb.cls_test_set()
        mixed = pb.classification_trainer(
            "PointNet++ (c)",
            ("mixed", (1, 2, 3, 4, 5), (3, 5, 6, 7)),
        )
        accs = {
            (ht, he): mixed.evaluate(test, ApproxSetting(ht, he))
            for ht, he in ACC_SETTINGS
        }
        spec = evaluation_networks()["PointNet++ (c)"]
        pts = workload_points("PointNet++ (c)")
        perf = knob_performance_sweep(
            spec, pts, PERF_SETTINGS, hw=evaluation_hardware()
        )
        return accs, perf

    accs, perf = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (acc_s, perf_s) in zip(ACC_SETTINGS, PERF_SETTINGS):
        speedup, energy = perf[(perf_s.top_height, perf_s.elision_height)]
        rows.append([
            f"<{acc_s[0]},{acc_s[1]}>", f"{accs[acc_s]:.3f}",
            f"{speedup:.2f}x", f"{energy:.2f}",
        ])
    print()
    print(format_table(
        "Fig. 23: accuracy / speedup / energy across <h_t, h_e>",
        ["setting", "accuracy", "speedup", "norm energy"], rows,
    ))
    speedups = [perf[(s.top_height, s.elision_height)][0] for s in PERF_SETTINGS]
    assert speedups[-1] >= speedups[0]  # aggressive end is fastest
    assert max(accs.values()) == accs[ACC_SETTINGS[0]] or (
        accs[ACC_SETTINGS[0]] >= accs[ACC_SETTINGS[-1]] - 0.02
    )  # gentle end is (near-)most accurate
    assert max(speedups) / min(speedups) > 1.05  # a real trade-off space
