"""Fig. 22 — speedup/energy sensitivity to #PEs × #banks.

Paper (PointNet++(c)): speedup is largest on the least-capable baselines
(2.1× at 2 PEs) and diminishes toward 1.1× at 32 PE / 32 banks; energy
savings (~25–30%) are nearly flat across configurations.  Reproduction
target: speedup at the smallest configuration exceeds the largest; every
cell still saves energy.
"""

from repro.accel import evaluation_networks, evaluation_hardware, workload_points
from repro.analysis import format_table, hw_sensitivity
from repro.core import ApproxSetting

PES = (2, 4, 8)
BANKS = (2, 4, 8)


def test_fig22_pe_bank_sensitivity(benchmark):
    spec = evaluation_networks()["PointNet++ (c)"]
    points = workload_points("PointNet++ (c)")

    cells = benchmark.pedantic(
        lambda: hw_sensitivity(
            spec, points, ApproxSetting(4, 8), PES, BANKS,
            base_hw=evaluation_hardware(),
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [c.num_pes, c.num_banks, f"{c.speedup:.2f}x", f"{c.norm_energy:.2f}"]
        for c in cells
    ]
    print()
    print(format_table(
        "Fig. 22: Crescent speedup / normalized energy vs #PE x #banks",
        ["#PE", "#banks", "speedup", "norm energy"], rows,
    ))
    by_key = {(c.num_pes, c.num_banks): c for c in cells}
    smallest = by_key[(PES[0], BANKS[0])]
    largest = by_key[(PES[-1], BANKS[-1])]
    assert smallest.speedup >= largest.speedup * 0.9
    for c in cells:
        assert c.speedup > 1.0, (c.num_pes, c.num_banks)
        assert c.norm_energy < 1.0, (c.num_pes, c.num_banks)
