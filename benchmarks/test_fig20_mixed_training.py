"""Fig. 20 — mixed-h training vs dedicated models across inference h_t.

Paper: a model trained at h_t=1 collapses at aggressive inference h_t; a
model trained at h_t=6 is robust everywhere but weaker at high accuracy;
the mixed model matches or beats the h_t=1 model everywhere and wins in
the high-accuracy regime.  Reproduction target: those orderings hold at
the sweep's endpoints.
"""

import pytest

import paperbench as pb
from repro.analysis import format_table
from repro.core import ApproxSetting

pytestmark = pytest.mark.slow

SWEEP = (0, 1, 2, 4, 6)
MIXED_KEY = ("mixed", (1, 2, 3, 4, 5, 6), (None,))


def test_fig20_mixed_vs_dedicated(benchmark):
    def run():
        test = pb.cls_test_set()
        trainers = {
            "ht=1": pb.classification_trainer("PointNet++ (c)", ("fixed", 1, None)),
            "ht=6": pb.classification_trainer("PointNet++ (c)", ("fixed", 6, None)),
            "mixed": pb.classification_trainer("PointNet++ (c)", MIXED_KEY),
        }
        return {
            name: {ht: t.evaluate(test, ApproxSetting(ht, None)) for ht in SWEEP}
            for name, t in trainers.items()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{curve[ht]:.3f}" for ht in SWEEP]
        for name, curve in curves.items()
    ]
    print()
    print(format_table(
        "Fig. 20: accuracy vs inference-time h_t by training scheme",
        ["scheme"] + [f"ht={h}" for h in SWEEP], rows,
    ))
    # The mixed model holds up at the aggressive end where ht=1 training
    # degrades, and is competitive in the high-accuracy regime.
    assert curves["mixed"][6] >= curves["ht=1"][6] - 0.02
    assert curves["mixed"][0] >= curves["ht=6"][0] - 0.10
    avg = lambda c: sum(c.values()) / len(c)
    assert avg(curves["mixed"]) >= avg(curves["ht=1"]) - 0.05
