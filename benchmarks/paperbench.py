"""Shared fixtures for the paper-reproduction benchmarks.

Training-backed figures (13, 18–21, 23) reuse trained models through the
memoized factories here, so the benchmark suite trains each configuration
exactly once regardless of how many benches read it.

Scale notes
-----------
The models train on 160-point synthetic clouds whose K-d trees have height
8 (vs the paper's height-14–21 trees), so knob values are expressed in
this tree's terms.  The headline setting is ``h_t = 4, h_e = 4``: the top
tree takes half the levels (as the paper's ``h_t = 4`` does proportionally)
and the elision height sits where elision stress matches the paper's
``h_e = 12``-on-height-14 regime — our elision is gentler per conflict
(same-address conflicts broadcast instead of stalling), so the equivalent
setting is deeper into the tree.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core import ApproxSetting, ApproximationPipeline, TreeBufferBanking
from repro.runtime import SearchSession
from repro.geometry import (
    LidarDetectionDataset,
    PartSegmentationDataset,
    ShapeClassificationDataset,
    num_part_classes,
)
from repro.models import (
    DensePointClassifier,
    FrustumPointNet,
    PointNetPPClassifier,
    PointNetPPSegmenter,
)
from repro.training import (
    ClassificationTrainer,
    DetectionTrainer,
    FixedSetting,
    MixedSetting,
    SegmentationTrainer,
)

# Headline approximate setting at model-tree scale (see module docstring).
HEADLINE_HT = 4
HEADLINE_HE = 4

CLS_POINTS = 160
CLS_TRAIN_SIZE = 192
CLS_TEST_SIZE = 64
CLS_EPOCHS = 12  # PointNet++ (c)
DENSEPOINT_EPOCHS = 24  # denser stages learn slower
CLS_LR = 2e-3

SEG_POINTS = 128
SEG_TRAIN_SIZE = 48
SEG_TEST_SIZE = 15
SEG_EPOCHS = 30

DET_TRAIN_SIZE = 32
DET_TEST_SIZE = 10
DET_EPOCHS = 30

# Slow-lane training stays per-sample (batch_size=None): those figure
# trajectories are then bit-identical to every pre-tape release, so their
# assertions pin the same trained weights across the PR 8 engine swap.
# (Chunked SGD means 8x fewer optimizer steps per epoch — enough to
# undertrain the small-epoch detection/classification configs and flip
# the Fig. 13/21/23 trends, so batching is opt-in per figure, not global.)
# The stacked path still accelerates every figure through fully batched
# evaluation and the FPS digest cache, and Fig. 18 opts its dedicated
# trainers into mini-batched training to run in the smoke lane.
FIG18_TRAIN_BATCH = 8


def cls_train_set() -> ShapeClassificationDataset:
    return ShapeClassificationDataset(
        size=CLS_TRAIN_SIZE, num_points=CLS_POINTS, seed=0,
        occlusion=0.0, noise=0.01, rotate=False,
    )


def cls_test_set() -> ShapeClassificationDataset:
    return ShapeClassificationDataset(
        size=CLS_TEST_SIZE, num_points=CLS_POINTS, seed=50_000,
        occlusion=0.0, noise=0.01, rotate=False,
    )


def seg_train_set() -> PartSegmentationDataset:
    return PartSegmentationDataset(size=SEG_TRAIN_SIZE, num_points=SEG_POINTS, seed=0)


def seg_test_set() -> PartSegmentationDataset:
    return PartSegmentationDataset(size=SEG_TEST_SIZE, num_points=SEG_POINTS, seed=70_000)


def det_train_set() -> LidarDetectionDataset:
    return LidarDetectionDataset(size=DET_TRAIN_SIZE, num_points=1024, seed=0, num_cars=2)


def det_test_set() -> LidarDetectionDataset:
    return LidarDetectionDataset(size=DET_TEST_SIZE, num_points=1024, seed=80_000, num_cars=2)


SamplerKey = Tuple  # ('fixed', ht, he) | ('mixed', hts, hes)


def _sampler(key: SamplerKey):
    kind = key[0]
    if kind == "fixed":
        return FixedSetting(ApproxSetting(key[1], key[2]))
    if kind == "mixed":
        hts, hes = key[1], key[2]
        return MixedSetting(top_heights=tuple(hts), elision_heights=tuple(hes))
    raise ValueError(f"unknown sampler key {key!r}")


# One search session pools K-d trees and memoized neighbor matrices across
# every trainer in the suite: neighbor matrices depend only on geometry and
# the (setting, banking) key — never on weights — so e.g. the exact-setting
# matrices of one model's baseline trainer are served from cache when
# another model's baseline queries the same clouds.
_SESSION = SearchSession(max_results=8192, max_trees=512)


def _pipeline(tree_banks: int = 4) -> ApproximationPipeline:
    return ApproximationPipeline(
        tree_banking=TreeBufferBanking(tree_banks), session=_SESSION
    )


@functools.lru_cache(maxsize=None)
def classification_trainer(
    model_name: str,
    sampler_key: SamplerKey,
    tree_banks: int = 4,
    seed: int = 0,
    batch_size: Optional[int] = None,
) -> ClassificationTrainer:
    """Train (once) a classifier under a sampler; returns its trainer.

    ``batch_size`` is part of the memo key: ``None`` (the default every
    slow-lane figure uses) keeps per-sample optimizer steps and thereby
    trajectories bit-identical to the pre-tape engine; a figure that has
    validated its assertions under chunked SGD (Fig. 18 in the smoke lane)
    can opt into the stacked mini-batch path for ~3x faster training.
    """
    train = cls_train_set()
    pipeline = _pipeline(tree_banks)
    rng = np.random.default_rng(seed)
    if model_name == "PointNet++ (c)":
        model = PointNetPPClassifier(train.num_classes, rng, pipeline)
    elif model_name == "DensePoint":
        model = DensePointClassifier(train.num_classes, rng, pipeline)
    else:
        raise ValueError(f"not a classifier: {model_name!r}")
    trainer = ClassificationTrainer(model, _sampler(sampler_key), lr=CLS_LR, seed=seed)
    epochs = DENSEPOINT_EPOCHS if model_name == "DensePoint" else CLS_EPOCHS
    trainer.train(train, epochs=epochs, batch_size=batch_size)
    return trainer


@functools.lru_cache(maxsize=None)
def segmentation_trainer(sampler_key: SamplerKey, seed: int = 0) -> SegmentationTrainer:
    train = seg_train_set()
    model = PointNetPPSegmenter(
        num_part_classes(), np.random.default_rng(seed), _pipeline()
    )
    trainer = SegmentationTrainer(
        model, num_classes=num_part_classes(), sampler=_sampler(sampler_key),
        lr=5e-3, seed=seed,
    )
    trainer.train(train, epochs=SEG_EPOCHS)
    return trainer


@functools.lru_cache(maxsize=None)
def detection_trainer(sampler_key: SamplerKey, seed: int = 0) -> DetectionTrainer:
    train = det_train_set()
    model = FrustumPointNet(np.random.default_rng(seed), _pipeline())
    trainer = DetectionTrainer(
        model, frustum_points=128, sampler=_sampler(sampler_key), lr=5e-3, seed=seed
    )
    trainer.train(train, epochs=DET_EPOCHS)
    return trainer


def baseline_key() -> SamplerKey:
    return ("fixed", 0, None)


def ans_key(ht: int = HEADLINE_HT) -> SamplerKey:
    return ("fixed", ht, None)


def bce_key(ht: int = HEADLINE_HT, he: int = HEADLINE_HE) -> SamplerKey:
    return ("fixed", ht, he)
