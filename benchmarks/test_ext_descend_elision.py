"""Extension ablation — descend-on-conflict elision (paper Sec. 4.2).

The paper ships skip-on-conflict elision and sketches, as future work,
continuing the losing PE's traversal from the winner's node whenever that
node lies beneath the requested one ("doing so would skip fewer nodes and
potentially increase the accuracy").  This bench implements and measures
that optimization: same workload, same banking, both elision policies.

The benefit appears when concurrent queries are spatially correlated —
exactly the situation in Crescent's phase 2, where a sub-tree's queue
holds queries that all landed in the same region — because only then is
the winner's node frequently beneath the loser's requested node.  The
bench therefore uses a clustered query batch.

Expected shape: the descend policy recovers neighbors that skip-elision
loses and completes in fewer cycles (each substitution replaces a
full-subtree skip with a partial one, and the PE keeps doing useful
work).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import TreeBufferBanking
from repro.core.approx_search import run_subtree_lockstep
from repro.kdtree import SubtreeSearch, build_kdtree
from repro.memsim import SramStats


def _run_policy(policy, tree, queries, radius, elide_depth, num_pes=8, banks=4):
    machines = [
        SubtreeSearch(tree, q, radius, root=tree.root, max_neighbors=16,
                      elide_depth=elide_depth)
        for q in queries
    ]
    slot_map = {int(n): i for i, n in enumerate(tree.subtree_nodes(tree.root))}
    sram = SramStats()
    cycles, stalls = run_subtree_lockstep(
        machines, slot_map, TreeBufferBanking(banks), num_pes, sram,
        elide_policy=policy,
    )
    return {
        "visited": sum(m.stats.nodes_visited for m in machines),
        "skipped": sum(m.stats.nodes_skipped for m in machines),
        "found": sum(len(m.hits) for m in machines),
        "cycles": cycles,
        "stalls": stalls,
    }


def test_ext_descend_vs_skip_elision(benchmark):
    rng = np.random.default_rng(0)
    points = rng.normal(size=(2048, 3))
    tree = build_kdtree(points)
    # A spatially coherent query batch — one sub-tree queue's worth.
    center = points[17]
    order = np.argsort(np.linalg.norm(points - center, axis=1))
    queries = points[order[:64]]

    def run():
        return {
            policy: _run_policy(policy, tree, queries, 0.3, elide_depth=3)
            for policy in ("skip", "descend")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [policy, r["visited"], r["found"], r["cycles"], r["stalls"]]
        for policy, r in results.items()
    ]
    print()
    print(format_table(
        "Extension: skip-on-conflict vs descend-on-conflict elision",
        ["policy", "nodes visited", "neighbors found", "cycles", "stalls"],
        rows,
    ))
    skip, descend = results["skip"], results["descend"]
    assert descend["found"] >= skip["found"]  # recovers lost neighbors
    assert descend["cycles"] <= skip["cycles"]  # and is no slower
    gained = descend["found"] - skip["found"]
    print(f"descend policy recovers {gained} neighbors and "
          f"{skip['cycles'] - descend['cycles']} cycles on this batch")
