"""Fig. 21 — train with one banking configuration, infer across others.

Paper: a model trained assuming 4 banks holds its accuracy when inferring
on ≥8 banks and loses only ~2% on a 2-banked SRAM.  Reproduction target:
accuracy across 8–32 inference banks stays within a few points of the
4-bank accuracy; the 2-bank end is the worst.
"""

import pytest

import paperbench as pb
from repro.analysis import format_series
from repro.core import ApproxSetting, TreeBufferBanking

pytestmark = pytest.mark.slow

BANKS = (2, 4, 8, 16, 32)


def test_fig21_banking_transfer(benchmark):
    def run():
        trainer = pb.classification_trainer(
            "PointNet++ (c)", pb.bce_key(), tree_banks=4
        )
        test = pb.cls_test_set()
        pipeline = trainer.model.pipeline
        accs = {}
        setting = ApproxSetting(pb.HEADLINE_HT, pb.HEADLINE_HE)
        for banks in BANKS:
            pipeline.tree_banking = TreeBufferBanking(banks)
            accs[banks] = trainer.evaluate(test, setting)
        pipeline.tree_banking = TreeBufferBanking(4)
        return accs

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series(
        "Fig. 21: accuracy vs inference-time bank count (trained with 4)",
        list(accs.keys()), list(accs.values()),
    ))
    trained_at = accs[4]
    for banks in (8, 16, 32):
        assert accs[banks] > trained_at - 0.10, banks
    assert accs[2] <= max(accs.values())  # fewest banks is never the best
