"""Fig. 3 — DRAM traffic vs theoretical minimum and cache miss rate.

Paper: with an unrealistic 10 MB fully-associative cache, neighbor search
still moves ~10× (up to ~20×) more DRAM bytes than the theoretical
minimum, at >85% miss rates.  Reproduction target: traffic ratio well
above 5× and miss rate above 0.7 for every network.
"""

from repro.accel import evaluation_networks
from repro.analysis import dram_traffic_study, format_table


def test_fig03_dram_traffic_and_miss_rate(benchmark):
    def run():
        return {
            name: dram_traffic_study(name) for name in evaluation_networks()
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{r.traffic_ratio:.1f}x", f"{r.miss_rate * 100:.1f}"]
        for name, r in measured.items()
    ]
    print()
    print(format_table(
        "Fig. 3: DRAM traffic vs theoretical minimum / cache miss rate (%)",
        ["network", "traffic ratio (paper ~10x)", "miss rate (paper >85%)"],
        rows,
    ))
    for name, r in measured.items():
        # F-PointNet is the paper's lowest bar as well (sparser scenes).
        assert r.traffic_ratio > 4.0, name
        assert r.miss_rate > 0.65, name
