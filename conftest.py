"""Repo-wide pytest configuration shared by ``tests/`` and ``benchmarks/``.

Registers the ``slow`` marker (training-backed figure benchmarks and the
runtime micro-benchmark carry it; CI's smoke lane deselects them with
``-m "not slow"``) and provides the shared seed fixture that keeps
randomized tests deterministic: override with ``REPRO_TEST_SEED`` to
explore other draws locally — CI always runs the default.
"""

import os

import numpy as np
import pytest

DEFAULT_TEST_SEED = 20260730


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running test (training-backed benchmarks, perf micro-benchmarks); "
        'deselected in the CI smoke lane via -m "not slow"',
    )


@pytest.fixture
def test_seed() -> int:
    """The suite-wide base seed (``REPRO_TEST_SEED`` overrides)."""
    return int(os.environ.get("REPRO_TEST_SEED", DEFAULT_TEST_SEED))


@pytest.fixture
def rng(test_seed) -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(test_seed)
