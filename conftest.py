"""Repo-wide pytest configuration shared by ``tests/`` and ``benchmarks/``.

Registers the ``slow`` marker (training-backed figure benchmarks and the
runtime micro-benchmark carry it; CI's smoke lane deselects them with
``-m "not slow"``) and provides the shared seed fixture that keeps
randomized tests deterministic: override with ``REPRO_TEST_SEED`` to
explore other draws locally — CI always runs the default.

Also hosts the *pinned per-step lockstep reference driver* used by the
equivalence suite (``tests/test_runtime_lockstep.py``) and both perf
benches (``tests/test_runtime_perf.py``, ``benchmarks/test_lockstep_perf.py``):
one definition of "drive one SubtreeSearch machine per query through
``run_subtree_lockstep``" keeps all three suites testing the same
reference semantics.
"""

import os

import numpy as np
import pytest

DEFAULT_TEST_SEED = 20260730


def _build_lockstep_groups(tree, queries, top_height):
    """Bucket ``queries`` per sub-tree root, in queue order.

    Returns ``(groups, split)`` where ``groups`` is the
    ``[(root, query_ids), ...]`` list both lockstep engines consume.
    """
    from repro.core.split_tree import SplitTree

    split = SplitTree(tree, top_height)
    assigned = split.route_queries(queries)
    uniq, inverse = np.unique(assigned, return_inverse=True)
    groups = [
        (int(root), np.nonzero(inverse == gi)[0]) for gi, root in enumerate(uniq)
    ]
    return groups, split


def _drive_reference_lockstep(
    tree, queries, split, groups, radius, max_neighbors, elide_depth,
    num_pes, banking, elide_policy="skip",
):
    """The per-step reference: one SubtreeSearch machine per query driven
    through ``run_subtree_lockstep``, sub-tree by sub-tree.

    Returns ``(cycles, stalls, hits_by_query, traversal_stats, sram_stats)``
    — the fingerprint the vectorized engine must reproduce exactly.
    """
    from repro.core.approx_search import run_subtree_lockstep
    from repro.kdtree.stats import TraversalStats
    from repro.kdtree.traversal import SubtreeSearch
    from repro.memsim.sram import SramStats

    stats, sram = TraversalStats(), SramStats()
    cycles = stalls = 0
    hits = {}
    for root, q_ids in groups:
        machines = [
            SubtreeSearch(
                tree, queries[qi], radius, root=root,
                max_neighbors=max_neighbors, elide_depth=elide_depth,
                stats=stats,
            )
            for qi in q_ids
        ]
        slot_map = {
            int(node): i for i, node in enumerate(split.subtree_nodes(root))
        }
        c, s = run_subtree_lockstep(
            machines, slot_map, banking, num_pes, sram,
            elide_policy=elide_policy,
        )
        cycles += c
        stalls += s
        for qi, machine in zip(q_ids, machines):
            hits[int(qi)] = list(machine.hits)
    return cycles, stalls, hits, stats, sram


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running test (training-backed benchmarks, perf micro-benchmarks); "
        'deselected in the CI smoke lane via -m "not slow"',
    )


@pytest.fixture
def test_seed() -> int:
    """The suite-wide base seed (``REPRO_TEST_SEED`` overrides)."""
    return int(os.environ.get("REPRO_TEST_SEED", DEFAULT_TEST_SEED))


# The helpers are handed out as fixtures (rather than imported by module
# name) because both the repo root and benchmarks/ have a conftest.py —
# ``import conftest`` would resolve to whichever is first on sys.path.
@pytest.fixture(scope="session")
def lockstep_groups_builder():
    """``(tree, queries, top_height) -> (groups, split)``."""
    return _build_lockstep_groups


@pytest.fixture(scope="session")
def reference_lockstep_driver():
    """The pinned per-step reference lockstep driver (see module docs)."""
    return _drive_reference_lockstep


@pytest.fixture
def rng(test_seed) -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(test_seed)
