"""End-to-end LiDAR detection with approximate neighbor search.

The workload the paper's introduction motivates: a KITTI-style outdoor
scene, frustum proposals, and an F-PointNet that segments each frustum and
regresses a 3D box — running its neighbor searches through Crescent's
approximate pipeline.

Run:  python examples/lidar_detection.py   (~30 s on a laptop)
"""

import numpy as np

from repro.core import ApproxSetting
from repro.geometry import LidarDetectionDataset, box_iou_bev
from repro.models import FrustumPointNet, frustum_crop
from repro.training import DetectionTrainer, FixedSetting


def main() -> None:
    train = LidarDetectionDataset(size=32, num_points=1024, seed=0, num_cars=2)
    test = LidarDetectionDataset(size=8, num_points=1024, seed=80_000, num_cars=2)

    print("training F-PointNet with approximation-aware training "
          "(h sampled per input) ...")
    trainer = DetectionTrainer(
        FrustumPointNet(np.random.default_rng(0)),
        frustum_points=128,
        sampler=FixedSetting(ApproxSetting(3, 5)),
        lr=5e-3,
    )
    trainer.train(train, epochs=30)

    print("\nper-scene detections (approximate search, h = <3, 5>):")
    setting = ApproxSetting(3, 5)
    ious = []
    for i in range(len(test)):
        scene = test[i]
        gt = scene.boxes[0]
        crop = frustum_crop(
            scene.cloud.points, gt.center[:2], max_points=128,
            rng=np.random.default_rng(100 + i),
        )
        pred = trainer.model(crop, setting)
        box = pred.decode(crop)
        iou = box_iou_bev(box, gt)
        ious.append(iou)
        print(f"  scene {i}: gt center ({gt.center[0]:6.1f}, {gt.center[1]:6.1f})"
              f"  pred ({box.center[0]:6.1f}, {box.center[1]:6.1f})"
              f"  BEV IoU {iou:.2f}")
    print(f"\nmean BEV IoU: {np.mean(ious):.3f}")
    exact = trainer.evaluate(test, ApproxSetting(0, None))
    approx = trainer.evaluate(test, setting)
    print(f"geomean IoU — exact search: {exact:.3f}, "
          f"approximate search: {approx:.3f}")


if __name__ == "__main__":
    main()
