"""Quickstart: Crescent's approximate neighbor search in five minutes.

Builds a synthetic point cloud, runs exact vs approximate (split-tree +
bank-conflict-elision) neighbor search, and shows what the approximation
buys (fewer node visits, streaming DRAM) and costs (missed neighbors).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import NeighborSearchEngine
from repro.core import ApproxSetting, approximate_ball_query
from repro.geometry import sample_shape
from repro.kdtree import ball_query, build_kdtree


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A point cloud and a K-d tree over it.
    cloud = sample_shape("torus", rng, num_points=2048, noise=0.02)
    tree = build_kdtree(cloud.points)
    print(f"cloud: {len(cloud)} points, K-d tree height {tree.height}")

    # 2. Exact ball query: the baseline every point cloud network runs.
    queries = cloud.points[rng.choice(len(cloud), 256, replace=False)]
    exact_idx, exact_cnt = ball_query(tree, queries, radius=0.1, max_neighbors=16)
    print(f"exact search: {exact_cnt.mean():.1f} neighbors/query on average")

    # 3. Crescent's approximate search: split tree (h_t) + elision (h_e).
    setting = ApproxSetting(top_height=4, elision_height=8)
    approx_idx, approx_cnt, report = approximate_ball_query(
        tree, queries, radius=0.1, max_neighbors=16, setting=setting
    )
    recall = sum(
        len(set(a[:ca]) & set(e[:ce])) / max(ce, 1)
        for a, ca, e, ce in zip(approx_idx, approx_cnt, exact_idx, exact_cnt)
    ) / len(queries)
    print(f"approximate search under h = <{setting.top_height}, "
          f"{setting.elision_height}>:")
    print(f"  neighbors/query : {approx_cnt.mean():.1f}")
    print(f"  recall vs exact : {recall:.1%}")
    print(f"  nodes visited   : {report.nodes_visited} "
          f"(skipped {report.nodes_skipped} via conflict elision)")
    print(f"  sub-trees loaded: {report.subtrees_loaded}, "
          f"each streamed from DRAM exactly once")

    # 4. The same search on the cycle-level engine: cycles + energy.
    engine = NeighborSearchEngine()
    _, _, exact_run = engine.run(tree, queries, 0.1, 16, ApproxSetting(0, None))
    _, _, approx_run = engine.run(tree, queries, 0.1, 16, setting)
    print("\ncycle-level engine (same hardware, exact vs approximate):")
    print(f"  cycles : {exact_run.cycles:>8} -> {approx_run.cycles:>8} "
          f"({exact_run.cycles / approx_run.cycles:.2f}x faster)")
    print(f"  energy : {exact_run.energy.total:>10.0f} -> "
          f"{approx_run.energy.total:>10.0f} pJ")
    print(f"  DRAM   : all transfers streaming "
          f"(random bytes: {approx_run.dram.random_bytes})")


if __name__ == "__main__":
    main()
