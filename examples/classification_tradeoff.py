"""Approximation-aware training and the accuracy/performance trade-off.

Trains two PointNet++ classifiers on the synthetic shape dataset — one
conventionally, one with Crescent's mixed-h training — then sweeps the
inference-time knobs to show:

* the conventional model collapses under aggressive approximation,
* the mixed model holds its accuracy across the whole knob range,
* each knob setting maps to a concrete speedup on the accelerator model,

i.e. the trade-off space of the paper's Figs. 13/20/23 in one script.

Run:  python examples/classification_tradeoff.py   (~1 minute on a laptop)
"""

import numpy as np

from repro.accel import (
    NeighborSearchEngine,
    PointCloudAccelerator,
    evaluation_hardware,
    evaluation_networks,
    make_mesorasi,
    workload_points,
)
from repro.core import ApproxSetting
from repro.geometry import ShapeClassificationDataset
from repro.models import PointNetPPClassifier
from repro.training import ClassificationTrainer, FixedSetting, MixedSetting


def main() -> None:
    train = ShapeClassificationDataset(
        size=192, num_points=160, seed=0, occlusion=0.0, noise=0.01, rotate=False
    )
    test = ShapeClassificationDataset(
        size=64, num_points=160, seed=50_000, occlusion=0.0, noise=0.01, rotate=False
    )

    print("training the conventional (exact-search) model ...")
    conventional = ClassificationTrainer(
        PointNetPPClassifier(train.num_classes, np.random.default_rng(0)),
        FixedSetting(ApproxSetting(0, None)), lr=2e-3,
    )
    conventional.train(train, epochs=12)

    print("training the mixed-h (approximation-aware) model ...")
    mixed = ClassificationTrainer(
        PointNetPPClassifier(train.num_classes, np.random.default_rng(0)),
        MixedSetting(top_heights=(1, 2, 3, 4, 5), elision_heights=(3, 5, 6, None)),
        lr=2e-3,
    )
    mixed.train(train, epochs=12)

    # Performance of each knob on the accelerator (PointNet++ workload).
    hw = evaluation_hardware()
    spec = evaluation_networks()["PointNet++ (c)"]
    pts = workload_points("PointNet++ (c)")
    baseline_cycles = make_mesorasi(hw).run_network(
        spec, pts, ApproxSetting(0, None)
    ).cycles
    crescent = PointCloudAccelerator(hw, NeighborSearchEngine(hw), True)

    print(f"\n{'setting':>12} {'conventional':>14} {'mixed':>8} {'speedup':>9}")
    # Model-tree knobs (height-8 trees) paired with workload-tree knobs
    # (height-12 trees) at the same relative depth.
    for model_knob, hw_knob in [
        ((0, None), ApproxSetting(0, None)),
        ((2, 6), ApproxSetting(3, 9)),
        ((4, 6), ApproxSetting(4, 8)),
        ((5, 4), ApproxSetting(6, 6)),
    ]:
        setting = ApproxSetting(*model_knob)
        acc_conv = conventional.evaluate(test, setting)
        acc_mixed = mixed.evaluate(test, setting)
        speedup = baseline_cycles / crescent.run_network(spec, pts, hw_knob).cycles
        knob = f"<{model_knob[0]},{model_knob[1]}>"
        print(f"{knob:>12} {acc_conv:>14.3f} {acc_mixed:>8.3f} {speedup:>8.2f}x")

    print("\nthe mixed model turns the knob into a free dial: pick the "
          "speed you need at inference time, no retraining required.")


if __name__ == "__main__":
    main()
