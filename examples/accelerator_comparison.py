"""Reproduce the headline hardware result: Crescent vs prior accelerators.

Runs the paper's four evaluation networks through the cycle-level
accelerator models — Mesorasi (Tigris search + systolic array), Crescent
ANS, and Crescent ANS+BCE — and prints the Fig. 14-style comparison, plus
the GPU reference points.

Run:  python examples/accelerator_comparison.py   (~30 s)
"""

import statistics

from repro.analysis import format_table, run_evaluation_suite


def main() -> None:
    print("running the evaluation suite (4 networks x 3 accelerators) ...\n")
    suite = run_evaluation_suite()

    rows = []
    for name, r in suite.items():
        rows.append([
            name,
            f"{r.mesorasi.cycles:,}",
            f"{r.speedup_ans:.2f}x",
            f"{r.speedup_bce:.2f}x",
            f"{(1 - r.norm_energy_bce) * 100:.0f}%",
            f"{r.gpu_energy / r.mesorasi.energy.total:.0f}x",
        ])
    print(format_table(
        "Crescent vs Mesorasi (and GPU energy reference)",
        ["network", "Mesorasi cycles", "ANS speedup", "ANS+BCE speedup",
         "energy saved", "GPU energy"],
        rows,
    ))
    geomean = statistics.geometric_mean(r.speedup_bce for r in suite.values())
    print(f"\ngeomean ANS+BCE speedup: {geomean:.2f}x "
          f"(paper reports 1.9x on its 16 nm implementation)")

    best = max(suite.values(), key=lambda r: r.speedup_bce)
    frac = best.mesorasi.search_cycles / best.mesorasi.cycles
    print(f"largest win: {best.name} ({best.speedup_bce:.2f}x) — neighbor "
          f"search is {frac:.0%} of its baseline runtime, so taming the "
          f"search irregularity pays the most.")


if __name__ == "__main__":
    main()
