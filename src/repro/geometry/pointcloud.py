"""Point cloud container used throughout the library.

A :class:`PointCloud` is a thin, validated wrapper around an ``(N, 3)``
float array of coordinates plus optional per-point attribute arrays
(features, labels).  It is intentionally simple: the heavy lifting is done
by the K-d tree (:mod:`repro.kdtree`) and the network layers
(:mod:`repro.models`); this class only guarantees a consistent shape and
dtype contract at the boundary of every subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["PointCloud"]


@dataclass
class PointCloud:
    """An unordered set of 3D points with optional per-point attributes.

    Parameters
    ----------
    points:
        ``(N, 3)`` float64 array of XYZ coordinates.
    features:
        Optional ``(N, F)`` array of per-point features (e.g. intensity,
        normals).  ``None`` means the network uses raw coordinates.
    labels:
        Optional ``(N,)`` integer array of per-point labels (used by
        segmentation tasks).
    attrs:
        Free-form metadata (e.g. class id, scene id, sensor origin).
    """

    points: np.ndarray
    features: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = np.ascontiguousarray(self.points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError(
                f"points must have shape (N, 3), got {self.points.shape}"
            )
        if self.features is not None:
            self.features = np.ascontiguousarray(self.features, dtype=np.float64)
            if self.features.ndim != 2 or len(self.features) != len(self.points):
                raise ValueError(
                    "features must have shape (N, F) matching points; got "
                    f"{self.features.shape} for {len(self.points)} points"
                )
        if self.labels is not None:
            self.labels = np.ascontiguousarray(self.labels, dtype=np.int64)
            if self.labels.shape != (len(self.points),):
                raise ValueError(
                    "labels must have shape (N,) matching points; got "
                    f"{self.labels.shape} for {len(self.points)} points"
                )

    def __len__(self) -> int:
        return len(self.points)

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def centroid(self) -> np.ndarray:
        """Mean of the point coordinates, shape ``(3,)``."""
        return self.points.mean(axis=0)

    @property
    def bounds(self) -> np.ndarray:
        """Axis-aligned bounding box, shape ``(2, 3)`` (min row, max row)."""
        return np.stack([self.points.min(axis=0), self.points.max(axis=0)])

    def subset(self, indices: np.ndarray) -> "PointCloud":
        """Return a new cloud restricted to ``indices`` (order preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        return PointCloud(
            points=self.points[indices],
            features=None if self.features is None else self.features[indices],
            labels=None if self.labels is None else self.labels[indices],
            attrs=dict(self.attrs),
        )

    def normalized(self) -> "PointCloud":
        """Return a copy translated to the origin and scaled to the unit sphere.

        This mirrors the standard ModelNet40 preprocessing used by
        PointNet++ and DensePoint: subtract the centroid, then divide by the
        maximum point norm so every shape fits inside the unit ball.
        """
        centered = self.points - self.centroid
        scale = np.linalg.norm(centered, axis=1).max()
        if scale == 0.0:
            scale = 1.0
        return PointCloud(
            points=centered / scale,
            features=None if self.features is None else self.features.copy(),
            labels=None if self.labels is None else self.labels.copy(),
            attrs=dict(self.attrs),
        )

    def with_attrs(self, **attrs: object) -> "PointCloud":
        """Return a shallow copy with ``attrs`` merged into the metadata."""
        merged = dict(self.attrs)
        merged.update(attrs)
        return PointCloud(self.points, self.features, self.labels, merged)
