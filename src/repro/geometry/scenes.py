"""KITTI-like LiDAR scene synthesis.

F-PointNet is evaluated on KITTI, which we cannot ship.  This module
generates LiDAR-style outdoor scenes with the spatial statistics that drive
Crescent's memory behaviour: a dominant ground plane, ring-structured
sampling density that decays with range, and a sparse set of box-shaped
objects (cars) plus clutter.  Scenes expose oriented ground-truth boxes so
the detection pipeline (frustum proposal + box regression) can be trained
and scored with IoU, as the paper does for the car class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .pointcloud import PointCloud

__all__ = [
    "Box3D",
    "FrameDrift",
    "FrameMutation",
    "LidarScene",
    "generate_scene",
    "box_iou_bev",
]


@dataclass
class Box3D:
    """An upright (gravity-aligned) 3D bounding box.

    ``center`` is the box centroid, ``size`` the full extents
    ``(length, width, height)``, and ``yaw`` the rotation around +z.
    """

    center: np.ndarray
    size: np.ndarray
    yaw: float

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float64)
        self.size = np.asarray(self.size, dtype=np.float64)
        if self.center.shape != (3,) or self.size.shape != (3,):
            raise ValueError("center and size must be length-3 vectors")

    def corners_bev(self) -> np.ndarray:
        """Return the 4 bird's-eye-view corners, shape ``(4, 2)``."""
        l, w = self.size[0] / 2.0, self.size[1] / 2.0
        # Counter-clockwise order (the polygon clipper requires it).
        local = np.array([[l, w], [-l, w], [-l, -w], [l, -w]])
        c, s = np.cos(self.yaw), np.sin(self.yaw)
        rot = np.array([[c, -s], [s, c]])
        return local @ rot.T + self.center[:2]

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of ``points`` (N, 3) inside the box."""
        rel = points - self.center
        c, s = np.cos(-self.yaw), np.sin(-self.yaw)
        x = rel[:, 0] * c - rel[:, 1] * s
        y = rel[:, 0] * s + rel[:, 1] * c
        z = rel[:, 2]
        half = self.size / 2.0
        return (
            (np.abs(x) <= half[0])
            & (np.abs(y) <= half[1])
            & (np.abs(z) <= half[2])
        )


@dataclass
class LidarScene:
    """A synthetic LiDAR sweep plus ground-truth object boxes."""

    cloud: PointCloud
    boxes: List[Box3D]


def _ground(rng: np.random.Generator, n: int, extent: float) -> np.ndarray:
    """Ground-plane returns with ring-like radial density (denser nearby)."""
    # LiDAR rings: radial distance drawn so that density falls off ~1/r.
    r = extent * np.sqrt(rng.uniform(0.01, 1.0, size=n))
    theta = rng.uniform(-np.pi, np.pi, size=n)
    x = r * np.cos(theta)
    y = r * np.sin(theta)
    z = rng.normal(scale=0.03, size=n)  # slight roughness
    return np.stack([x, y, z], axis=1)


def _car_surface(rng: np.random.Generator, box: Box3D, n: int) -> np.ndarray:
    """Sample points on the visible surfaces of a car-sized box."""
    # Sample on the 4 vertical faces + roof, biased toward the sensor side.
    face = rng.integers(0, 5, size=n)
    u = rng.uniform(-0.5, 0.5, size=n)
    v = rng.uniform(-0.5, 0.5, size=n)
    pts = np.empty((n, 3))
    l, w, h = box.size
    for i in range(n):
        if face[i] == 0:  # +x face
            pts[i] = (l / 2, u[i] * w, v[i] * h)
        elif face[i] == 1:  # -x face
            pts[i] = (-l / 2, u[i] * w, v[i] * h)
        elif face[i] == 2:  # +y face
            pts[i] = (u[i] * l, w / 2, v[i] * h)
        elif face[i] == 3:  # -y face
            pts[i] = (u[i] * l, -w / 2, v[i] * h)
        else:  # roof
            pts[i] = (u[i] * l, v[i] * w, h / 2)
    c, s = np.cos(box.yaw), np.sin(box.yaw)
    rot = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    return pts @ rot.T + box.center


def generate_scene(
    rng: np.random.Generator,
    num_points: int = 4096,
    num_cars: int = 4,
    extent: float = 40.0,
    clutter_fraction: float = 0.15,
) -> LidarScene:
    """Generate one LiDAR scene.

    Point budget is split between ground returns, car surfaces (denser for
    nearby cars, like a real sweep), and clutter (poles, bushes) so the
    resulting K-d tree has the non-uniform density the paper's motivation
    study measures on KITTI.
    """
    if num_cars < 0:
        raise ValueError("num_cars must be non-negative")
    boxes: List[Box3D] = []
    for _ in range(num_cars):
        r = rng.uniform(5.0, extent * 0.8)
        theta = rng.uniform(-np.pi, np.pi)
        center = np.array([r * np.cos(theta), r * np.sin(theta), 0.8])
        size = np.array(
            [rng.uniform(3.6, 4.8), rng.uniform(1.6, 2.0), rng.uniform(1.4, 1.7)]
        )
        boxes.append(Box3D(center, size, yaw=rng.uniform(-np.pi, np.pi)))

    n_clutter = int(num_points * clutter_fraction)
    n_cars_total = int(num_points * 0.25) if boxes else 0
    n_ground = num_points - n_clutter - n_cars_total

    parts = [_ground(rng, n_ground, extent)]

    if boxes:
        # Nearer cars receive proportionally more returns (~1/r weighting).
        ranges = np.array([np.linalg.norm(b.center[:2]) for b in boxes])
        weights = (1.0 / np.maximum(ranges, 1.0))
        weights /= weights.sum()
        counts = rng.multinomial(n_cars_total, weights)
        for box, cnt in zip(boxes, counts):
            if cnt > 0:
                parts.append(_car_surface(rng, box, cnt))

    if n_clutter > 0:
        # Vertical clutter columns (poles / vegetation).
        n_cols = max(1, n_clutter // 64)
        centers = _ground(rng, n_cols, extent)
        col = rng.integers(0, n_cols, size=n_clutter)
        offsets = rng.normal(scale=0.3, size=(n_clutter, 3))
        offsets[:, 2] = rng.uniform(0.0, 3.0, size=n_clutter)
        parts.append(centers[col] + offsets)

    pts = np.concatenate(parts)[:num_points]
    labels = np.zeros(len(pts), dtype=np.int64)
    for box in boxes:
        labels[box.contains(pts)] = 1  # 1 = car, 0 = background
    cloud = PointCloud(pts, labels=labels, attrs={"extent": extent})
    return LidarScene(cloud=cloud, boxes=boxes)


@dataclass
class FrameMutation:
    """One frame of cloud drift: slots to remove, coordinates to insert.

    ``removes`` names slots by id — valid because the generator mirrors
    the :class:`~repro.kdtree.dynamic.DynamicKdTree` slot contract
    (inserts take sequential ids starting at the initial cloud size), so
    it can address any replica of the stream without ever seeing one.
    """

    inserts: np.ndarray  # (k, 3) float64
    removes: np.ndarray  # (k,) int64 slot ids


class FrameDrift:
    """Deterministic frame-to-frame drift over a synthetic LiDAR scene.

    Seeds a :func:`generate_scene` cloud, then on every :meth:`step`
    removes a ``churn`` fraction of the alive points and re-inserts them
    translated by a slowly rotating drift velocity plus jitter — the
    moving-scene workload (tracking, SLAM-style revisits) the dynamic
    serving path exists for.  Everything is drawn from one seeded
    generator, so two replays of the same seed produce bit-identical
    mutation streams and query batches; the mutating-cloud trace in
    :mod:`repro.serve.trace` leans on that to feed identical frames to
    the incremental and rebuild-from-scratch services.
    """

    def __init__(
        self,
        num_points: int = 2048,
        churn: float = 0.02,
        num_cars: int = 3,
        extent: float = 30.0,
        drift: float = 0.2,
        seed: int = 0,
    ):
        if not 0.0 < churn <= 1.0:
            raise ValueError("churn must be in (0, 1]")
        rng = np.random.default_rng(seed)
        self.scene = generate_scene(
            rng, num_points=num_points, num_cars=num_cars, extent=extent
        )
        self.initial_points = np.asarray(
            self.scene.cloud.points, dtype=np.float64
        ).copy()
        self.churn = float(churn)
        self.drift = float(drift)
        self._rng = rng
        self._frame = 0
        # Slot-space mirror (the same contract every DynamicKdTree
        # replica of this stream follows).
        self._coords = self.initial_points.copy()
        self._alive = np.ones(len(self._coords), dtype=bool)

    @property
    def alive_count(self) -> int:
        return int(self._alive.sum())

    def step(self) -> FrameMutation:
        """Advance one frame; returns its mutation batch."""
        alive_slots = np.nonzero(self._alive)[0]
        k = max(1, int(round(self.churn * len(alive_slots))))
        k = min(k, len(alive_slots))
        removes = np.sort(self._rng.choice(alive_slots, size=k, replace=False))
        angle = 0.13 * self._frame
        velocity = self.drift * np.array([np.cos(angle), np.sin(angle), 0.0])
        inserts = (
            self._coords[removes]
            + velocity
            + self._rng.normal(scale=0.02, size=(k, 3))
        )
        self._alive[removes] = False
        self._coords = np.concatenate([self._coords, inserts])
        self._alive = np.concatenate([self._alive, np.ones(k, dtype=bool)])
        self._frame += 1
        return FrameMutation(inserts=inserts, removes=removes.astype(np.int64))

    def frames(self, n: int) -> List[FrameMutation]:
        """The next ``n`` frames as a list (drawn eagerly, in order)."""
        return [self.step() for _ in range(n)]

    def sample_queries(self, m: int) -> np.ndarray:
        """``m`` query points near the current alive surface.

        Drawn from the same seeded stream as the mutations, so a trace
        replayed frame by frame hands every service the identical batch.
        """
        alive_slots = np.nonzero(self._alive)[0]
        anchors = self._rng.choice(alive_slots, size=m, replace=True)
        return self._coords[anchors] + self._rng.normal(scale=0.5, size=(m, 3))


def _polygon_area(poly: np.ndarray) -> float:
    x, y = poly[:, 0], poly[:, 1]
    return 0.5 * abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def _clip_polygon(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Sutherland–Hodgman polygon clipping (convex clip polygon)."""
    output = list(subject)
    for i in range(len(clip)):
        a, b = clip[i], clip[(i + 1) % len(clip)]
        edge = b - a
        input_list, output = output, []
        if not input_list:
            break

        def inside(p: np.ndarray) -> bool:
            return edge[0] * (p[1] - a[1]) - edge[1] * (p[0] - a[0]) >= 0

        s = input_list[-1]
        for e in input_list:
            if inside(e):
                if not inside(s):
                    output.append(_intersect(s, e, a, b))
                output.append(e)
            elif inside(s):
                output.append(_intersect(s, e, a, b))
            s = e
    return np.array(output) if output else np.empty((0, 2))


def _intersect(p1: np.ndarray, p2: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    d1 = p2 - p1
    d2 = b - a
    denom = d1[0] * d2[1] - d1[1] * d2[0]
    if abs(denom) < 1e-12:
        return p2
    t = ((a[0] - p1[0]) * d2[1] - (a[1] - p1[1]) * d2[0]) / denom
    return p1 + t * d1


def box_iou_bev(box_a: Box3D, box_b: Box3D) -> float:
    """Bird's-eye-view IoU between two oriented boxes.

    This is the standard KITTI "car" localization metric (axis z is ignored;
    the paper reports geometric-mean IoU on the car class).
    """
    pa = box_a.corners_bev()
    pb = box_b.corners_bev()
    inter_poly = _clip_polygon(pa, pb)
    if len(inter_poly) < 3:
        return 0.0
    inter = _polygon_area(inter_poly)
    area_a = _polygon_area(pa)
    area_b = _polygon_area(pb)
    union = area_a + area_b - inter
    if union <= 0:
        return 0.0
    return float(inter / union)
