"""Dataset classes binding the synthetic generators into train/test splits.

Three datasets mirror the paper's Table 1:

* :class:`ShapeClassificationDataset` — stands in for ModelNet40
  (classification; overall accuracy).
* :class:`PartSegmentationDataset` — stands in for ShapeNet
  (segmentation; mIoU).
* :class:`LidarDetectionDataset` — stands in for KITTI
  (detection; car-class IoU).

Each dataset is fully deterministic given its seed: instance ``i`` is
always synthesized from ``seed + i``, so train/test splits never leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .partseg import PART_CATEGORIES, sample_part_object
from .pointcloud import PointCloud
from .scenes import LidarScene, generate_scene
from .synthetic import sample_shape, shape_class_names
from .transforms import Compose

__all__ = [
    "ShapeClassificationDataset",
    "PartSegmentationDataset",
    "LidarDetectionDataset",
]


class _SeededDataset:
    """Common deterministic-indexing machinery for the synthetic datasets."""

    def __init__(self, size: int, seed: int):
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = size
        self._seed = seed

    def __len__(self) -> int:
        return self._size

    def _rng(self, index: int) -> np.random.Generator:
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        return np.random.default_rng(self._seed + index)


class ShapeClassificationDataset(_SeededDataset):
    """Shape-classification dataset (ModelNet40 stand-in).

    ``dataset[i]`` returns ``(PointCloud, class_id)``.
    """

    def __init__(
        self,
        size: int = 256,
        num_points: int = 256,
        seed: int = 0,
        noise: float = 0.02,
        occlusion: float = 0.1,
        rotate: bool = True,
        transform: Optional[Compose] = None,
    ):
        super().__init__(size, seed)
        self.num_points = num_points
        self.noise = noise
        self.occlusion = occlusion
        self.rotate = rotate
        self.transform = transform
        self.class_names = shape_class_names()

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def __getitem__(self, index: int) -> Tuple[PointCloud, int]:
        rng = self._rng(index)
        class_name = self.class_names[index % self.num_classes]
        cloud = sample_shape(
            class_name,
            rng,
            num_points=self.num_points,
            noise=self.noise,
            rotate=self.rotate,
            occlusion=self.occlusion,
        )
        if self.transform is not None:
            cloud = self.transform(cloud, rng)
        return cloud, int(cloud.attrs["class_id"])


class PartSegmentationDataset(_SeededDataset):
    """Part-segmentation dataset (ShapeNet stand-in).

    ``dataset[i]`` returns a :class:`PointCloud` whose ``labels`` are
    global part ids.
    """

    def __init__(
        self,
        size: int = 256,
        num_points: int = 256,
        seed: int = 1000,
        noise: float = 0.02,
        transform: Optional[Compose] = None,
    ):
        super().__init__(size, seed)
        self.num_points = num_points
        self.noise = noise
        self.transform = transform
        self.categories = list(PART_CATEGORIES.keys())

    def __getitem__(self, index: int) -> PointCloud:
        rng = self._rng(index)
        category = self.categories[index % len(self.categories)]
        cloud = sample_part_object(
            category, rng, num_points=self.num_points, noise=self.noise
        )
        if self.transform is not None:
            cloud = self.transform(cloud, rng)
        return cloud


class LidarDetectionDataset(_SeededDataset):
    """LiDAR detection dataset (KITTI stand-in).

    ``dataset[i]`` returns a :class:`~repro.geometry.scenes.LidarScene`.
    """

    def __init__(
        self,
        size: int = 64,
        num_points: int = 4096,
        seed: int = 2000,
        num_cars: int = 4,
        extent: float = 40.0,
    ):
        super().__init__(size, seed)
        self.num_points = num_points
        self.num_cars = num_cars
        self.extent = extent

    def __getitem__(self, index: int) -> LidarScene:
        rng = self._rng(index)
        return generate_scene(
            rng,
            num_points=self.num_points,
            num_cars=self.num_cars,
            extent=self.extent,
        )
