"""ShapeNet-like part segmentation data.

PointNet++ (s) is evaluated on ShapeNet part segmentation.  We substitute
composite objects assembled from labelled primitive parts: each object
class is a fixed arrangement of parts (e.g. a "lamp" = pole + shade +
base), and the task is to label every point with its part id.  The mIoU
metric and the per-point prediction structure match the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from .pointcloud import PointCloud
from .synthetic import random_rotation

__all__ = ["PART_CATEGORIES", "sample_part_object", "num_part_classes"]


def _pole(rng: np.random.Generator, n: int) -> np.ndarray:
    t = rng.uniform(-1, 1, size=n)
    jitter = rng.normal(scale=0.04, size=(n, 2))
    return np.stack([jitter[:, 0], jitter[:, 1], t], axis=1)


def _disk(rng: np.random.Generator, n: int, z: float, radius: float) -> np.ndarray:
    r = radius * np.sqrt(rng.uniform(0, 1, size=n))
    theta = rng.uniform(0, 2 * np.pi, size=n)
    zs = np.full(n, z) + rng.normal(scale=0.02, size=n)
    return np.stack([r * np.cos(theta), r * np.sin(theta), zs], axis=1)


def _shade(rng: np.random.Generator, n: int) -> np.ndarray:
    h = rng.uniform(0, 0.5, size=n)
    theta = rng.uniform(0, 2 * np.pi, size=n)
    r = 0.2 + 0.5 * h
    return np.stack([r * np.cos(theta), r * np.sin(theta), 1.0 - h], axis=1)


def _slab(rng: np.random.Generator, n: int, z: float, half: float) -> np.ndarray:
    xy = rng.uniform(-half, half, size=(n, 2))
    zs = np.full(n, z) + rng.normal(scale=0.02, size=n)
    return np.stack([xy[:, 0], xy[:, 1], zs], axis=1)


def _leg(rng: np.random.Generator, n: int, x: float, y: float) -> np.ndarray:
    t = rng.uniform(-1, 0, size=n)
    jitter = rng.normal(scale=0.03, size=(n, 2))
    return np.stack([x + jitter[:, 0], y + jitter[:, 1], t], axis=1)


def _wing(rng: np.random.Generator, n: int, sign: float) -> np.ndarray:
    u = rng.uniform(0, 1, size=n)
    v = rng.uniform(-0.15, 0.15, size=n)
    x = sign * (0.2 + 0.9 * u)
    return np.stack([x, v, 0.1 * u + rng.normal(scale=0.02, size=n)], axis=1)


def _fuselage(rng: np.random.Generator, n: int) -> np.ndarray:
    t = rng.uniform(-1, 1, size=n)
    theta = rng.uniform(0, 2 * np.pi, size=n)
    r = 0.15 * (1 - 0.5 * np.abs(t))
    return np.stack([r * np.cos(theta), t, r * np.sin(theta)], axis=1)


# Each category maps part-name -> (sampler, fraction of points).
# Part ids are globally unique across categories (ShapeNet convention).
_LampParts = {
    "lamp/base": (lambda rng, n: _disk(rng, n, -1.0, 0.5), 0.2),
    "lamp/pole": (_pole, 0.4),
    "lamp/shade": (_shade, 0.4),
}
_TableParts = {
    "table/top": (lambda rng, n: _slab(rng, n, 0.0, 1.0), 0.5),
    "table/leg": (
        lambda rng, n: np.concatenate(
            [
                _leg(rng, n // 4, sx, sy)
                for sx, sy in ((0.8, 0.8), (0.8, -0.8), (-0.8, 0.8), (-0.8, -0.8))
            ]
            + [np.empty((n - 4 * (n // 4), 3))]
        ),
        0.5,
    ),
}
_PlaneParts = {
    "plane/fuselage": (_fuselage, 0.5),
    "plane/wing_l": (lambda rng, n: _wing(rng, n, -1.0), 0.25),
    "plane/wing_r": (lambda rng, n: _wing(rng, n, 1.0), 0.25),
}

PART_CATEGORIES: Dict[str, Dict[str, Tuple[Callable, float]]] = {
    "lamp": _LampParts,
    "table": _TableParts,
    "plane": _PlaneParts,
}

_ALL_PART_NAMES: List[str] = [
    part for cat in PART_CATEGORIES.values() for part in cat.keys()
]


def num_part_classes() -> int:
    """Total number of distinct part labels across all categories."""
    return len(_ALL_PART_NAMES)


def part_id(name: str) -> int:
    return _ALL_PART_NAMES.index(name)


def sample_part_object(
    category: str,
    rng: np.random.Generator,
    num_points: int = 256,
    noise: float = 0.02,
    rotate: bool = True,
) -> PointCloud:
    """Sample one part-labelled object from ``category``.

    Returns a :class:`PointCloud` whose ``labels`` hold global part ids and
    whose ``attrs['category']`` names the object class.
    """
    if category not in PART_CATEGORIES:
        raise KeyError(f"unknown part category {category!r}")
    parts = PART_CATEGORIES[category]
    pts_list: List[np.ndarray] = []
    lab_list: List[np.ndarray] = []
    names = list(parts.keys())
    fracs = np.array([parts[n][1] for n in names])
    counts = np.maximum(1, (fracs / fracs.sum() * num_points).astype(int))
    # Adjust rounding so counts sum exactly to num_points.
    counts[-1] += num_points - counts.sum()
    for name, cnt in zip(names, counts):
        sampler = parts[name][0]
        pts = sampler(rng, int(cnt))[: int(cnt)]
        if len(pts) < cnt:  # samplers with integer-division slack
            extra = pts[rng.integers(0, max(len(pts), 1), size=cnt - len(pts))]
            pts = np.concatenate([pts, extra])
        pts_list.append(pts)
        lab_list.append(np.full(int(cnt), part_id(name), dtype=np.int64))
    points = np.concatenate(pts_list)
    labels = np.concatenate(lab_list)
    if rotate:
        points = points @ random_rotation(rng).T
    points = points + rng.normal(scale=noise, size=points.shape)
    perm = rng.permutation(len(points))
    cloud = PointCloud(points[perm], labels=labels[perm], attrs={"category": category})
    normalized = cloud.normalized()
    normalized.labels = cloud.labels
    normalized.attrs = dict(cloud.attrs)
    return normalized
