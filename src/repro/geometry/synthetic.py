"""Synthetic shape generators standing in for ModelNet40.

The paper evaluates classification on ModelNet40, which is unavailable
offline.  We substitute a parametric shape-classification dataset whose
classes are geometric primitives sampled with noise, anisotropic scaling,
random rotations, and partial occlusion.  What matters for Crescent is the
*spatial irregularity* of the points (it drives K-d tree shape, traversal
divergence, and bank conflicts), and these generators produce clouds with
the same qualitative irregularity as scanned CAD models while remaining
cheap enough to train on a CPU in seconds.

Every generator takes a :class:`numpy.random.Generator` so datasets are
reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from .pointcloud import PointCloud

__all__ = [
    "SHAPE_GENERATORS",
    "sample_shape",
    "shape_class_names",
    "random_rotation",
]


def _unit(rng: np.random.Generator, n: int) -> np.ndarray:
    """Sample ``n`` directions uniformly on the unit sphere."""
    v = rng.normal(size=(n, 3))
    norms = np.linalg.norm(v, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return v / norms


def sphere(rng: np.random.Generator, n: int) -> np.ndarray:
    """Points on a (slightly squashed) sphere surface."""
    pts = _unit(rng, n)
    return pts * rng.uniform(0.8, 1.2, size=(1, 3))


def cube(rng: np.random.Generator, n: int) -> np.ndarray:
    """Points on the surface of an axis-aligned cube."""
    face = rng.integers(0, 6, size=n)
    uv = rng.uniform(-1.0, 1.0, size=(n, 2))
    pts = np.empty((n, 3))
    axis = face % 3
    sign = np.where(face < 3, 1.0, -1.0)
    for i in range(n):
        a = axis[i]
        others = [d for d in range(3) if d != a]
        pts[i, a] = sign[i]
        pts[i, others[0]] = uv[i, 0]
        pts[i, others[1]] = uv[i, 1]
    return pts


def cylinder(rng: np.random.Generator, n: int) -> np.ndarray:
    """Points on a cylinder shell with end caps."""
    n_shell = int(n * 0.8)
    theta = rng.uniform(0, 2 * np.pi, size=n_shell)
    z = rng.uniform(-1.0, 1.0, size=n_shell)
    shell = np.stack([np.cos(theta), np.sin(theta), z], axis=1)
    n_cap = n - n_shell
    r = np.sqrt(rng.uniform(0, 1, size=n_cap))
    phi = rng.uniform(0, 2 * np.pi, size=n_cap)
    zc = rng.choice([-1.0, 1.0], size=n_cap)
    caps = np.stack([r * np.cos(phi), r * np.sin(phi), zc], axis=1)
    return np.concatenate([shell, caps])


def cone(rng: np.random.Generator, n: int) -> np.ndarray:
    """Points on a cone surface (apex up)."""
    h = rng.uniform(0, 1, size=n)
    theta = rng.uniform(0, 2 * np.pi, size=n)
    r = 1.0 - h
    return np.stack([r * np.cos(theta), r * np.sin(theta), 2 * h - 1], axis=1)


def torus(rng: np.random.Generator, n: int) -> np.ndarray:
    """Points on a torus with major radius 1 and minor radius ~0.35."""
    u = rng.uniform(0, 2 * np.pi, size=n)
    v = rng.uniform(0, 2 * np.pi, size=n)
    minor = rng.uniform(0.25, 0.45)
    x = (1 + minor * np.cos(v)) * np.cos(u)
    y = (1 + minor * np.cos(v)) * np.sin(u)
    z = minor * np.sin(v)
    return np.stack([x, y, z], axis=1)


def plane_cluster(rng: np.random.Generator, n: int) -> np.ndarray:
    """A thin planar slab — mimics tables/desks in ModelNet."""
    pts = rng.uniform(-1, 1, size=(n, 3))
    pts[:, 2] *= 0.05
    return pts


def helix(rng: np.random.Generator, n: int) -> np.ndarray:
    """A helical wire — an elongated, sparse structure."""
    t = rng.uniform(0, 4 * np.pi, size=n)
    jitter = rng.normal(scale=0.05, size=(n, 3))
    pts = np.stack([np.cos(t), np.sin(t), t / (2 * np.pi) - 1.0], axis=1)
    return pts + jitter


def two_blobs(rng: np.random.Generator, n: int) -> np.ndarray:
    """Two separated Gaussian clusters — highly non-uniform density."""
    half = n // 2
    a = rng.normal(loc=(-0.8, 0, 0), scale=0.25, size=(half, 3))
    b = rng.normal(loc=(0.8, 0, 0), scale=0.25, size=(n - half, 3))
    return np.concatenate([a, b])


SHAPE_GENERATORS: Dict[str, Callable[[np.random.Generator, int], np.ndarray]] = {
    "sphere": sphere,
    "cube": cube,
    "cylinder": cylinder,
    "cone": cone,
    "torus": torus,
    "plane": plane_cluster,
    "helix": helix,
    "blobs": two_blobs,
}


def shape_class_names() -> List[str]:
    """Ordered class names; index in this list is the class label."""
    return list(SHAPE_GENERATORS.keys())


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Sample a uniformly random 3D rotation matrix (via QR of a Gaussian)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def sample_shape(
    class_name: str,
    rng: np.random.Generator,
    num_points: int = 256,
    noise: float = 0.02,
    rotate: bool = True,
    occlusion: float = 0.0,
) -> PointCloud:
    """Sample one shape instance.

    Parameters
    ----------
    class_name:
        One of :func:`shape_class_names`.
    num_points:
        Points in the returned cloud (after occlusion, clouds are re-padded
        to exactly this size by resampling, mirroring the fixed-size inputs
        point cloud networks expect).
    noise:
        Standard deviation of isotropic Gaussian coordinate noise.
    rotate:
        Apply a uniformly random rotation (SO(3) augmentation).
    occlusion:
        Fraction in ``[0, 1)`` of the cloud removed by a random half-space
        cut, emulating self-occlusion in scans.
    """
    if class_name not in SHAPE_GENERATORS:
        raise KeyError(f"unknown shape class {class_name!r}")
    gen = SHAPE_GENERATORS[class_name]
    # Oversample so occlusion still leaves enough points.
    raw = gen(rng, int(num_points * (1.0 + occlusion) * 1.5) + 8)
    if occlusion > 0.0:
        direction = _unit(rng, 1)[0]
        proj = raw @ direction
        cutoff = np.quantile(proj, occlusion)
        raw = raw[proj >= cutoff]
    if rotate:
        raw = raw @ random_rotation(rng).T
    raw = raw + rng.normal(scale=noise, size=raw.shape)
    idx = rng.choice(len(raw), size=num_points, replace=len(raw) < num_points)
    label = shape_class_names().index(class_name)
    cloud = PointCloud(raw[idx], attrs={"class_id": label, "class_name": class_name})
    return cloud.normalized().with_attrs(class_id=label, class_name=class_name)
