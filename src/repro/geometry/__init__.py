"""Point-cloud geometry substrate: containers, synthetic datasets, transforms."""

from .pointcloud import PointCloud
from .synthetic import SHAPE_GENERATORS, sample_shape, shape_class_names, random_rotation
from .partseg import PART_CATEGORIES, num_part_classes, sample_part_object
from .scenes import (
    Box3D,
    FrameDrift,
    FrameMutation,
    LidarScene,
    box_iou_bev,
    generate_scene,
)
from .transforms import Compose, Jitter, RandomDropout, RandomScale, RandomYawRotation
from .datasets import (
    LidarDetectionDataset,
    PartSegmentationDataset,
    ShapeClassificationDataset,
)

__all__ = [
    "PointCloud",
    "SHAPE_GENERATORS",
    "sample_shape",
    "shape_class_names",
    "random_rotation",
    "PART_CATEGORIES",
    "num_part_classes",
    "sample_part_object",
    "Box3D",
    "FrameDrift",
    "FrameMutation",
    "LidarScene",
    "box_iou_bev",
    "generate_scene",
    "Compose",
    "Jitter",
    "RandomDropout",
    "RandomScale",
    "RandomYawRotation",
    "LidarDetectionDataset",
    "PartSegmentationDataset",
    "ShapeClassificationDataset",
]
