"""Augmentation transforms applied during network training.

These mirror the standard PointNet++ training pipeline: random rotation
about the gravity axis, coordinate jitter, anisotropic scaling, and random
point dropout.  Each transform is a callable ``(PointCloud, Generator) ->
PointCloud`` so they compose with :class:`Compose`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .pointcloud import PointCloud

__all__ = [
    "Compose",
    "RandomYawRotation",
    "Jitter",
    "RandomScale",
    "RandomDropout",
]

Transform = Callable[[PointCloud, np.random.Generator], PointCloud]


class Compose:
    """Apply a sequence of transforms left to right."""

    def __init__(self, transforms: Sequence[Transform]):
        self.transforms = list(transforms)

    def __call__(self, cloud: PointCloud, rng: np.random.Generator) -> PointCloud:
        for t in self.transforms:
            cloud = t(cloud, rng)
        return cloud


class RandomYawRotation:
    """Rotate uniformly about +z (the augmentation PointNet++ uses)."""

    def __call__(self, cloud: PointCloud, rng: np.random.Generator) -> PointCloud:
        theta = rng.uniform(0, 2 * np.pi)
        c, s = np.cos(theta), np.sin(theta)
        rot = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
        return PointCloud(
            cloud.points @ rot.T, cloud.features, cloud.labels, dict(cloud.attrs)
        )


class Jitter:
    """Add clipped Gaussian noise to every coordinate."""

    def __init__(self, sigma: float = 0.01, clip: float = 0.05):
        if sigma < 0 or clip < 0:
            raise ValueError("sigma and clip must be non-negative")
        self.sigma = sigma
        self.clip = clip

    def __call__(self, cloud: PointCloud, rng: np.random.Generator) -> PointCloud:
        noise = np.clip(
            rng.normal(scale=self.sigma, size=cloud.points.shape),
            -self.clip,
            self.clip,
        )
        return PointCloud(
            cloud.points + noise, cloud.features, cloud.labels, dict(cloud.attrs)
        )


class RandomScale:
    """Scale the whole cloud by a factor drawn from ``[low, high]``."""

    def __init__(self, low: float = 0.8, high: float = 1.25):
        if low <= 0 or high < low:
            raise ValueError("require 0 < low <= high")
        self.low = low
        self.high = high

    def __call__(self, cloud: PointCloud, rng: np.random.Generator) -> PointCloud:
        scale = rng.uniform(self.low, self.high)
        return PointCloud(
            cloud.points * scale, cloud.features, cloud.labels, dict(cloud.attrs)
        )


class RandomDropout:
    """Replace a random fraction of points with the first point.

    This is the "random input dropout" used by PointNet++: dropped points
    are overwritten rather than removed so the cloud size stays fixed.
    """

    def __init__(self, max_dropout: float = 0.5):
        if not 0.0 <= max_dropout < 1.0:
            raise ValueError("max_dropout must be in [0, 1)")
        self.max_dropout = max_dropout

    def __call__(self, cloud: PointCloud, rng: np.random.Generator) -> PointCloud:
        ratio = rng.uniform(0, self.max_dropout)
        mask = rng.uniform(size=len(cloud)) < ratio
        points = cloud.points.copy()
        points[mask] = points[0]
        labels = cloud.labels
        if labels is not None:
            labels = labels.copy()
            labels[mask] = labels[0]
        return PointCloud(points, cloud.features, labels, dict(cloud.attrs))
