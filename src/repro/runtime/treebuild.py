"""Level-synchronous vectorized tree construction (the serving cold path).

:func:`repro.kdtree.build.build_kdtree` pops one deque entry per node —
~N Python iterations and N small ``argsort`` calls per cloud — and
:class:`~repro.core.split_tree.SplitTree` lays out its DRAM image through
per-node dict inserts plus a per-root Python stack walk.  Every *distinct*
cloud pays both on first contact (the all-distinct sharded serving trace,
``register()`` re-registration after a worker respawn, epoch
materialization over many clouds), which makes tree construction the
dominant cold-start cost now that every query engine is array code.

This module rebuilds both structures with **all nodes of a depth level in
one shot**, O(log N) NumPy passes total and no per-node Python:

- :func:`vectorized_build_kdtree` — bit-identical to ``build_kdtree``
  (all six node arrays, both split rules, including stable-argsort tie
  routing on duplicate coordinates), pinned by the randomized equivalence
  suite in ``tests/test_runtime_treebuild.py``.
- :func:`euler_tour` — the preorder entry/exit intervals of
  ``KdTree._ensure_euler``, computed level-synchronously.
- :class:`VectorizedSplitTree` — a :class:`SplitTree` with an identical
  DRAM layout (addresses, block order, totals) built from Euler-interval
  arithmetic instead of per-node dict inserts.

Why bit-identity needs care: the reference sorts each node's candidate
list with a *stable* argsort, so ties on the split coordinate are routed
by the candidates' **incoming order**, which is itself the outcome of the
parent's stable sort — path-dependent, not original-index order.  The
level-synchronous builder therefore carries candidate lists through the
levels in exactly the reference's order and sorts each level with one
segmented stable sort.  Coordinates are replaced by dense ranks
(``np.unique`` inverse) once up front: equal coordinates get equal ranks,
so the segmented integer key ``segment * n_uniq + rank`` reproduces the
reference's comparisons exactly.  When the fused total-order key
``key * m + position`` fits in int64 (every realistic cloud), an unstable
``argsort`` of it is order-identical to the stable sort and measurably
faster; otherwise we fall back to ``kind="stable"``.

The per-node reference paths stay frozen as ground truth (ROADMAP
standing constraint; `reference-freeze` lint rule): this module imports
*from* them, never the other way around.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.split_tree import SplitTree
from ..kdtree.build import NODE_BYTES, KdTree

__all__ = [
    "DynamicSplitLayout",
    "VectorizedSplitTree",
    "euler_tour",
    "vectorized_build_kdtree",
]

# Above this, the fused sort key S * n_uniq * m could overflow int64 and
# the segmented sort falls back to kind="stable".  Reached only past ~2M
# points per cloud (the key bound grows like n^3).
_FUSED_KEY_LIMIT = 2**63 - 1


def _stable_segment_order(
    seg: np.ndarray, rank_vals: np.ndarray, num_segments: int, n_uniq: int
) -> np.ndarray:
    """Stable argsort of ``(seg, rank_vals)`` pairs, fastest safe way.

    ``key = seg * n_uniq + rank_vals`` composes both into one int64; when
    the further-fused ``key * m + position`` cannot overflow, sorting that
    total-order key with the default (unstable) sort gives exactly the
    stable order — every element's key is unique, and position is the
    stable tie-break.
    """
    m = len(seg)
    key = seg * n_uniq + rank_vals
    if num_segments * n_uniq * m <= _FUSED_KEY_LIMIT:
        return np.argsort(key * m + np.arange(m, dtype=np.int64))
    return np.argsort(key, kind="stable")


def vectorized_build_kdtree(points: np.ndarray, split_rule: str = "widest") -> KdTree:
    """Build the same balanced K-d tree as :func:`build_kdtree`, level at a time.

    Bit-identical output contract: the returned tree's ``point_id`` /
    ``split_dim`` / ``left`` / ``right`` / ``depth`` / ``subtree_size``
    arrays (values *and* dtypes) match ``build_kdtree(points, split_rule)``
    exactly, for both split rules, on any input the reference accepts —
    including duplicate coordinates, where tie routing follows the
    reference's stable argsort.

    BFS node-id assignment in the reference is level-order numbering, and
    the FIFO pop order within a level is "parent order, left child before
    right" — exactly the segment order this builder maintains, so node ids
    come out identical without any renumbering pass.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    n = len(points)
    if n == 0:
        raise ValueError("cannot build a K-d tree over zero points")
    if split_rule not in ("widest", "cycle"):
        raise ValueError(f"unknown split_rule {split_rule!r}")

    point_id = np.empty(n, dtype=np.int64)
    split_dim = np.zeros(n, dtype=np.int8)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int32)
    subtree_size = np.zeros(n, dtype=np.int64)

    # Presort once per dimension: dense coordinate ranks.  A stable sort
    # by coordinate is a stable sort by dense rank (equal coordinates ⇒
    # equal ranks), and integer ranks compose into the segmented key.
    cols = [np.ascontiguousarray(points[:, k]) for k in range(3)]
    ranks = np.empty((3, n), dtype=np.int64)
    n_uniq = 1
    for k in range(3):
        uniq, inv = np.unique(cols[k], return_inverse=True)
        ranks[k] = inv.reshape(-1)
        n_uniq = max(n_uniq, len(uniq))
    ranks_flat = ranks.reshape(-1)

    # Level state: the concatenated candidate lists of every open segment
    # (= node under construction), in the reference's queue order.
    ids = np.arange(n, dtype=np.int64)
    seg_start = np.zeros(1, dtype=np.int64)
    base = 0
    d = 0
    while len(ids):
        m = len(ids)
        num_segments = len(seg_start)
        seg_len = np.diff(np.append(seg_start, m))
        seg = np.repeat(np.arange(num_segments, dtype=np.int64), seg_len)

        if split_rule == "widest":
            # Largest-extent dim per segment.  np.argmax takes the lowest
            # index on ties, matching the reference; a 1-point segment has
            # all-zero extents ⇒ dim 0, matching its len==1 special case.
            extents = np.empty((num_segments, 3))
            for k in range(3):
                c = cols[k][ids]
                extents[:, k] = np.maximum.reduceat(c, seg_start) - np.minimum.reduceat(
                    c, seg_start
                )
            dim = np.argmax(extents, axis=1)
        else:
            dim = np.full(num_segments, d % 3, dtype=np.int64)

        rank_vals = ranks_flat[dim[seg] * n + ids]
        order = _stable_segment_order(seg, rank_vals, num_segments, n_uniq)
        sorted_ids = ids[order]

        med_off = (seg_len - 1) // 2
        med_pos = seg_start + med_off
        nodes = base + np.arange(num_segments, dtype=np.int64)
        point_id[nodes] = sorted_ids[med_pos]
        split_dim[nodes] = dim.astype(np.int8)
        depth[nodes] = d
        subtree_size[nodes] = seg_len

        # Children ids: the next level numbers its nodes in this level's
        # segment order, left before right, skipping empty sides.
        left_len = med_off
        right_len = seg_len - 1 - med_off
        has_left = left_len > 0
        has_right = right_len > 0
        child_base = np.concatenate(
            ([0], np.cumsum(has_left.astype(np.int64) + has_right)[:-1])
        )
        next_base = base + num_segments
        left[nodes[has_left]] = next_base + child_base[has_left]
        right[nodes[has_right]] = next_base + child_base[has_right] + has_left[has_right]

        # Drop the medians; what remains, in sorted order, is exactly the
        # concatenation of every child segment in id order.
        keep = np.ones(m, dtype=bool)
        keep[med_pos] = False
        ids = sorted_ids[keep]
        child_lens = np.stack([left_len, right_len], axis=1).ravel()
        child_lens = child_lens[child_lens > 0]
        seg_start = np.concatenate(([0], np.cumsum(child_lens)[:-1]))
        base = next_base
        d += 1

    return KdTree(
        points=points,
        point_id=point_id,
        split_dim=split_dim,
        left=left,
        right=right,
        depth=depth,
        subtree_size=subtree_size,
    )


def euler_tour(tree: KdTree) -> Tuple[np.ndarray, np.ndarray]:
    """Preorder entry/exit intervals of ``tree``, level-synchronously.

    Identical values to ``KdTree._ensure_euler`` (the per-node stack
    walk): ``tin`` is the preorder visit index, ``tout = tin +
    subtree_size``, and node ``b`` lies in the subtree of ``a`` iff
    ``tin[a] <= tin[b] < tout[a]``.  The computed arrays are cached onto
    ``tree.tin`` / ``tree.tout`` exactly as the reference would.
    """
    if tree.tin is not None and tree.tout is not None:
        return tree.tin, tree.tout
    n = tree.num_nodes
    left, right, size, depth = tree.left, tree.right, tree.subtree_size, tree.depth
    tin = np.zeros(n, dtype=np.int64)
    order = np.argsort(depth, kind="stable")
    height = int(depth[order[-1]]) + 1
    starts = np.searchsorted(depth[order], np.arange(height + 1))
    # A left child enters right after its parent; a right child after the
    # whole left subtree.  One pass per level resolves every interval.
    for d in range(height - 1):
        nodes = order[starts[d] : starts[d + 1]]
        l, r = left[nodes], right[nodes]
        has_l, has_r = l >= 0, r >= 0
        tin[l[has_l]] = tin[nodes[has_l]] + 1
        right_base = tin[nodes] + 1 + np.where(has_l, size[np.where(has_l, l, 0)], 0)
        tin[r[has_r]] = right_base[has_r]
    tout = tin + size
    tree.tin = tin
    tree.tout = tout
    return tin, tout


class VectorizedSplitTree(SplitTree):
    """A :class:`SplitTree` with an array-built (but identical) DRAM layout.

    Same constructor contract, same layout (top tree first, then each
    sub-tree block in ascending root-id order, nodes in preorder within a
    block), same per-node addresses and totals — the split-tree
    equivalence suite pins every accessor against the reference.  The
    per-node dict inserts and per-root Python stack walks are replaced by
    Euler-interval arithmetic:

    - a node's position inside its sub-tree block is ``tin[node] -
      tin[root]`` (preorder offset);
    - the owning root of a non-top node is a ``searchsorted`` over the
      roots' disjoint ``tin`` intervals;
    - any subtree's preorder node list is a slice of the global preorder
      permutation — which also serves parked queries routed to a node
      *above* the sub-tree level in O(subtree) instead of a fresh walk.
    """

    def __init__(self, tree: KdTree, top_height: int):
        if top_height < 0:
            raise ValueError("top_height must be non-negative")
        if top_height >= tree.height:
            raise ValueError(
                f"top_height {top_height} must be < tree height {tree.height}"
            )
        self.tree = tree
        self.top_height = top_height
        n = tree.num_nodes
        if top_height == 0:
            self._top_nodes = np.empty(0, dtype=np.int64)
            self.subtree_roots = np.array([tree.root], dtype=np.int64)
        else:
            self._top_nodes = np.nonzero(tree.depth < top_height)[0]
            self.subtree_roots = np.nonzero(tree.depth == top_height)[0]

        tin, tout = euler_tour(tree)
        self._tin = tin
        self._tout = tout
        self._preorder = np.argsort(tin)

        address = np.empty(n, dtype=np.int64)
        num_top = len(self._top_nodes)
        address[self._top_nodes] = np.arange(num_top, dtype=np.int64) * NODE_BYTES
        roots = self.subtree_roots
        sizes = tout[roots] - tin[roots]
        bases = (num_top + np.concatenate(([0], np.cumsum(sizes[:-1])))) * NODE_BYTES

        base_of_root = np.zeros(n, dtype=np.int64)
        base_of_root[roots] = bases
        by_tin = np.argsort(tin[roots])
        roots_by_tin = roots[by_tin]
        is_top = np.zeros(n, dtype=bool)
        is_top[self._top_nodes] = True
        nontop = np.nonzero(~is_top)[0]
        slot = np.searchsorted(tin[roots_by_tin], tin[nontop], side="right") - 1
        owner = roots_by_tin[slot]
        address[nontop] = base_of_root[owner] + (tin[nontop] - tin[owner]) * NODE_BYTES
        self._address = address

        # Kept for attribute compatibility with the reference (tests and
        # tooling peek at the bases); small — one entry per sub-tree.
        self._subtree_base = dict(zip(map(int, roots), map(int, bases)))
        self._subtree_nodes: dict = {}
        self._total_bytes = int(num_top + sizes.sum()) * NODE_BYTES

    def subtree_nodes(self, root: int) -> np.ndarray:
        r = int(root)
        return self._preorder[self._tin[r] : self._tout[r]]

    def max_subtree_nodes(self) -> int:
        return int(self.tree.subtree_size[self.subtree_roots].max())

    def dram_address_of(self, node: int) -> int:
        return int(self._address[int(node)])

    def queue_occupancy(self, queries: np.ndarray) -> dict:
        roots = self.route_queries(queries)
        occ = dict.fromkeys(map(int, self.subtree_roots.tolist()), 0)
        uniq, counts = np.unique(roots, return_counts=True)
        occ.update(zip(map(int, uniq.tolist()), map(int, counts.tolist())))
        return occ


class DynamicSplitLayout:
    """Split-tree DRAM image of a mutating cloud, refreshed per dirty region.

    A :class:`~repro.kdtree.dynamic.DynamicKdTree` is a set of frozen
    segments, each an ordinary :class:`~repro.kdtree.build.KdTree` — so
    its accelerator memory image is one :class:`VectorizedSplitTree`
    block per segment, concatenated.  Segment ids are allocated once and
    never rebuilt in place, which makes them exactly the dirty-region
    granularity: :meth:`refresh` drops blocks whose segment disappeared
    and lays out only the **new** segments, leaving surviving blocks (and
    their node addresses) untouched.  ``layouts_built`` counts block
    builds, so tests can prove a one-segment churn did not re-lay the
    whole cloud.

    Per-segment ``top_height`` is clamped to the segment tree's height
    (small fresh segments are shallower than the configured split).
    """

    def __init__(self, dynamic_tree, top_height: int):
        if top_height < 0:
            raise ValueError("top_height must be non-negative")
        self.dynamic_tree = dynamic_tree
        self.top_height = int(top_height)
        self.layouts_built = 0
        self._blocks: dict = {}  # segment id -> VectorizedSplitTree
        self._bases: dict = {}  # segment id -> base DRAM address
        self._total_bytes = 0
        self.refresh()

    def refresh(self) -> int:
        """Sync with the index (refreshing it first); returns blocks built."""
        self.dynamic_tree.refresh()
        trees = self.dynamic_tree.segment_trees()
        for sid in [s for s in self._blocks if s not in trees]:
            del self._blocks[sid]
        built = 0
        for sid, tree in trees.items():
            if sid not in self._blocks:
                clamped = min(self.top_height, tree.height - 1)
                self._blocks[sid] = VectorizedSplitTree(tree, clamped)
                built += 1
        self.layouts_built += built
        # Bases are recomputed on every refresh (cheap: one add per
        # block); block-internal addresses never move.
        base = 0
        self._bases = {}
        for sid in sorted(self._blocks):
            self._bases[sid] = base
            base += self._blocks[sid].total_bytes
        self._total_bytes = base
        return built

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def block(self, segment_id: int) -> VectorizedSplitTree:
        return self._blocks[segment_id]

    def dram_address_of(self, segment_id: int, node: int) -> int:
        return self._bases[segment_id] + self._blocks[segment_id].dram_address_of(node)
