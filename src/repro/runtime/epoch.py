"""Epoch-batched training materialization.

The Sec. 5 trainers used to materialize neighbor index matrices one cloud
at a time from inside the gradient loop: each training step called
:meth:`~repro.core.pipeline.ApproximationPipeline.query` for each layer of
its one input, interleaving cheap Python bookkeeping with the actual
search work and leaving nothing for a process pool to grab.  This module
pulls the whole epoch's search work out in front:

* :class:`EpochPlan` draws the **entire** ``(sample, setting)`` schedule —
  every epoch's permutation and per-input :class:`SettingSampler` draw —
  up front, in exactly the RNG order the per-step loop used, so losses
  stay bit-identical seed for seed.
* :func:`materialize_requests` dedupes the scheduled neighbor queries by
  memoization key, drops the ones the shared
  :class:`~repro.runtime.SearchSession` already holds, groups the rest by
  ``(point-geometry digest, setting)`` — one K-d tree build per group —
  and computes them either in process (warming the session cache directly)
  or fanned across a :class:`~repro.runtime.SweepRunner` process pool.
  Workers reuse PR 3's :func:`~repro.runtime.network.worker_session`
  economy (long-lived per-worker sessions pool trees across jobs) and ship
  ``(memo key, (indices, counts))`` pairs back for insertion into the
  caller's session, so the gradient loop then runs against a warm cache.

Bit-identity is by construction: materialization calls the exact same
:meth:`~repro.core.pipeline.ApproximationPipeline.query_with_counts`
compute path the forward pass would, just earlier (and possibly in a
worker); the forward pass then hits the cache — or, after an LRU
eviction, deterministically recomputes the same matrix.

What a model must expose to ride this path: a ``query_plan(points,
cache_key)`` method returning the :class:`QueryRequest` list its forward
pass will issue (geometry only — settings are scheduled per input).  The
:class:`~repro.models.layers.SetAbstraction` layers derive both the plan
and the forward-pass query from one helper, so the two cannot drift.
Models without ``query_plan`` simply train through the per-step path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .network import worker_session
from .session import geometry_digest
from .sweep import SweepRunner

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from ..core.config import ApproxSetting
    from ..core.pipeline import ApproximationPipeline
    from ..training.sampling import SettingSampler

__all__ = [
    "QueryRequest",
    "MaterializeRequest",
    "MaterializeReport",
    "EpochSchedule",
    "EpochPlan",
    "materialize_requests",
]


@dataclass
class QueryRequest:
    """One neighbor query a model's forward pass will issue.

    Geometry plus the call-site ``cache_key`` only — the approximation
    setting is scheduled per training input and bound later with
    :meth:`with_setting`.
    """

    points: np.ndarray
    queries: np.ndarray
    radius: float
    max_neighbors: int
    cache_key: Hashable

    def with_setting(self, setting: "ApproxSetting") -> "MaterializeRequest":
        return MaterializeRequest(
            points=self.points,
            queries=self.queries,
            radius=self.radius,
            max_neighbors=self.max_neighbors,
            setting=setting,
            cache_key=self.cache_key,
        )


@dataclass
class MaterializeRequest:
    """A :class:`QueryRequest` bound to a concrete approximation setting."""

    points: np.ndarray
    queries: np.ndarray
    radius: float
    max_neighbors: int
    setting: "ApproxSetting"
    cache_key: Hashable


@dataclass
class MaterializeReport:
    """What one materialization pass did (observability for tests/benches)."""

    scheduled: int = 0  # requests submitted (cacheable ones)
    deduped: int = 0  # distinct memoization keys among them
    already_cached: int = 0  # keys the session already held
    computed: int = 0  # keys actually computed this pass
    cache_grown_to: int = 0  # result-cache capacity after the pass


@dataclass
class EpochSchedule:
    """One epoch's visit order and the setting drawn for each visit.

    ``settings[i]`` is the draw for the ``i``-th *processed* input, i.e.
    the sample at dataset position ``order[i]`` — matching the per-step
    loop, which drew a setting per iteration of its shuffled order.
    """

    order: np.ndarray
    settings: List["ApproxSetting"]


class EpochPlan:
    """The whole training run's ``(sample, setting)`` schedule, drawn up front.

    RNG-stream-compatible with the retired per-step loop: that loop drew,
    per epoch, one permutation followed by one sampler draw per input,
    with no other consumption of the trainer RNG in between — so drawing
    the same sequence eagerly consumes the stream identically and every
    downstream draw (and therefore every loss) is unchanged seed for seed.
    """

    def __init__(self, schedules: List[EpochSchedule]):
        self.schedules = schedules

    @classmethod
    def draw(
        cls,
        rng: np.random.Generator,
        sampler: "SettingSampler",
        num_items: int,
        epochs: int,
    ) -> "EpochPlan":
        schedules = []
        for _ in range(epochs):
            order = rng.permutation(num_items)
            settings = [sampler.sample(rng) for _ in range(num_items)]
            schedules.append(EpochSchedule(order=order, settings=settings))
        return cls(schedules)

    def epoch_requests(
        self,
        epoch: int,
        plan_fn: Callable[[int], Sequence[QueryRequest]],
    ) -> List[MaterializeRequest]:
        """Bind one epoch's scheduled settings to per-sample query plans.

        ``plan_fn(position)`` returns the :class:`QueryRequest` list for
        the dataset item at ``position``.  An epoch's order is a
        permutation (each position visited once), so callers whose plans
        are expensive should memoize ``plan_fn`` across epochs — as
        :meth:`repro.training.trainer._BaseTrainer.train` does — rather
        than expect caching here.
        """
        schedule = self.schedules[epoch]
        out: List[MaterializeRequest] = []
        for i, pos in enumerate(schedule.order):
            out.extend(
                req.with_setting(schedule.settings[i]) for req in plan_fn(int(pos))
            )
        return out


# ----------------------------------------------------------------------
# The materialization engine
# ----------------------------------------------------------------------
def materialize_requests(
    pipeline: "ApproximationPipeline",
    requests: Sequence[MaterializeRequest],
    runner: Optional[SweepRunner] = None,
) -> MaterializeReport:
    """Warm ``pipeline.session`` with every request's neighbor matrix.

    Requests with ``cache_key=None`` are uncacheable and skipped (the
    forward pass will compute them per step, as before).  The rest are
    deduped by full memoization key and grouped by ``(points digest,
    setting)`` so each process job builds each K-d tree once; without a
    fanning runner the group structure is irrelevant and every miss is
    computed in process, which warms the cache directly.
    """
    report = MaterializeReport()
    session = pipeline.session
    # Geometry digests cached by array identity: a settings grid reuses
    # each (points, queries) pair object once per setting, and training
    # epochs reuse the plan-cached pairs every epoch — one blake2b pass
    # per pair is enough.  Cached tuples pin the arrays they hash, so an
    # ``id`` cannot be recycled mid-call.
    pair_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, str]] = {}

    def pair_digest(req: MaterializeRequest) -> str:
        ckey = (id(req.points), id(req.queries))
        cached = pair_cache.get(ckey)
        if cached is None or cached[0] is not req.points or cached[1] is not req.queries:
            points = np.asarray(req.points, dtype=np.float64)
            queries = np.atleast_2d(np.asarray(req.queries, dtype=np.float64))
            cached = (req.points, req.queries, geometry_digest(points, queries))
            pair_cache[ckey] = cached
        return cached[2]

    unique: Dict[Hashable, MaterializeRequest] = {}
    for req in requests:
        if req.cache_key is None:
            continue
        report.scheduled += 1
        key = pipeline.memo_key(
            req.points, req.queries, req.radius, req.max_neighbors,
            req.setting, req.cache_key, digest=pair_digest(req),
        )
        unique.setdefault(key, req)
    report.deduped = len(unique)
    todo = {
        key: req for key, req in unique.items() if key not in session.results
    }
    report.already_cached = report.deduped - len(todo)
    report.computed = len(todo)
    # The warm-cache guarantee requires the whole deduped working set to
    # survive until the gradient/eval loop consumes it.  A grid larger
    # than the session's LRU bound would otherwise evict its own oldest
    # entries before first use — the loop would then recompute every
    # evicted search per step and the materialization pass would be pure
    # overhead.  Grow the bound to the working set instead: it is sized
    # by one epoch's schedule (not unbounded), which is exactly the
    # memory the caller asked to materialize.
    if report.deduped > session.results.max_entries:
        session.results.max_entries = report.deduped
    report.cache_grown_to = session.results.max_entries
    # Refresh recency on the working-set keys the session already holds:
    # the upcoming inserts must evict unrelated old entries, never the
    # cached half of the very grid being materialized.
    for key in unique:
        if key not in todo:
            session.results.get(key)
    if not todo:
        return report

    if runner is None or not runner.will_fan_out(len(todo)):
        for req in todo.values():
            pipeline.query_with_counts(
                req.points, req.queries, req.radius, req.max_neighbors,
                req.setting, cache_key=req.cache_key,
            )
        return report

    # Group by (geometry digest of the searched cloud, setting): one tree
    # build per job, jobs deterministic in first-appearance order.  The
    # digest is cached by array identity — many requests share one cloud
    # object (every setting of a grid, every layer-1 request of a sample)
    # and hashing a cloud's bytes once is enough.  The cache pins the
    # arrays it has seen, so an ``id`` can't be recycled mid-loop.
    digest_cache: Dict[int, Tuple[np.ndarray, str]] = {}

    def cloud_digest(points: np.ndarray) -> str:
        cached = digest_cache.get(id(points))
        if cached is None or cached[0] is not points:
            cached = (points, geometry_digest(np.asarray(points, dtype=np.float64)))
            digest_cache[id(points)] = cached
        return cached[1]

    groups: Dict[Tuple[str, "ApproxSetting"], List[Tuple[Hashable, MaterializeRequest]]] = {}
    for key, req in todo.items():
        gkey = (cloud_digest(req.points), req.setting)
        groups.setdefault(gkey, []).append((key, req))
    config = pipeline.picklable_config()
    # Each job ships its group's cloud exactly once; per-request payload
    # is just the (small) query set and scalars.
    jobs = [
        (
            config,
            group[0][1].points,
            [
                (key, req.queries, req.radius, req.max_neighbors,
                 req.setting, req.cache_key)
                for key, req in group
            ],
        )
        for group in groups.values()
    ]
    for pairs in runner.starmap(_materialize_job, jobs):
        for key, value in pairs:
            session.results.put(key, value)
    return report


def _materialize_job(config: tuple, points: np.ndarray, items: list) -> list:
    """One (cloud, setting) group of neighbor queries (module-level:
    process pools pickle it).

    The worker keeps one long-lived session for its lifetime
    (:func:`~repro.runtime.network.worker_session`), so consecutive jobs
    over the same cloud — e.g. every setting of a sweep — build its tree
    and split-tree layouts once per worker rather than once per job.
    """
    from ..core.pipeline import ApproximationPipeline

    tree_banking, point_banking, num_pes, agg_ports, elide_aggregation = config
    pipeline = ApproximationPipeline(
        tree_banking=tree_banking,
        point_banking=point_banking,
        num_pes=num_pes,
        agg_ports=agg_ports,
        elide_aggregation=elide_aggregation,
        session=worker_session(),
    )
    out = []
    for key, queries, radius, max_neighbors, setting, cache_key in items:
        value = pipeline.query_with_counts(
            points, queries, radius, max_neighbors, setting, cache_key=cache_key
        )
        out.append((key, value))
    return out
