"""Search sessions: tree construction + memoization for repeated queries.

A :class:`SearchSession` owns the two caches the query runtime needs:

* a **tree cache** — K-d trees keyed by a digest of the point coordinates,
  so a sweep that queries the same cloud under many settings builds the
  tree once instead of once per call;
* a **result cache** — an LRU of query results keyed by ``(caller key,
  geometry digest)``.

Digesting the geometry (rather than trusting a caller-supplied
``cache_key`` alone, as the ad-hoc dict in earlier revisions of
:mod:`repro.core.pipeline` did) closes a stale-cache hazard: reusing a
``cache_key`` after mutating the underlying points used to silently return
the previous geometry's neighbor matrix.  With the digest folded into
every key, mutated points simply miss the cache and recompute.

Both caches are bounded LRUs, so long training runs cannot grow memory
without limit the way the unbounded dict could.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Optional, Tuple

import numpy as np

from ..kdtree.build import KdTree, build_kdtree
from .batched import BatchedBallQuery

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from ..core.split_tree import SplitTree

__all__ = [
    "CacheStats",
    "LruCache",
    "SearchSession",
    "dynamic_handle",
    "geometry_digest",
    "tree_digest",
]

# Distinguishes "no entry" from a cached falsy value (None, 0, empty
# array wrapper, ...).  LruCache.get must never treat a legitimately
# cached None as a miss — callers compare against this marker (or their
# own default) instead of None.
_MISS = object()


def geometry_digest(*arrays: np.ndarray) -> str:
    """Content digest of one or more arrays (dtype- and shape-sensitive)."""
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def dynamic_handle(digest: str, seq: int) -> str:
    """Stable handle for one dynamic-cloud registration.

    Hex (so the sharded tier's ``int(handle[:16], 16)`` routing applies
    unchanged) and unique per registration: the content digest alone
    would alias two independently drifting clouds that happened to start
    from identical coordinates.
    """
    return hashlib.blake2b(f"{digest}:{seq}".encode(), digest_size=16).hexdigest()


def tree_digest(tree: KdTree) -> str:
    """Structural digest of a built K-d tree.

    Folds in the node wiring (``point_id``, ``left``, ``right``,
    ``split_dim``) on top of the coordinates, so two trees over identical
    points built with different split rules never share cache entries.
    """
    return geometry_digest(
        tree.points,
        np.asarray(tree.point_id),
        np.asarray(tree.left),
        np.asarray(tree.right),
        np.asarray(tree.split_dim),
    )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache:
    """A small least-recently-used mapping with hit/miss accounting."""

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default=None):
        """Return the cached value or ``default``, refreshing recency.

        ``None`` is a legal cached *value*: a miss returns ``default``
        (itself ``None`` unless overridden), never a sentinel confusable
        with stored data.  Callers that may cache falsy values pass their
        own unambiguous marker — as :meth:`memoize` does — so a cached
        ``None`` counts as the hit it is instead of being silently
        recomputed (and double-counted as a miss) forever.
        """
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return default
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def pop(self, key: Hashable, default=None):
        """Remove and return an entry (invalidation, not a lookup: no
        hit/miss accounting, and absence is not an error)."""
        return self._data.pop(key, default)

    def drop_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return the
        number dropped.  Invalidation, so stats are untouched."""
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
        return len(doomed)

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def clear(self) -> None:
        """Empty the cache *and* reset its stats: a cleared cache that
        kept reporting the old hit rate (and eviction count) made every
        post-``SearchSession.clear()`` measurement lie."""
        self._data.clear()
        self.reset_stats()


class SearchSession:
    """Owns trees and memoized results for a stream of neighbor queries.

    One session is typically shared by every layer of a network (and every
    configuration of a sweep), the same economy the authors' artifact uses
    to keep approximation-aware training affordable.

    Parameters
    ----------
    max_results:
        Result-cache capacity (entries, LRU-evicted).
    max_trees:
        Tree-cache capacity.  Trees are keyed by point-coordinate digest,
        so in-place mutation of a cloud naturally re-keys.
    builder:
        ``"vector"`` (default) fills cache misses with the
        level-synchronous builders in :mod:`repro.runtime.treebuild`;
        ``"reference"`` uses the per-node originals.  Bit-identical
        either way (the treebuild equivalence suite pins this), so the
        knob exists for A/B benchmarks, not behavior.
    """

    def __init__(
        self,
        max_results: int = 512,
        max_trees: int = 64,
        builder: str = "vector",
    ):
        if builder not in ("vector", "reference"):
            raise ValueError(f"unknown builder {builder!r}")
        self.builder = builder
        self.results = LruCache(max_results)
        self.trees = LruCache(max_trees)
        self.split_trees = LruCache(max_trees)
        # Dynamic-cloud registry: handle -> DynamicKdTree.  State, not a
        # cache — entries live until the caller drops the handle, and
        # clear() leaves them alone.
        self._dynamic: "OrderedDict[str, object]" = OrderedDict()
        self._dynamic_layouts: dict = {}  # (handle, top_height) -> layout
        self._dynamic_seq = itertools.count()

    # ------------------------------------------------------------------
    def tree_for(self, points: np.ndarray, digest: Optional[str] = None) -> KdTree:
        """Build (or fetch) the K-d tree over ``points``.

        ``digest`` lets callers that already computed
        ``geometry_digest(points)`` (the serving layer digests every
        request at submit time) skip re-hashing the cloud here; it must
        be the digest of ``points`` as float64.
        """
        points = np.asarray(points, dtype=np.float64)
        key = geometry_digest(points) if digest is None else digest
        tree = self.trees.get(key, _MISS)
        if tree is _MISS:
            if self.builder == "vector":
                # Imported lazily: treebuild imports repro.core (for the
                # SplitTree base), which imports this module at load time.
                from .treebuild import vectorized_build_kdtree

                tree = vectorized_build_kdtree(points)
            else:
                tree = build_kdtree(points)
            self.trees.put(key, tree)
        return tree

    def split_tree_for(self, tree: KdTree, top_height: int) -> "SplitTree":
        """Build (or fetch) the :class:`SplitTree` over ``tree``.

        Keyed by the tree's structural digest plus ``top_height``, so a
        network sweep that revisits the same cloud under many settings
        lays the split-tree memory image out once per ``h_t`` instead of
        once per layer call.
        """
        key = (tree_digest(tree), int(top_height))
        split = self.split_trees.get(key, _MISS)
        if split is _MISS:
            # Imported here: repro.core.pipeline imports this module at
            # load time, so a module-level import of repro.core (direct
            # or via treebuild) would be circular.
            if self.builder == "vector":
                from .treebuild import VectorizedSplitTree

                split = VectorizedSplitTree(tree, int(top_height))
            else:
                from ..core.split_tree import SplitTree

                split = SplitTree(tree, int(top_height))
            self.split_trees.put(key, split)
        return split

    def ball_query(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        cache_key: Optional[Hashable] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact batched ball query with optional memoization.

        Bit-identical to :func:`repro.kdtree.exact.ball_query` over the
        session-built tree (the parity suite pins this down).
        """
        points = np.asarray(points, dtype=np.float64)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))

        def compute() -> Tuple[np.ndarray, np.ndarray]:
            tree = self.tree_for(points)
            return BatchedBallQuery(tree).query(queries, radius, max_neighbors)

        if cache_key is None:
            return compute()
        return self.memoize(
            ("ball_query", cache_key, radius, max_neighbors),
            (points, queries),
            compute,
        )

    @staticmethod
    def memo_key(
        key: Hashable,
        geometry: Optional[Tuple[np.ndarray, ...]] = None,
        digest: Optional[str] = None,
    ) -> Hashable:
        """The full result-cache key :meth:`memoize` files ``key`` under.

        Exposed so batch materializers (:mod:`repro.runtime.epoch`) can
        dedupe scheduled work and insert worker-computed results into
        ``results`` under exactly the key a later :meth:`memoize` call
        will look up.  Pass ``digest`` instead of ``geometry`` to reuse an
        already-computed :func:`geometry_digest` (this is the single place
        the key tuple is composed).
        """
        if digest is None:
            if geometry is None:
                raise ValueError("memo_key needs geometry or digest")
            digest = geometry_digest(*geometry)
        return (key, digest)

    def memoize(
        self,
        key: Hashable,
        geometry: Tuple[np.ndarray, ...],
        compute: Callable[[], object],
    ):
        """Return ``compute()``, cached under ``(key, digest(geometry))``.

        The digest makes the memoization safe against callers that reuse
        ``key`` with mutated arrays: the stale entry is simply never hit
        again (and eventually ages out of the LRU).  Misses are detected
        with a sentinel, so a computation that legitimately returns
        ``None`` (or any falsy value) is cached like any other result
        instead of being recomputed on every call.
        """
        full_key = self.memo_key(key, geometry)
        cached = self.results.get(full_key, _MISS)
        if cached is _MISS:
            cached = compute()
            self.results.put(full_key, cached)
        return cached

    # -- dynamic clouds ------------------------------------------------
    def register_dynamic(
        self, points: Optional[np.ndarray] = None, maintenance: str = "incremental"
    ) -> str:
        """Register a mutable cloud; returns its **stable** handle.

        The handle folds the cloud's registration-time content digest
        with a per-session sequence number (two clouds that *start*
        identical drift independently, so they must not alias) and never
        changes — it is the identity callers (and the sharded tier's
        static digest routing) hold onto across mutations.  The *current*
        content digest moves with every :meth:`update`; result caches key
        on that, so stale entries are unreachable by construction and
        :meth:`update` additionally drops them eagerly.
        """
        # Imported lazily: repro.kdtree.dynamic pulls treebuild back in
        # through the segment builders at query time.
        from ..kdtree.dynamic import DynamicKdTree

        dyn = DynamicKdTree(points, builder=self.builder, maintenance=maintenance)
        handle = dynamic_handle(dyn.digest, next(self._dynamic_seq))
        self._dynamic[handle] = dyn
        return handle

    def adopt_dynamic(self, handle: str, dyn) -> None:
        """Install a reconstructed :class:`DynamicKdTree` under ``handle``.

        The worker-recovery path: after a respawn the dispatcher re-ships
        a state snapshot, and the rebuilt replica must live under the
        original (registration-time) handle even though its *current*
        digest has drifted since.
        """
        self._dynamic[handle] = dyn

    def dynamic(self, handle: str):
        """The live :class:`DynamicKdTree` behind ``handle``."""
        try:
            return self._dynamic[handle]
        except KeyError:
            raise KeyError(f"unknown dynamic handle {handle!r}") from None

    def dynamic_layout_for(self, handle: str, top_height: int):
        """Split-tree DRAM layout of a dynamic cloud, dirty-region fresh.

        The dynamic counterpart of :meth:`split_tree_for`: one layout per
        ``(handle, top_height)`` lives as long as the registration, and
        each access re-lays only segments rebuilt since the last call
        (see :class:`~repro.runtime.treebuild.DynamicSplitLayout`).
        """
        dyn = self.dynamic(handle)
        key = (handle, int(top_height))
        layout = self._dynamic_layouts.get(key)
        if layout is None:
            from .treebuild import DynamicSplitLayout

            layout = DynamicSplitLayout(dyn, int(top_height))
            self._dynamic_layouts[key] = layout
        else:
            layout.refresh()
        return layout

    def update(self, handle: str, inserts=None, removes=None) -> str:
        """Apply one frame of mutations; returns the new content digest.

        Removes apply before inserts (the frame contract every replica —
        worker, shadow, reference — shares, so slot allocation stays
        deterministic everywhere).  Cache entries keyed under the
        previous content digest are invalidated.
        """
        dyn = self.dynamic(handle)
        old = dyn.digest
        if removes is not None:
            dyn.remove(removes)
        if inserts is not None:
            dyn.insert(inserts)
        new = dyn.digest
        if new != old:
            self.invalidate(old)
        return new

    def invalidate(self, digest: str) -> int:
        """Drop every cache entry keyed under ``digest``; return the count.

        Covers the tree cache (keyed by the digest itself), the split-tree
        cache (keyed by the structural digest of that tree), and the
        result cache (keyed ``(caller key, digest)`` via :meth:`memo_key`).
        """
        dropped = 0
        tree = self.trees.pop(digest, _MISS)
        if tree is not _MISS:
            dropped += 1
            structural = tree_digest(tree)
            dropped += self.split_trees.drop_where(
                lambda key: isinstance(key, tuple) and key[0] == structural
            )
        dropped += self.results.drop_where(
            lambda key: isinstance(key, tuple) and len(key) == 2 and key[1] == digest
        )
        return dropped

    def clear(self) -> None:
        """Drop the caches (dynamic-cloud registrations are state, not
        cache entries, and survive)."""
        self.results.clear()
        self.trees.clear()
        self.split_trees.clear()
