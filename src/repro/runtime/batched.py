"""Vectorized batched ball query.

:class:`BatchedBallQuery` answers the same question as
:func:`repro.kdtree.exact.ball_query` — the padded ``(M, K)`` neighbor
index matrix plus true-hit counts for a batch of queries — but advances
*all* queries together as NumPy frontier arrays instead of running one
Python DFS per query.  On network-layer-sized batches this is one to two
orders of magnitude faster, which is what makes the Fig. 13/14 sweeps and
the approximation-aware training runs affordable.

Bit-identical by construction
-----------------------------
The per-query searcher visits nodes in DFS preorder with the *near* child
explored first, appends hits in visit order, and stops once ``K`` hits are
buffered.  Early stopping only truncates the hit stream — the first ``K``
hits of the full traversal are exactly the hits the early-stopped
traversal collects — so the batched engine may sweep the whole in-radius
frontier and truncate afterwards, provided it can reproduce the DFS visit
order.  It does, without simulating any stack: label every root-to-node
edge per query with a bit (near child = 0, far child = 1) and give node
``n`` at depth ``d`` the rank ``sum(bit_i * 2**-(i+1) for i in range(d))``.
DFS preorder is then exactly ascending ``(rank, depth)``: an ancestor is a
bit-prefix of its descendants (equal rank + shallower depth when the
extension bits are all zero, smaller rank otherwise), and cousins order by
the first divergent bit.  A balanced median-split tree has height
``ceil(log2(n + 1)) <= 52`` for any realistic ``n``, so the rank fits a
float64 mantissa losslessly.

Pruning is also safe to replicate: a far subtree is pruned when
``|query[dim] - split| > radius``, and every point in that subtree lies on
the far side of the splitting plane, hence at least that far away along
``dim`` — a pruned subtree can never contain an in-radius point.  The
remaining asymmetry (the per-query searcher visits fewer nodes thanks to
early stopping) affects traversal *statistics* only, never results, which
is why this module returns no :class:`~repro.kdtree.stats.TraversalStats`:
callers who need hardware-faithful accounting use the reference searchers.

Merged multi-request sweeps
---------------------------
Nothing in the construction above requires one shared radius: the
in-ball test and the bounding-plane prune are per-row decisions, so the
sweep accepts a **per-query radius array** and stays row-independent —
row ``i``'s result depends only on ``(queries[i], radius[i])`` and the
tree.  :meth:`BatchedBallQuery.query_merged` builds on that to serve N
concatenated *requests* (each with its own radius and ``K``) with one
frontier advance and split the results per request afterwards,
bit-identical to N separate :meth:`~BatchedBallQuery.query` calls.  This
is the kernel under the request-coalescing serving layer
(:mod:`repro.serve`).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Sequence, Tuple, Union

import numpy as np

from ..kdtree.build import KdTree
from ..kdtree.exact import ball_query

__all__ = [
    "BatchedBallQuery",
    "FrontierLevel",
    "batched_ball_query",
    "batched_nearest_node",
    "frontier_sweep",
]

# Depth limit above which DFS ranks no longer fit a float64 mantissa.
# Balanced construction keeps height = ceil(log2(n + 1)), so hitting this
# would take ~4.5e15 points; the guard exists for malformed custom trees
# and lives in frontier_sweep — the single definition of the rank
# arithmetic — so every consumer (result-only, traced, nearest-node) is
# covered without duplicating the check.
_MAX_RANK_DEPTH = 52

# Density guard: unlike the per-query searcher (which early-stops at K
# hits), the batched sweep buffers every in-radius hit before truncating,
# so a radius comparable to the cloud extent costs O(M * N) memory.  Past
# this many buffered hits the engine hands the batch to the per-query
# reference searcher — bit-identical by definition, and O(K) per query.
_MAX_BUFFERED_HITS = 8_000_000


def _check_rank_depth(tree: KdTree) -> None:
    if tree.height > _MAX_RANK_DEPTH:
        raise ValueError(
            f"tree height {tree.height} exceeds the DFS-rank depth limit "
            f"({_MAX_RANK_DEPTH}); use the per-query searchers"
        )


class FrontierLevel(NamedTuple):
    """One level of the batched frontier sweep (see :func:`frontier_sweep`).

    All arrays are parallel over the live ``(query, node)`` pairs at this
    depth.  ``far`` and ``within_radius`` let consumers reconstruct the
    bounding-plane prune (``far >= 0`` and not ``within_radius``); the
    children actually descended are ``take_near``/``take_far``.
    """

    depth: int
    query_ids: np.ndarray  # query index per frontier row
    rank: np.ndarray  # accumulated DFS path bits as a binary fraction
    nodes: np.ndarray  # node id per row
    point_ids: np.ndarray  # tree.point_id[nodes]
    in_ball: np.ndarray  # distance test outcome
    far: np.ndarray  # far-child node id (-1 when absent)
    within_radius: np.ndarray  # |query[dim] - split| <= radius
    take_near: np.ndarray  # near child exists (always descended)
    take_far: np.ndarray  # far child exists and not pruned


def frontier_sweep(
    tree: KdTree,
    queries: np.ndarray,
    radius: Union[float, np.ndarray],
) -> Iterator[FrontierLevel]:
    """Advance all queries together, one tree level per yield.

    The single definition of the batched traversal semantics — near/far
    selection (``diff <= 0`` ties go left, like the reference searcher),
    the bounding-plane prune, and the DFS-rank advance — shared by the
    result-only engine (:class:`BatchedBallQuery`) and the trace-capable
    engine (:class:`~repro.runtime.traced.TracedBallQuery`), so a change
    to the traversal rule cannot diverge the two.  Consumers may simply
    stop iterating (e.g. a memory-guard fallback); the sweep holds no
    state beyond its frontier arrays.

    ``radius`` is either a scalar (every query searches the same ball) or
    an ``(M,)`` array of per-query radii — the merged multi-request form
    the serving layer drives through :meth:`BatchedBallQuery.query_merged`.

    Raises ``ValueError`` eagerly (before the first level is yielded) when
    ``tree`` is deeper than the DFS ranks can represent: past depth 52 the
    per-level ``scale`` underflows out of the float64 mantissa and rank
    order silently corrupts, so malformed custom trees must be rejected
    here rather than in each consuming engine.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    _check_rank_depth(tree)
    radius = np.asarray(radius, dtype=np.float64)
    if radius.ndim not in (0, 1) or (
        radius.ndim == 1 and radius.shape != (len(queries),)
    ):
        raise ValueError(
            f"radius must be a scalar or one radius per query; got shape "
            f"{radius.shape} for {len(queries)} queries"
        )
    return _frontier_levels(tree, queries, radius)


def _frontier_levels(
    tree: KdTree, queries: np.ndarray, radius: np.ndarray
) -> Iterator[FrontierLevel]:
    m = len(queries)
    per_query = radius.ndim == 1
    r2 = radius * radius
    # Frontier of live (query, node) pairs; ``rank`` accumulates the DFS
    # path bits as a binary fraction, ``scale`` is the next bit's weight.
    fq = np.arange(m, dtype=np.int64)
    fnode = np.full(m, tree.root, dtype=np.int64)
    frank = np.zeros(m, dtype=np.float64)
    scale = 0.5
    depth = 0
    while len(fq):
        rad = radius[fq] if per_query else radius
        rsq = r2[fq] if per_query else r2
        pid = tree.point_id[fnode]
        pts = tree.points[pid]
        delta = queries[fq] - pts
        d2 = np.einsum("ij,ij->i", delta, delta)
        in_ball = d2 <= rsq

        dims = tree.split_dim[fnode]
        rows = np.arange(len(fq))
        diff = queries[fq, dims] - pts[rows, dims]
        go_left = diff <= 0
        near = np.where(go_left, tree.left[fnode], tree.right[fnode])
        far = np.where(go_left, tree.right[fnode], tree.left[fnode])
        within = np.abs(diff) <= rad
        take_near = near >= 0
        take_far = (far >= 0) & within

        yield FrontierLevel(
            depth=depth,
            query_ids=fq,
            rank=frank,
            nodes=fnode,
            point_ids=pid,
            in_ball=in_ball,
            far=far,
            within_radius=within,
            take_near=take_near,
            take_far=take_far,
        )

        fq = np.concatenate([fq[take_near], fq[take_far]])
        fnode = np.concatenate([near[take_near], far[take_far]])
        frank = np.concatenate([frank[take_near], frank[take_far] + scale])
        scale *= 0.5
        depth += 1


def batched_nearest_node(tree: KdTree, queries: np.ndarray) -> np.ndarray:
    """Vectorized ``knn_search(tree, q, 1)[0]`` for every query.

    Bit-identical tie-breaking included: for ``k = 1`` the reference
    searcher's replace rule is strictly ``<``, so its winner is the first
    point achieving the minimal distance in its DFS visit order — and its
    shrinking-bound prune (``diff**2 > bound``) can only drop subtrees
    whose points are *strictly* farther than the bound, never a minimal
    point.  The winner is therefore exactly the minimum of
    ``(d2, DFS rank, depth)`` over the whole tree, which this level-
    synchronous sweep tracks as a running per-query best while pruning far
    children against it (any valid upper bound is equally safe).

    Used by both batched engines to resolve all zero-neighbor rows of a
    batch in one pass instead of a per-query Python ``knn_search`` loop.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    _check_rank_depth(tree)
    m = len(queries)
    best_d2 = np.full(m, np.inf)
    best_rank = np.full(m, np.inf)
    best_pid = np.zeros(m, dtype=np.int64)
    if m == 0:
        return best_pid
    fq = np.arange(m, dtype=np.int64)
    fnode = np.full(m, tree.root, dtype=np.int64)
    frank = np.zeros(m, dtype=np.float64)
    scale = 0.5
    while len(fq):
        pid = tree.point_id[fnode]
        pts = tree.points[pid]
        delta = queries[fq] - pts
        d2 = np.einsum("ij,ij->i", delta, delta)

        # Per-query winner of this level: min (d2, rank).  Ranks are
        # distinct per (query, node) pair within a level, so sorting and
        # taking each query's leading row suffices.
        order = np.lexsort((frank, d2, fq))
        sq = fq[order]
        lead = np.ones(len(sq), dtype=bool)
        lead[1:] = sq[1:] != sq[:-1]
        cq = sq[lead]
        cd2 = d2[order][lead]
        crank = frank[order][lead]
        cpid = pid[order][lead]
        # Against the running best: levels arrive in depth order, and at
        # equal (d2, rank) the shallower node — the incumbent — is the
        # earlier one in DFS preorder, so ties keep the incumbent.
        upd = (cd2 < best_d2[cq]) | ((cd2 == best_d2[cq]) & (crank < best_rank[cq]))
        uq = cq[upd]
        best_d2[uq] = cd2[upd]
        best_rank[uq] = crank[upd]
        best_pid[uq] = cpid[upd]

        dims = tree.split_dim[fnode]
        rows = np.arange(len(fq))
        diff = queries[fq, dims] - pts[rows, dims]
        go_left = diff <= 0
        near = np.where(go_left, tree.left[fnode], tree.right[fnode])
        far = np.where(go_left, tree.right[fnode], tree.left[fnode])
        take_near = near >= 0
        take_far = (far >= 0) & (diff * diff <= best_d2[fq])
        fq = np.concatenate([fq[take_near], fq[take_far]])
        fnode = np.concatenate([near[take_near], far[take_far]])
        frank = np.concatenate([frank[take_near], frank[take_far] + scale])
        scale *= 0.5
    return best_pid


class BatchedBallQuery:
    """Batched, vectorized equivalent of :func:`repro.kdtree.exact.ball_query`.

    Construct once per tree and call :meth:`query` for each ``(queries,
    radius, K)`` batch — or :meth:`query_merged` for a concatenation of
    heterogeneous request batches — the instance holds only a reference to
    the tree, so construction is free and instances may be shared.
    """

    def __init__(self, tree: KdTree):
        self.tree = tree

    # ------------------------------------------------------------------
    def query(
        self, queries: np.ndarray, radius: float, max_neighbors: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, counts)`` with the ``ball_query`` contract.

        ``indices`` is ``(M, K)`` int64, rows padded by repeating the first
        neighbor; zero-neighbor rows are padded with the query's nearest
        node point and report ``counts == 0``.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        if max_neighbors <= 0:
            raise ValueError("max_neighbors must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        m = len(queries)
        k = max_neighbors
        if m == 0:
            return (
                np.zeros((0, k), dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        collected = self._collect(queries, float(radius))
        if collected is None:  # density guard: per-query reference fallback
            return ball_query(self.tree, queries, radius, max_neighbors)
        return self._pack(queries, collected, np.full(m, k, dtype=np.int64), k)

    # ------------------------------------------------------------------
    def query_merged(
        self,
        queries: np.ndarray,
        radii: Union[float, np.ndarray],
        request_ids: np.ndarray,
        max_neighbors: Union[int, Sequence[int], np.ndarray],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Serve N concatenated requests with one merged frontier advance.

        Parameters
        ----------
        queries:
            ``(M, d)`` concatenation of every request's query batch, in
            request order.
        radii:
            ``(M,)`` per-query radii (each request's radius broadcast over
            its rows), or a scalar shared by all rows.
        request_ids:
            ``(M,)`` int request index per row; must be grouped (non-
            decreasing) with values in ``[0, R)`` — the natural shape of a
            concatenation.
        max_neighbors:
            ``(R,)`` per-request ``K`` (a scalar means one request).

        Returns the list of per-request ``(indices, counts)`` pairs.
        Request ``r``'s pair is bit-identical to
        ``query(queries[rows_r], radius_r, max_neighbors[r])`` — row
        independence makes the merge exact, which the serving parity suite
        pins down.  Heterogeneous per-query radii *within* a request are
        also accepted and equivalent to one single-row call per query.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        m = len(queries)
        radii = np.asarray(radii, dtype=np.float64)
        if radii.ndim == 0:
            radii = np.full(m, float(radii))
        request_ids = np.asarray(request_ids, dtype=np.int64)
        ks = np.atleast_1d(np.asarray(max_neighbors, dtype=np.int64))
        n_req = len(ks)
        if (ks <= 0).any():
            raise ValueError("max_neighbors must be positive")
        if radii.shape != (m,):
            raise ValueError("radii must give one radius per query")
        if m and (radii <= 0).any():
            raise ValueError("radius must be positive")
        if request_ids.shape != (m,):
            raise ValueError("request_ids must give one request per query")
        if m and ((request_ids < 0) | (request_ids >= n_req)).any():
            raise ValueError(f"request_ids must lie in [0, {n_req})")
        if m and (np.diff(request_ids) < 0).any():
            raise ValueError("request_ids must be grouped (non-decreasing)")
        if n_req == 0:
            return []
        starts = np.searchsorted(request_ids, np.arange(n_req + 1))

        collected = self._collect(queries, radii)
        if collected is None:  # density guard: per-request reference fallback
            return self._merged_reference(queries, radii, starts, ks)
        k_row = ks[request_ids]
        indices, counts = self._pack(queries, collected, k_row, int(ks.max()))
        return [
            (
                indices[starts[r] : starts[r + 1], : int(ks[r])].copy(),
                counts[starts[r] : starts[r + 1]].copy(),
            )
            for r in range(n_req)
        ]

    # ------------------------------------------------------------------
    def _collect(self, queries: np.ndarray, radius):
        """Sweep and sort the in-radius hit stream.

        Returns ``(hit_queries, hit_point_ids, counts_all)`` with the hits
        in per-query DFS visit order, or ``None`` when the density guard
        trips and the caller must fall back to the reference searcher.
        """
        m = len(queries)
        hit_q: list = []
        hit_rank: list = []
        hit_depth: list = []
        hit_pid: list = []
        total_hits = 0
        for level in frontier_sweep(self.tree, queries, radius):
            in_ball = level.in_ball
            if in_ball.any():
                hit_q.append(level.query_ids[in_ball])
                hit_rank.append(level.rank[in_ball])
                hit_depth.append(
                    np.full(int(in_ball.sum()), level.depth, dtype=np.int64)
                )
                hit_pid.append(level.point_ids[in_ball])
                total_hits += int(in_ball.sum())
                if total_hits > _MAX_BUFFERED_HITS:
                    return None
        if not hit_q:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(m, dtype=np.int64)
        hq = np.concatenate(hit_q)
        hr = np.concatenate(hit_rank)
        hd = np.concatenate(hit_depth)
        hp = np.concatenate(hit_pid)
        # Ascending (query, rank, depth) == per-query DFS visit order.
        order = np.lexsort((hd, hr, hq))
        hq, hp = hq[order], hp[order]
        counts_all = np.bincount(hq, minlength=m).astype(np.int64)
        return hq, hp, counts_all

    def _pack(
        self,
        queries: np.ndarray,
        collected,
        k_row: np.ndarray,
        k_max: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Truncate, pad, and fill the sorted hit stream into the
        ``ball_query`` output contract, with a per-row neighbor cap."""
        hq, hp, counts_all = collected
        m = len(queries)
        indices = np.zeros((m, k_max), dtype=np.int64)
        if len(hq):
            starts = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts_all)[:-1]]
            )
            pos = np.arange(len(hq), dtype=np.int64) - starts[hq]
            keep = pos < k_row[hq]
            indices[hq[keep], pos[keep]] = hp[keep]

        counts = np.minimum(counts_all, k_row)
        # Pad short rows by repeating the first neighbor.
        col = np.arange(k_max, dtype=np.int64)[None, :]
        pad = col >= np.maximum(counts, 1)[:, None]
        indices = np.where(pad, indices[:, :1], indices)
        # Zero-neighbor rows fall back to the nearest node point: dedupe
        # the (rare) rows and resolve them in one vectorized pass with the
        # per-query engine's exact tie-breaking.
        zero = np.nonzero(counts_all == 0)[0]
        if len(zero):
            uniq, inverse = np.unique(queries[zero], axis=0, return_inverse=True)
            nearest = batched_nearest_node(self.tree, uniq)
            indices[zero, :] = nearest[inverse][:, None]
        return indices, counts

    def _merged_reference(
        self,
        queries: np.ndarray,
        radii: np.ndarray,
        starts: np.ndarray,
        ks: np.ndarray,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Density-guard fallback: per-request reference searches (grouped
        by radius within a request, for the heterogeneous-radii form)."""
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for r in range(len(ks)):
            sl = slice(int(starts[r]), int(starts[r + 1]))
            qs, rr, k = queries[sl], radii[sl], int(ks[r])
            idx = np.zeros((len(qs), k), dtype=np.int64)
            cnt = np.zeros(len(qs), dtype=np.int64)
            for rad in np.unique(rr):
                rows = np.nonzero(rr == rad)[0]
                idx[rows], cnt[rows] = ball_query(self.tree, qs[rows], float(rad), k)
            out.append((idx, cnt))
        return out


def batched_ball_query(
    tree: KdTree, queries: np.ndarray, radius: float, max_neighbors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot convenience wrapper over :class:`BatchedBallQuery`."""
    return BatchedBallQuery(tree).query(queries, radius, max_neighbors)
