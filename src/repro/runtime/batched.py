"""Vectorized batched ball query.

:class:`BatchedBallQuery` answers the same question as
:func:`repro.kdtree.exact.ball_query` — the padded ``(M, K)`` neighbor
index matrix plus true-hit counts for a batch of queries — but advances
*all* queries together as NumPy frontier arrays instead of running one
Python DFS per query.  On network-layer-sized batches this is one to two
orders of magnitude faster, which is what makes the Fig. 13/14 sweeps and
the approximation-aware training runs affordable.

Bit-identical by construction
-----------------------------
The per-query searcher visits nodes in DFS preorder with the *near* child
explored first, appends hits in visit order, and stops once ``K`` hits are
buffered.  Early stopping only truncates the hit stream — the first ``K``
hits of the full traversal are exactly the hits the early-stopped
traversal collects — so the batched engine may sweep the whole in-radius
frontier and truncate afterwards, provided it can reproduce the DFS visit
order.  It does, without simulating any stack: label every root-to-node
edge per query with a bit (near child = 0, far child = 1) and give node
``n`` at depth ``d`` the rank ``sum(bit_i * 2**-(i+1) for i in range(d))``.
DFS preorder is then exactly ascending ``(rank, depth)``: an ancestor is a
bit-prefix of its descendants (equal rank + shallower depth when the
extension bits are all zero, smaller rank otherwise), and cousins order by
the first divergent bit.  A balanced median-split tree has height
``ceil(log2(n + 1)) <= 52`` for any realistic ``n``, so the rank fits a
float64 mantissa losslessly.

Pruning is also safe to replicate: a far subtree is pruned when
``|query[dim] - split| > radius``, and every point in that subtree lies on
the far side of the splitting plane, hence at least that far away along
``dim`` — a pruned subtree can never contain an in-radius point.  The
remaining asymmetry (the per-query searcher visits fewer nodes thanks to
early stopping) affects traversal *statistics* only, never results, which
is why this module returns no :class:`~repro.kdtree.stats.TraversalStats`:
callers who need hardware-faithful accounting use the reference searchers.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Tuple

import numpy as np

from ..kdtree.build import KdTree
from ..kdtree.exact import ball_query, knn_search

__all__ = ["BatchedBallQuery", "FrontierLevel", "batched_ball_query", "frontier_sweep"]

# Depth limit above which DFS ranks no longer fit a float64 mantissa.
# Balanced construction keeps height = ceil(log2(n + 1)), so hitting this
# would take ~4.5e15 points; the guard exists for malformed custom trees.
_MAX_RANK_DEPTH = 52

# Density guard: unlike the per-query searcher (which early-stops at K
# hits), the batched sweep buffers every in-radius hit before truncating,
# so a radius comparable to the cloud extent costs O(M * N) memory.  Past
# this many buffered hits the engine hands the batch to the per-query
# reference searcher — bit-identical by definition, and O(K) per query.
_MAX_BUFFERED_HITS = 8_000_000


class FrontierLevel(NamedTuple):
    """One level of the batched frontier sweep (see :func:`frontier_sweep`).

    All arrays are parallel over the live ``(query, node)`` pairs at this
    depth.  ``far`` and ``within_radius`` let consumers reconstruct the
    bounding-plane prune (``far >= 0`` and not ``within_radius``); the
    children actually descended are ``take_near``/``take_far``.
    """

    depth: int
    query_ids: np.ndarray  # query index per frontier row
    rank: np.ndarray  # accumulated DFS path bits as a binary fraction
    nodes: np.ndarray  # node id per row
    point_ids: np.ndarray  # tree.point_id[nodes]
    in_ball: np.ndarray  # distance test outcome
    far: np.ndarray  # far-child node id (-1 when absent)
    within_radius: np.ndarray  # |query[dim] - split| <= radius
    take_near: np.ndarray  # near child exists (always descended)
    take_far: np.ndarray  # far child exists and not pruned


def frontier_sweep(
    tree: KdTree, queries: np.ndarray, radius: float
) -> Iterator[FrontierLevel]:
    """Advance all queries together, one tree level per yield.

    The single definition of the batched traversal semantics — near/far
    selection (``diff <= 0`` ties go left, like the reference searcher),
    the bounding-plane prune, and the DFS-rank advance — shared by the
    result-only engine (:class:`BatchedBallQuery`) and the trace-capable
    engine (:class:`~repro.runtime.traced.TracedBallQuery`), so a change
    to the traversal rule cannot diverge the two.  Consumers may simply
    stop iterating (e.g. a memory-guard fallback); the sweep holds no
    state beyond its frontier arrays.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    m = len(queries)
    r2 = radius * radius
    # Frontier of live (query, node) pairs; ``rank`` accumulates the DFS
    # path bits as a binary fraction, ``scale`` is the next bit's weight.
    fq = np.arange(m, dtype=np.int64)
    fnode = np.full(m, tree.root, dtype=np.int64)
    frank = np.zeros(m, dtype=np.float64)
    scale = 0.5
    depth = 0
    while len(fq):
        pid = tree.point_id[fnode]
        pts = tree.points[pid]
        delta = queries[fq] - pts
        d2 = np.einsum("ij,ij->i", delta, delta)
        in_ball = d2 <= r2

        dims = tree.split_dim[fnode]
        rows = np.arange(len(fq))
        diff = queries[fq, dims] - pts[rows, dims]
        go_left = diff <= 0
        near = np.where(go_left, tree.left[fnode], tree.right[fnode])
        far = np.where(go_left, tree.right[fnode], tree.left[fnode])
        within = np.abs(diff) <= radius
        take_near = near >= 0
        take_far = (far >= 0) & within

        yield FrontierLevel(
            depth=depth,
            query_ids=fq,
            rank=frank,
            nodes=fnode,
            point_ids=pid,
            in_ball=in_ball,
            far=far,
            within_radius=within,
            take_near=take_near,
            take_far=take_far,
        )

        fq = np.concatenate([fq[take_near], fq[take_far]])
        fnode = np.concatenate([near[take_near], far[take_far]])
        frank = np.concatenate([frank[take_near], frank[take_far] + scale])
        scale *= 0.5
        depth += 1


class BatchedBallQuery:
    """Batched, vectorized equivalent of :func:`repro.kdtree.exact.ball_query`.

    Construct once per tree and call :meth:`query` for each ``(queries,
    radius, K)`` batch; the instance holds only a reference to the tree, so
    construction is free and instances may be shared.
    """

    def __init__(self, tree: KdTree):
        if tree.height > _MAX_RANK_DEPTH:
            raise ValueError(
                f"tree height {tree.height} exceeds the DFS-rank depth limit "
                f"({_MAX_RANK_DEPTH}); use the per-query searchers"
            )
        self.tree = tree

    # ------------------------------------------------------------------
    def query(
        self, queries: np.ndarray, radius: float, max_neighbors: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, counts)`` with the ``ball_query`` contract.

        ``indices`` is ``(M, K)`` int64, rows padded by repeating the first
        neighbor; zero-neighbor rows are padded with the query's nearest
        node point and report ``counts == 0``.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        if max_neighbors <= 0:
            raise ValueError("max_neighbors must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        m = len(queries)
        k = max_neighbors
        if m == 0:
            return (
                np.zeros((0, k), dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        tree = self.tree

        hit_q: list = []
        hit_rank: list = []
        hit_depth: list = []
        hit_pid: list = []
        total_hits = 0
        for level in frontier_sweep(tree, queries, radius):
            in_ball = level.in_ball
            if in_ball.any():
                hit_q.append(level.query_ids[in_ball])
                hit_rank.append(level.rank[in_ball])
                hit_depth.append(
                    np.full(int(in_ball.sum()), level.depth, dtype=np.int64)
                )
                hit_pid.append(level.point_ids[in_ball])
                total_hits += int(in_ball.sum())
                if total_hits > _MAX_BUFFERED_HITS:
                    return ball_query(tree, queries, radius, max_neighbors)

        indices = np.zeros((m, k), dtype=np.int64)
        counts_all = np.zeros(m, dtype=np.int64)
        if hit_q:
            hq = np.concatenate(hit_q)
            hr = np.concatenate(hit_rank)
            hd = np.concatenate(hit_depth)
            hp = np.concatenate(hit_pid)
            # Ascending (query, rank, depth) == per-query DFS visit order.
            order = np.lexsort((hd, hr, hq))
            hq, hp = hq[order], hp[order]
            counts_all = np.bincount(hq, minlength=m).astype(np.int64)
            starts = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts_all)[:-1]]
            )
            pos = np.arange(len(hq), dtype=np.int64) - starts[hq]
            keep = pos < k
            indices[hq[keep], pos[keep]] = hp[keep]

        counts = np.minimum(counts_all, k)
        # Pad short rows by repeating the first neighbor.
        col = np.arange(k, dtype=np.int64)[None, :]
        pad = col >= np.maximum(counts, 1)[:, None]
        indices = np.where(pad, indices[:, :1], indices)
        # Zero-neighbor rows fall back to the nearest node point (rare, so
        # the per-query reference search is fine here — and it guarantees
        # the same tie-breaking as the per-query engine).
        for qi in np.nonzero(counts_all == 0)[0]:
            indices[qi, :] = knn_search(tree, queries[qi], 1)[0]
        return indices, counts


def batched_ball_query(
    tree: KdTree, queries: np.ndarray, radius: float, max_neighbors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot convenience wrapper over :class:`BatchedBallQuery`."""
    return BatchedBallQuery(tree).query(queries, radius, max_neighbors)
