"""Vectorized lockstep sub-tree search engine.

:func:`repro.core.approx_search.run_subtree_lockstep` is the behavioral
reference for the banked-tree-buffer PE array: it drives one
:class:`~repro.kdtree.SubtreeSearch` machine per queued query, one Python
``advance`` per node visit.  That granularity is what makes it trustworthy
— and what makes it the hottest loop of every figure benchmark, because a
network layer's search burns one Python iteration per PE per cycle.

:class:`VectorizedLockstep` computes the *same* simulation with NumPy
array operations:

* every PE slot of every sub-tree batch is one row of a ``(lanes, depth)``
  stack matrix (``lanes = num_subtrees x num_pes``), so all sub-trees of a
  query batch advance concurrently — the wall-clock loop runs
  ``max``(cycles per sub-tree) iterations instead of their sum;
* each iteration performs arbitration (rotating round-robin priority, one
  winner per ``(sub-tree, bank)``), broadcast detection (same-address
  losers observe the winner's read), elision (conflicted fetches at or
  below ``h_e`` drop their subtree) and stall bookkeeping as whole-array
  masks;
* traversal statistics, SRAM counters, per-sub-tree cycles and stalls,
  and every machine's hit list are produced exactly as the reference
  produces them — the randomized equivalence suite in
  ``tests/test_runtime_lockstep.py`` pins cycle-, stall-, stat- and
  hit-identity on random clouds and settings.

Equivalence notes
-----------------
The reference's observable quirks are reproduced deliberately:

* the pending queue feeds free PE slots one candidate per slot per
  iteration, and a candidate that is already done (its result buffer was
  filled by top-tree hits) leaves the slot empty for that cycle;
* round-robin priority rotates by ``cycles mod len(active)`` *per
  sub-tree*, with ``active`` re-evaluated every cycle;
* a machine whose hit buffer fills mid-visit pushes no children for that
  visit (the reference's early return);
* bank slots are the node's *preorder position inside its sub-tree* —
  computed here from the tree's Euler ``tin`` index, which equals the
  reference's ``SplitTree.subtree_nodes`` enumeration because a subtree
  occupies a contiguous preorder interval.

The free-running mode (:meth:`run_free`) is the same stack machinery with
the conflict model off — every machine advances every iteration — used by
the no-conflict-simulation path of ``approximate_ball_query`` where only
results and traversal statistics matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..kdtree.build import KdTree
from ..kdtree.stats import TraversalStats
from ..memsim.sram import SramStats

__all__ = ["LockstepResult", "VectorizedLockstep"]


@dataclass
class LockstepResult:
    """Outcome of one vectorized lockstep run over several sub-tree batches."""

    cycles: int
    stalls: int
    hits: List[List[int]]  # per machine, in visit order
    group_cycles: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))


class VectorizedLockstep:
    """Array-lockstep simulator of the banked-tree-buffer PE array.

    Parameters
    ----------
    tree:
        The K-d tree all sub-tree batches search.
    banking:
        Object with ``bank_of_slot(slots) -> banks`` (duck-typed to
        :class:`~repro.core.bank_conflict.TreeBufferBanking`).  Only needed
        for :meth:`run`; :meth:`run_free` has no conflict model.
    num_pes:
        Lockstepped PE slots per sub-tree batch.
    elide_policy:
        ``"skip"`` (the shipped design: an elided fetch drops the node and
        its subtree) or ``"descend"`` (Sec. 4.2: continue from the winner's
        node when it lies beneath the requested one).
    """

    def __init__(
        self,
        tree: KdTree,
        banking=None,
        num_pes: int = 4,
        elide_policy: str = "skip",
    ):
        if elide_policy not in ("skip", "descend"):
            raise ValueError(f"unknown elide_policy {elide_policy!r}")
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        self.tree = tree
        self.banking = banking
        self.num_pes = num_pes
        self.elide_policy = elide_policy
        tree._ensure_euler()
        self._pts = tree.points[tree.point_id]  # node id -> coordinates
        self._split_val = self._pts[np.arange(tree.num_nodes), tree.split_dim]
        self._left = np.asarray(tree.left, dtype=np.int64)
        self._right = np.asarray(tree.right, dtype=np.int64)
        self._depth = np.asarray(tree.depth, dtype=np.int64)
        self._size = np.asarray(tree.subtree_size, dtype=np.int64)
        self._split_dim = np.asarray(tree.split_dim, dtype=np.int64)
        self._tin = np.asarray(tree.tin, dtype=np.int64)
        self._tout = np.asarray(tree.tout, dtype=np.int64)

    # ------------------------------------------------------------------
    def run(
        self,
        queries: np.ndarray,
        radius: float,
        groups: Sequence[Tuple[int, np.ndarray]],
        max_hits: np.ndarray,
        elide_depth: Optional[int] = None,
        traversal: Optional[TraversalStats] = None,
        sram: Optional[SramStats] = None,
    ) -> LockstepResult:
        """Simulate every sub-tree batch of ``groups`` to completion.

        ``groups`` is a sequence of ``(root, query_ids)`` — one entry per
        sub-tree, machines queued in ``query_ids`` order.  ``max_hits`` is
        one capacity per machine (concatenated group order; ``-1`` means
        unbounded).  Returns total cycles/stalls (summed over sub-trees,
        as the reference accumulates them) and each machine's hits.
        """
        if self.banking is None:
            raise ValueError("run() needs a banking model; pass banking=")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        ngroups = len(groups)
        num_pes = self.num_pes
        group_sizes = np.array([len(q) for _, q in groups], dtype=np.int64)
        group_start = np.concatenate(([0], np.cumsum(group_sizes)))
        num_machines = int(group_start[-1])
        mach_query = (
            np.concatenate([np.asarray(q, dtype=np.int64) for _, q in groups])
            if num_machines
            else np.zeros(0, np.int64)
        )
        roots = np.array([int(r) for r, _ in groups], dtype=np.int64)
        max_hits = np.asarray(max_hits, dtype=np.int64)
        if max_hits.shape != (num_machines,):
            raise ValueError("max_hits must hold one capacity per machine")
        if traversal is not None:
            traversal.stack_pushes += num_machines  # root push at creation
        hits: List[List[int]] = [[] for _ in range(num_machines)]
        result = LockstepResult(
            0, 0, hits, group_cycles=np.zeros(ngroups, np.int64)
        )
        if ngroups == 0:
            return result

        r2 = radius * radius
        has_elide = elide_depth is not None
        descend = self.elide_policy == "descend"
        depth_cap = self.tree.height + 2
        lanes = ngroups * num_pes
        stack = np.zeros((lanes, depth_cap), dtype=np.int64)
        sp = np.zeros(lanes, dtype=np.int64)
        lane_mach = np.full(lanes, -1, dtype=np.int64)
        lane_group = np.repeat(np.arange(ngroups, dtype=np.int64), num_pes)
        pend = group_start[:-1].copy()
        pend_end = group_start[1:].copy()
        hits_cnt = np.zeros(num_machines, dtype=np.int64)
        g_cycles = np.zeros(ngroups, dtype=np.int64)
        tin_root = self._tin[roots]
        pending_left = num_machines  # machines not yet popped from a queue

        # Stat accumulators (folded into the dataclasses once, at the end).
        n_access = n_reads = n_elided = n_bcast = n_stalls = 0
        t_pops = t_pushes = t_visited = t_skipped = t_pruned = t_found = 0

        def refill() -> int:
            """One pop attempt per free lane, in PE slot order (the
            reference's per-iteration refill pass).  A popped machine that
            is already done — its result buffer was filled by top-tree
            hits — is discarded and leaves the slot empty for this cycle.
            Returns how many lanes were left empty that way (they need
            another refill pass next cycle even if nothing else frees)."""
            nonlocal pending_left
            refillable = np.nonzero(
                (lane_mach < 0) & (pend[lane_group] < pend_end[lane_group])
            )[0]
            discarded = 0
            for lane in refillable:
                grp = int(lane_group[lane])
                if pend[grp] >= pend_end[grp]:
                    continue
                mach = int(pend[grp])
                pend[grp] += 1
                pending_left -= 1
                if max_hits[mach] == 0:
                    if pend[grp] < pend_end[grp]:
                        discarded += 1
                    continue
                lane_mach[lane] = mach
                stack[lane, 0] = roots[grp]
                sp[lane] = 1
            return discarded

        lane_arange = np.arange(lanes, dtype=np.int64)
        retry_refill = refill()
        while True:
            active = np.nonzero(lane_mach >= 0)[0]
            num_active = len(active)
            if num_active == 0:
                if pending_left == 0:
                    break
                retry_refill = refill()
                continue  # groups with pending machines refill next pass

            # ---- one lockstep cycle for every group with active lanes.
            agroup = lane_group[active]
            n_active = np.bincount(agroup, minlength=ngroups)
            g_cycles[n_active > 0] += 1
            in_group = n_active[agroup]
            apos = lane_arange[:num_active] - (np.cumsum(n_active)[agroup] - in_group)
            rank = (apos - g_cycles[agroup] % in_group) % in_group
            nodes = stack[active, sp[active] - 1]
            slots = self._tin[nodes] - tin_root[agroup]
            banks = np.asarray(self.banking.bank_of_slot(slots), dtype=np.int64)

            # Winner per (group, bank) = lowest rotated-priority rank.
            # Ranks are unique within a group, so the composite key is
            # unique and a plain (unstable) argsort suffices.
            num_banks = getattr(self.banking, "num_banks", 0) or int(banks.max()) + 1
            key = (agroup * num_banks + banks) * num_pes + rank
            order = np.argsort(key)
            seg = key[order] // num_pes  # (group, bank) segment id
            new_seg = np.empty(num_active, dtype=bool)
            new_seg[0] = True
            new_seg[1:] = seg[1:] != seg[:-1]
            winner_per_seg = order[new_seg]
            winner_idx = np.empty(num_active, dtype=np.int64)
            winner_idx[order] = winner_per_seg[np.cumsum(new_seg) - 1]
            is_winner = winner_idx == lane_arange[:num_active]
            winner_node = nodes[winner_idx]
            bcast = ~is_winner & (winner_node == nodes)
            if has_elide:
                elidable = ~is_winner & ~bcast & (self._depth[nodes] >= elide_depth)
                num_elided = int(elidable.sum())
            else:
                elidable = None
                num_elided = 0

            num_winners = int(is_winner.sum())
            num_bcast = int(bcast.sum())
            n_access += num_active
            n_reads += num_winners
            n_elided += num_elided
            n_bcast += num_bcast
            # Losers that neither broadcast nor elide stall for the cycle.
            n_stalls += num_active - num_winners - num_bcast - num_elided

            # ---- served fetches (won or broadcast): the normal visit.
            visit = is_winner | bcast
            vlanes = active[visit]
            vnodes = nodes[visit]
            t_pops += len(vlanes)
            t_visited += len(vlanes)
            sp[vlanes] -= 1
            vmach = lane_mach[vlanes]
            delta = queries[mach_query[vmach]] - self._pts[vnodes]
            in_ball = np.einsum("ij,ij->i", delta, delta) <= r2
            if in_ball.any():
                hit_mach = vmach[in_ball]
                hits_cnt[hit_mach] += 1
                t_found += len(hit_mach)
                hit_pid = self.tree.point_id[vnodes[in_ball]]
                for mach, pid in zip(hit_mach.tolist(), hit_pid.tolist()):
                    hits[mach].append(int(pid))
                full_now = in_ball & (max_hits[vmach] >= 0) & (
                    hits_cnt[vmach] >= max_hits[vmach]
                )
                some_full = bool(full_now.any())
            else:
                full_now = None
                some_full = False
            if some_full:
                push = ~full_now  # a filling visit pushes no children
                plane = vlanes[push]
                pnode = vnodes[push]
                pdelta = delta[push]
            else:
                plane = vlanes
                pnode = vnodes
                pdelta = delta
            if len(plane):
                dims = self._split_dim[pnode]
                # The split value is the node point's coordinate, so the
                # plane distance is a row of the already-computed delta.
                diff = pdelta[np.arange(len(plane)), dims]
                go_left = diff <= 0
                near = np.where(go_left, self._left[pnode], self._right[pnode])
                far = np.where(go_left, self._right[pnode], self._left[pnode])
                far_exists = far >= 0
                within = np.abs(diff) <= radius
                push_far = far_exists & within
                pruned = far_exists & ~within
                if pruned.any():
                    t_pruned += int(self._size[far[pruned]].sum())
                flane = plane[push_far]
                stack[flane, sp[flane]] = far[push_far]
                sp[flane] += 1
                push_near = near >= 0
                nlane = plane[push_near]
                stack[nlane, sp[nlane]] = near[push_near]
                sp[nlane] += 1
                t_pushes += int(push_far.sum()) + int(push_near.sum())

            # ---- conflicted losers at/below the elision height.
            slanes = ()
            if num_elided:
                if descend:
                    # Sec. 4.2: continue from the winner's node when it is
                    # beneath the requested one; drop the subtree otherwise.
                    sub_ok = elidable & (
                        (self._tin[nodes] <= self._tin[winner_node])
                        & (self._tin[winner_node] < self._tout[nodes])
                    )
                    skip = elidable & ~sub_ok
                    dlanes = active[sub_ok]
                    if len(dlanes):
                        t_pops += len(dlanes)
                        t_pushes += len(dlanes)
                        t_skipped += int(
                            (
                                self._size[nodes[sub_ok]]
                                - self._size[winner_node[sub_ok]]
                            ).sum()
                        )
                        # pop + push == replace the top of stack in place
                        stack[dlanes, sp[dlanes] - 1] = winner_node[sub_ok]
                else:
                    skip = elidable
                slanes = active[skip]
                if len(slanes):
                    t_pops += len(slanes)
                    sp[slanes] -= 1
                    t_skipped += int(self._size[nodes[skip]].sum())

            # ---- free lanes whose machine finished this cycle; refill.
            # Only served (stack may be empty / buffer full) and elided
            # (stack may be empty) lanes can finish.
            if some_full:
                vdone = vlanes[(sp[vlanes] == 0) | full_now]
            else:
                vdone = vlanes[sp[vlanes] == 0]
            lane_mach[vdone] = -1
            freed = len(vdone)
            if len(slanes):
                sdone = slanes[sp[slanes] == 0]
                lane_mach[sdone] = -1
                freed += len(sdone)
            if pending_left and (freed or retry_refill):
                retry_refill = refill()

        if traversal is not None:
            traversal.stack_pops += t_pops
            traversal.stack_pushes += t_pushes
            traversal.nodes_visited += t_visited
            traversal.nodes_skipped += t_skipped
            traversal.nodes_pruned += t_pruned
            traversal.neighbors_found += t_found
        if sram is not None:
            sram.accesses += n_access
            sram.reads_served += n_reads
            sram.conflicted += n_access - n_reads
            sram.elided += n_elided
            sram.broadcasts += n_bcast
            sram.cycles += int(g_cycles.sum())
        result.cycles = int(g_cycles.sum())
        result.stalls = n_stalls
        result.group_cycles = g_cycles
        return result

    # ------------------------------------------------------------------
    def run_free(
        self,
        queries: np.ndarray,
        radius: float,
        roots: np.ndarray,
        max_hits: np.ndarray,
        traversal: Optional[TraversalStats] = None,
    ) -> List[List[int]]:
        """Run one machine per ``(queries[i], roots[i])`` with no conflicts.

        Equivalent to ``SubtreeSearch.run_to_completion`` per machine —
        identical hits and traversal statistics — but all machines advance
        together, one tree-node visit per machine per iteration.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        roots = np.asarray(roots, dtype=np.int64)
        max_hits = np.asarray(max_hits, dtype=np.int64)
        num_machines = len(roots)
        if max_hits.shape != (num_machines,):
            raise ValueError("max_hits must hold one capacity per machine")
        if traversal is not None:
            traversal.stack_pushes += num_machines
        hits: List[List[int]] = [[] for _ in range(num_machines)]
        if num_machines == 0:
            return hits

        r2 = radius * radius
        depth_cap = self.tree.height + 2
        stack = np.zeros((num_machines, depth_cap), dtype=np.int64)
        sp = np.zeros(num_machines, dtype=np.int64)
        alive = max_hits != 0  # capacity-0 machines are done at creation
        stack[alive, 0] = roots[alive]
        sp[alive] = 1
        hits_cnt = np.zeros(num_machines, dtype=np.int64)
        t_pops = t_pushes = t_visited = t_pruned = t_found = 0

        while True:
            act = np.nonzero(sp > 0)[0]
            if len(act) == 0:
                break
            nodes = stack[act, sp[act] - 1]
            t_pops += len(act)
            t_visited += len(act)
            sp[act] -= 1
            delta = queries[act] - self._pts[nodes]
            in_ball = np.einsum("ij,ij->i", delta, delta) <= r2
            if in_ball.any():
                hit_mach = act[in_ball]
                hits_cnt[hit_mach] += 1
                t_found += len(hit_mach)
                hit_pid = self.tree.point_id[nodes[in_ball]]
                for mach, pid in zip(hit_mach.tolist(), hit_pid.tolist()):
                    hits[mach].append(int(pid))
            full_now = in_ball & (max_hits[act] >= 0) & (
                hits_cnt[act] >= max_hits[act]
            )
            sp[act[full_now]] = 0  # buffer full: traversal over, no pushes
            push = ~full_now
            plane = act[push]
            pnode = nodes[push]
            if len(plane):
                diff = queries[plane, self._split_dim[pnode]] - self._split_val[pnode]
                go_left = diff <= 0
                near = np.where(go_left, self._left[pnode], self._right[pnode])
                far = np.where(go_left, self._right[pnode], self._left[pnode])
                far_exists = far >= 0
                within = np.abs(diff) <= radius
                push_far = far_exists & within
                pruned = far_exists & ~within
                if pruned.any():
                    t_pruned += int(self._size[far[pruned]].sum())
                flane = plane[push_far]
                stack[flane, sp[flane]] = far[push_far]
                sp[flane] += 1
                push_near = near >= 0
                nlane = plane[push_near]
                stack[nlane, sp[nlane]] = near[push_near]
                sp[nlane] += 1
                t_pushes += int(push_far.sum()) + int(push_near.sum())

        if traversal is not None:
            traversal.stack_pops += t_pops
            traversal.stack_pushes += t_pushes
            traversal.nodes_visited += t_visited
            traversal.nodes_pruned += t_pruned
            traversal.neighbors_found += t_found
        return hits
