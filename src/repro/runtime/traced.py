"""Trace-capable batched exact search.

:class:`TracedBallQuery` answers the question the motivation studies ask
of :func:`repro.kdtree.exact.radius_search` — *which nodes did each query
visit, in what order, and what did the traversal cost* — but advances all
queries together as NumPy frontier arrays, the way
:class:`~repro.runtime.batched.BatchedBallQuery` does for result-only
workloads.  It is what lets ``layer_search_traces`` (and through it the
Fig. 2/3 drivers) retire the last per-query Python loop on the exact
search side while staying bit-identical to the reference searcher.

Recovering per-query traces without a stack
-------------------------------------------
The batched frontier sweep already computes a DFS rank per visited
``(query, node)`` pair (near child = 0 bit, far child = 1 bit, rank =
binary fraction of the path bits; see :mod:`repro.runtime.batched` for
the proof that ascending ``(rank, depth)`` is exactly DFS preorder with
the near child first).  So per-query visit traces need no stack
simulation: collect *every* visited ``(query, rank, depth, node)`` tuple,
argsort per query by ``(rank, depth)``, and the sorted node column *is*
the reference visit trace of the full (never-early-stopped) traversal.

The reference searcher early-stops once ``max_neighbors`` hits are
buffered, abandoning whatever is still on its stack.  Because the
early-stopped visit sequence is a *prefix* of the full DFS preorder
sequence, truncating each sorted trace at the node contributing the
K-th hit reproduces it exactly.

Reconstructing :class:`~repro.kdtree.stats.TraversalStats`
----------------------------------------------------------
Every counter of the early-stopped reference follows from per-visit
quantities the sweep computes anyway:

* ``nodes_visited`` = ``stack_pops`` = truncated trace length (each
  visited node was popped exactly once; abandoned pushes are never
  popped);
* ``stack_pushes`` = 1 (the root) + the children pushed by each visited
  node — *except* the node contributing the K-th hit, which breaks out
  before its push/prune logic runs;
* ``nodes_pruned`` = the bounding-plane-pruned far-subtree sizes summed
  over the same set of nodes;
* ``neighbors_found`` = ``min(total in-radius hits, K)``.

The randomized equivalence suite (``tests/test_runtime_traced.py``) pins
all of this — traces and every counter — against the per-query reference
across radii, K, and tree shapes, the same way the lockstep suite pins
the vectorized accelerator engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..kdtree.build import KdTree
from ..kdtree.exact import knn_search, radius_search
from ..kdtree.stats import TraversalStats
from .batched import batched_nearest_node, frontier_sweep

__all__ = ["TracedBallQuery", "TracedBatchResult", "traced_ball_query"]

# Memory guard: the traced sweep buffers every visited (query, node) pair
# before sorting, so a huge radius on a huge batch costs O(visits) memory.
# Past this many buffered visits the engine hands the batch to the
# per-query reference searcher — identical by definition.
_MAX_BUFFERED_VISITS = 8_000_000


@dataclass
class TracedBatchResult:
    """Everything the reference per-query search loop would have produced.

    Attributes
    ----------
    indices, counts:
        The ``(M, K)`` padded neighbor matrix and true-hit counts, exactly
        as :func:`repro.kdtree.exact.ball_query` returns them.
    traces:
        Per-query node-id visit traces (int64 arrays, DFS preorder,
        truncated at the K-th hit) — ``radius_search``'s ``visit_trace``.
    stats:
        Per-query :class:`TraversalStats`, ``visit_trace`` included.
        Materialized lazily from the vectorized counter arrays on first
        access: the trace drivers (Figs. 2–3) never touch per-query stats
        objects, and building M of them is pure Python overhead.
    """

    indices: np.ndarray
    counts: np.ndarray
    traces: List[np.ndarray]
    visited: np.ndarray  # per-query nodes_visited (== stack pops)
    pushes: np.ndarray  # per-query stack pushes
    pruned: np.ndarray  # per-query bounding-plane-pruned subtree nodes
    neighbors: np.ndarray  # per-query neighbors found (== counts)
    _stats: List[TraversalStats] = None  # type: ignore[assignment]

    @property
    def stats(self) -> List[TraversalStats]:
        if self._stats is None:
            self._stats = [
                TraversalStats(
                    nodes_visited=int(self.visited[i]),
                    nodes_pruned=int(self.pruned[i]),
                    stack_pushes=int(self.pushes[i]),
                    stack_pops=int(self.visited[i]),
                    neighbors_found=int(self.neighbors[i]),
                    queries=1,
                    visit_trace=self.traces[i].tolist(),
                )
                for i in range(len(self.traces))
            ]
        return self._stats

    def merged_stats(self) -> TraversalStats:
        """Accumulate the per-query stats the way a shared ``stats``
        object passed to :func:`~repro.kdtree.exact.ball_query` would."""
        merged = TraversalStats(
            nodes_visited=int(self.visited.sum()),
            nodes_pruned=int(self.pruned.sum()),
            stack_pushes=int(self.pushes.sum()),
            stack_pops=int(self.visited.sum()),
            neighbors_found=int(self.neighbors.sum()),
            queries=len(self.traces),
        )
        merged.visit_trace = [int(n) for trace in self.traces for n in trace]
        return merged


class TracedBallQuery:
    """Batched exact search with per-query visit traces and statistics.

    Construct once per tree and call :meth:`query` per batch; instances
    hold only a tree reference, so construction is free.
    """

    def __init__(self, tree: KdTree):
        # The DFS-rank depth guard lives in frontier_sweep (the single
        # definition of the rank arithmetic), which :meth:`query` drives.
        self.tree = tree

    # ------------------------------------------------------------------
    def query(
        self, queries: np.ndarray, radius: float, max_neighbors: int
    ) -> TracedBatchResult:
        """Run the traced batch; see :class:`TracedBatchResult`.

        Visit-trace- and stats-identical to running
        ``radius_search(tree, q, radius, max_neighbors=K, record_trace=True)``
        per query, with the ``(indices, counts)`` padding contract of
        ``ball_query``.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        if max_neighbors <= 0:
            raise ValueError("max_neighbors must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        m = len(queries)
        k = max_neighbors
        if m == 0:
            empty = np.zeros(0, dtype=np.int64)
            return TracedBatchResult(
                indices=np.zeros((0, k), dtype=np.int64),
                counts=empty,
                traces=[],
                visited=empty,
                pushes=empty,
                pruned=empty,
                neighbors=empty,
            )
        tree = self.tree

        # The shared frontier sweep (one definition of the traversal
        # semantics for both batched engines) — here recording every
        # visit, not just hits, plus the per-visit push/prune quantities
        # the stats reconstruction needs.
        v_q: list = []
        v_rank: list = []
        v_depth: list = []
        v_node: list = []
        v_hit: list = []
        v_push: list = []
        v_pruned: list = []
        total_visits = 0
        for level in frontier_sweep(tree, queries, radius):
            prune_far = (level.far >= 0) & ~level.within_radius
            pruned = np.zeros(len(level.nodes), dtype=np.int64)
            pruned[prune_far] = tree.subtree_size[level.far[prune_far]]

            v_q.append(level.query_ids)
            v_rank.append(level.rank)
            v_depth.append(np.full(len(level.nodes), level.depth, dtype=np.int64))
            v_node.append(level.nodes)
            v_hit.append(level.in_ball)
            v_push.append(
                level.take_near.astype(np.int64) + level.take_far.astype(np.int64)
            )
            v_pruned.append(pruned)
            total_visits += len(level.nodes)
            if total_visits > _MAX_BUFFERED_VISITS:
                return _reference_traced(tree, queries, radius, k)

        q = np.concatenate(v_q)
        rank = np.concatenate(v_rank)
        dep = np.concatenate(v_depth)
        node = np.concatenate(v_node)
        hit = np.concatenate(v_hit)
        push = np.concatenate(v_push)
        pruned = np.concatenate(v_pruned)

        # Ascending (query, rank, depth) == per-query DFS visit order.
        order = np.lexsort((dep, rank, q))
        q, node, hit, push, pruned = (
            q[order], node[order], hit[order], push[order], pruned[order]
        )

        visits_all = np.bincount(q, minlength=m)  # >= 1: the root is always visited
        starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(visits_all)[:-1]]
        )
        pos = np.arange(len(q), dtype=np.int64) - starts[q]

        # Per-query inclusive hit count at each visit, then the position of
        # the K-th hit: that node triggers the reference's early stop.
        cum = np.cumsum(hit)
        base = (cum - hit)[starts]  # exclusive hit count at each query's start
        cum_hits = cum - base[q]
        kth = hit & (cum_hits == k)  # at most one row per query
        trunc_len = visits_all.copy()
        trunc_len[q[kth]] = pos[kth] + 1
        keep = pos < trunc_len[q]

        # The early-stop node breaks out before its push/prune logic runs,
        # so its contributions never reach the reference counters.
        push_eff = push.copy()
        push_eff[kth] = 0
        pruned_eff = pruned.copy()
        pruned_eff[kth] = 0
        qk = q[keep]
        pushes = 1 + np.bincount(qk, weights=push_eff[keep], minlength=m).astype(np.int64)
        pruned_total = np.bincount(
            qk, weights=pruned_eff[keep], minlength=m
        ).astype(np.int64)
        hits_total = np.bincount(q, weights=hit, minlength=m).astype(np.int64)
        neighbors = np.minimum(hits_total, k)

        # Traces: the kept node column split per query.
        nodes_kept = node[keep]
        traces = np.split(nodes_kept, np.cumsum(trunc_len)[:-1])

        # Neighbor matrix: the kept region holds exactly min(hits, K) hits
        # per query, in visit order — the reference's result buffer.
        indices = np.zeros((m, k), dtype=np.int64)
        hit_keep = hit & keep
        hq = q[hit_keep]
        hp = tree.point_id[node[hit_keep]]
        if len(hq):
            hstarts = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(neighbors)[:-1]]
            )
            hpos = np.arange(len(hq), dtype=np.int64) - hstarts[hq]
            indices[hq, hpos] = hp
        counts = neighbors.copy()
        # Pad short rows by repeating the first neighbor; zero-neighbor
        # rows fall back to the query's nearest node point, exactly as
        # ball_query does (same tie-breaking via the per-query search).
        col = np.arange(k, dtype=np.int64)[None, :]
        pad = col >= np.maximum(counts, 1)[:, None]
        indices = np.where(pad, indices[:, :1], indices)
        zero = np.nonzero(hits_total == 0)[0]
        if len(zero):
            uniq, inverse = np.unique(queries[zero], axis=0, return_inverse=True)
            nearest = batched_nearest_node(tree, uniq)
            indices[zero, :] = nearest[inverse][:, None]

        return TracedBatchResult(
            indices=indices,
            counts=counts,
            traces=traces,
            visited=trunc_len,
            pushes=pushes,
            pruned=pruned_total,
            neighbors=neighbors,
        )


def _reference_traced(
    tree: KdTree, queries: np.ndarray, radius: float, max_neighbors: int
) -> TracedBatchResult:
    """Per-query reference fallback (memory guard): identical by definition."""
    m = len(queries)
    k = max_neighbors
    indices = np.zeros((m, k), dtype=np.int64)
    counts = np.zeros(m, dtype=np.int64)
    traces: List[np.ndarray] = []
    visited = np.zeros(m, dtype=np.int64)
    pushes = np.zeros(m, dtype=np.int64)
    pruned = np.zeros(m, dtype=np.int64)
    neighbors = np.zeros(m, dtype=np.int64)
    for i in range(m):
        s = TraversalStats()
        found = radius_search(
            tree, queries[i], radius, max_neighbors=k, stats=s, record_trace=True
        )
        counts[i] = min(len(found), k)
        if not found:
            found = knn_search(tree, queries[i], 1)
        row = found[:k]
        row = row + [row[0]] * (k - len(row))
        indices[i] = row
        traces.append(np.asarray(s.visit_trace, dtype=np.int64))
        visited[i] = s.nodes_visited
        pushes[i] = s.stack_pushes
        pruned[i] = s.nodes_pruned
        neighbors[i] = s.neighbors_found
    return TracedBatchResult(
        indices=indices, counts=counts, traces=traces,
        visited=visited, pushes=pushes, pruned=pruned, neighbors=neighbors,
    )


def traced_ball_query(
    tree: KdTree, queries: np.ndarray, radius: float, max_neighbors: int
) -> TracedBatchResult:
    """One-shot convenience wrapper over :class:`TracedBallQuery`."""
    return TracedBallQuery(tree).query(queries, radius, max_neighbors)
