"""Network-level batched runtime: ``settings x clouds`` grids as one unit.

The figure drivers (Figs. 14–17, 22, 23) all reduce to the same shape of
work: run a :class:`~repro.accel.NetworkSpec` over a grid of approximation
settings and point clouds.  Before this module each grid point resampled
its per-layer centroids, re-derived each layer's point population, and —
under process fan-out — rebuilt every K-d tree and split-tree layout from
scratch, because each sweep job constructed a fresh engine.

Three pieces remove that per-point overhead:

* :func:`layer_sampling_plan` — the canonical per-layer ``(points,
  queries)`` chain of one network run.  Centroid sampling depends only on
  ``(spec, cloud, seed)``, never on the approximation setting, so a sweep
  samples once per cloud and shares the plan across every setting —
  *the* invariant that makes a settings grid array-parallel.
* :func:`run_network_grid` — the in-process grid path
  :meth:`~repro.accel.PointCloudAccelerator.run_many` delegates to: one
  sampling plan per cloud, every setting replayed over it through the
  accelerator's shared :class:`~repro.runtime.SearchSession` (trees and
  split-tree layouts built once per cloud / ``h_t``).
* :func:`worker_session` + :func:`_run_network_job` — the process path.
  Each worker process keeps one module-global session for its lifetime,
  so consecutive jobs on the same worker stop re-laying-out split trees
  per layer; sampling plans are memoized in that session too (keyed by
  ``(spec, seed)`` plus the cloud's geometry digest).

Grid results are always returned setting-major and order-preserving —
``results[i][j]`` is ``settings[i]`` on ``clouds[j]`` — regardless of
worker count, so figure tables stay deterministic.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Type

import numpy as np

from .session import SearchSession
from .sweep import SweepRunner

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from ..accel.accelerator import NetworkResult, NetworkSpec, PointCloudAccelerator
    from ..core.config import ApproxSetting, CrescentHardwareConfig

__all__ = ["layer_sampling_plan", "plan_for", "run_network_grid", "worker_session"]

LayerPlan = List[Tuple[np.ndarray, np.ndarray]]


def layer_sampling_plan(
    spec: "NetworkSpec", points: np.ndarray, seed: int = 0
) -> LayerPlan:
    """Per-layer ``(points, queries)`` chain of one network run.

    Reproduces exactly the centroid draws
    :meth:`~repro.accel.PointCloudAccelerator.run_network` makes — each
    layer samples ``num_queries`` centroids without replacement from the
    previous layer's centroids (hierarchical set abstraction) — so every
    consumer of a shared plan is bit-identical to an unshared run.
    """
    rng = np.random.default_rng(seed)
    plan: LayerPlan = []
    current = np.asarray(points, dtype=np.float64)
    for layer in spec.layers:
        if layer.num_queries > len(current):
            raise ValueError(
                f"layer {layer.name!r} wants {layer.num_queries} queries from "
                f"{len(current)} points"
            )
        queries = current[rng.choice(len(current), layer.num_queries, replace=False)]
        plan.append((current, queries))
        current = queries
    return plan


def plan_for(
    session: SearchSession, spec: "NetworkSpec", points: np.ndarray, seed: int = 0
) -> LayerPlan:
    """The :func:`layer_sampling_plan` for ``(spec, points, seed)``, memoized.

    Every grid path — the in-process array path, the per-worker process
    jobs, and the analysis drivers — shares plans through this one helper,
    keyed by ``(spec, seed)`` plus the cloud's geometry digest so mutated
    clouds recompute instead of hitting a stale plan.
    """
    points = np.asarray(points, dtype=np.float64)
    return session.memoize(
        ("layer_plan", spec, seed),
        (points,),
        lambda: layer_sampling_plan(spec, points, seed),
    )


def run_network_grid(
    accelerator: "PointCloudAccelerator",
    spec: "NetworkSpec",
    clouds: Sequence[np.ndarray],
    settings: Sequence["ApproxSetting"],
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> List[List["NetworkResult"]]:
    """Run ``spec`` for every ``settings x clouds`` combination.

    The serial path is the array path: one sampling plan per cloud shared
    by all settings, all trees pooled in ``accelerator.session``.  With a
    :class:`SweepRunner` that will actually engage its pool, grid points
    fan out to :func:`_run_network_job` workers instead (see module docs
    for what each worker reuses); the accelerator is then rebuilt from
    picklable parts, so engines whose constructors need more than
    ``hw`` (+ optionally ``session``) should be swept serially.
    """
    clouds = list(clouds)
    settings = list(settings)
    if runner is None or not runner.will_fan_out(len(settings) * len(clouds)):
        grid: List[List["NetworkResult"]] = [[] for _ in settings]
        for j, cloud in enumerate(clouds):
            plan = plan_for(accelerator.session, spec, cloud, seed)
            for i, setting in enumerate(settings):
                grid[i].append(
                    accelerator.run_network(spec, cloud, setting, seed=seed, plan=plan)
                )
        return grid
    jobs = [
        (
            accelerator.hw,
            type(accelerator.search_engine),
            accelerator.elide_aggregation,
            spec,
            np.asarray(cloud, dtype=np.float64),
            setting,
            seed,
        )
        for setting in settings
        for cloud in clouds
    ]
    flat = runner.starmap(_run_network_job, jobs)
    ncols = len(clouds)
    return [flat[i : i + ncols] for i in range(0, len(flat), ncols)]


# ----------------------------------------------------------------------
# Process-pool worker plumbing
# ----------------------------------------------------------------------
_WORKER_SESSION: Optional[SearchSession] = None


def worker_session() -> SearchSession:
    """The calling process's long-lived :class:`SearchSession`.

    Worker processes outlive individual sweep jobs, so trees, split-tree
    layouts, and memoized sampling plans pool across every job a worker
    executes — the same economy the in-process path gets from the
    accelerator's own session.  Cache misses are filled by the
    level-synchronous builders (the session's default ``builder="vector"``
    routing through :mod:`repro.runtime.treebuild`), so a worker's first
    contact with a distinct cloud no longer pays the per-node Python
    build.
    """
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = SearchSession()
    return _WORKER_SESSION


def _engine_for(engine_cls: Type, hw: "CrescentHardwareConfig", session: SearchSession):
    """Rebuild a sweep engine, threading the worker session if accepted.

    The signature is inspected rather than probed with try/except, so a
    ``TypeError`` raised *inside* an engine's constructor propagates
    instead of being silently retried without the session.
    """
    if "session" in inspect.signature(engine_cls).parameters:
        return engine_cls(hw, session=session)
    return engine_cls(hw)


def _run_network_job(
    hw: "CrescentHardwareConfig",
    engine_cls: Type,
    elide_aggregation: bool,
    spec: "NetworkSpec",
    cloud: np.ndarray,
    setting: "ApproxSetting",
    seed: int,
) -> "NetworkResult":
    """One grid point (module-level: process pools pickle it)."""
    from ..accel.accelerator import PointCloudAccelerator

    session = worker_session()
    accelerator = PointCloudAccelerator(
        hw,
        _engine_for(engine_cls, hw, session),
        elide_aggregation=elide_aggregation,
        session=session,
    )
    plan = plan_for(session, spec, cloud, seed)
    return accelerator.run_network(spec, cloud, setting, seed=seed, plan=plan)
