"""Vectorized level-synchronous top-tree phase (paper Sec. 3.2, phase 1).

:meth:`repro.accel.NeighborSearchEngine._top_phase` models the cycle and
stall cost of streaming query groups through the top tree: groups of
``num_pes`` queries descend level-synchronously, same-node fetches are
broadcast (one bank read serves all ports), and distinct nodes landing in
one bank serialize — charging one stall per PE waiting behind a losing
node.  The original implementation looped over groups in Python, one
``np.unique`` round per group per level; on a network-layer batch that
loop was the last per-step hot path left after PR 1 (batched queries) and
PR 2 (vectorized lockstep).

:func:`vectorized_top_phase` advances **all** PE groups together: each
level processes every group's live lanes as one stacked array pass —
per-group distinct-node detection through a composite ``(group, node)``
key, per-``(group, bank)`` occupancy via one ``np.bincount``, stall
attribution via one stable sort — and every group's early exit (all
queries parked) falls out as an empty key set contributing zero cycles.
The accounting contract is pinned cycle- and stall-identical to the
per-group loop (kept as :func:`reference_top_phase`) by the randomized
equivalence suite in ``tests/test_aggregation_broadcast.py``.

Both implementations carry the PR 3 accounting fixes:

* the unreachable ``else 1`` level-cycle branch is gone (a level with
  live lanes always fetches at least one node);
* the ``fill_cycles`` pipeline fill/drain is charged per *fetching*
  group, as a stated contract.  With the current descent this is
  defensive — every non-empty group fetches the root at level 0, so no
  reachable input changes value — but it pins the accounting rule the
  engine relies on instead of an unconditional per-group charge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from ..core.split_tree import SplitTree

__all__ = ["vectorized_top_phase", "reference_top_phase"]


def vectorized_top_phase(
    split: "SplitTree",
    queries: np.ndarray,
    num_pes: int,
    banking,
    fill_cycles: int = 0,
) -> Tuple[int, int]:
    """Cycles and stalls of the top-tree descent, all groups at once.

    ``banking`` is duck-typed to
    :class:`~repro.core.bank_conflict.TreeBufferBanking`
    (``bank_of_slot`` + ``num_banks``); ``fill_cycles`` is the per-group
    pipeline fill/drain charge (the engine passes ``PIPELINE_DEPTH - 1``).
    Returns ``(total_cycles, total_stalls)``.
    """
    # Imported here: repro.core.pipeline imports this package at load
    # time, so a module-level import of repro.core would be circular.
    from ..core.split_tree import descend_step

    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    tree = split.tree
    top_height = split.top_height
    if top_height == 0:
        return 0, 0
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    m = len(queries)
    if m == 0:
        return 0, 0
    ngroups = -(-m // num_pes)
    group_of = np.repeat(np.arange(ngroups, dtype=np.int64), num_pes)[:m]
    top_nodes = split.top_nodes  # ascending ids == buffer layout order
    num_banks = banking.num_banks
    span = tree.num_nodes  # (group, node) composite-key stride
    current = np.full(m, tree.root, dtype=np.int64)
    alive = np.ones(m, dtype=bool)
    fetched = np.zeros(ngroups, dtype=bool)
    total_cycles = 0
    total_stalls = 0
    for _ in range(top_height):
        act = np.nonzero(alive)[0]
        if len(act) == 0:
            break
        agroup = group_of[act]
        fetched[agroup] = True
        # Same node within a group ⇒ broadcast (one composite key); same
        # bank, different node ⇒ serialize.  np.unique returns keys
        # ascending, i.e. per group the node-ascending service order the
        # streamed top-tree buffer uses.
        keys, pe_counts = np.unique(agroup * span + current[act], return_counts=True)
        slots = np.searchsorted(top_nodes, keys % span)
        banks = np.asarray(banking.bank_of_slot(slots), dtype=np.int64)
        gb = (keys // span) * num_banks + banks
        occupancy = np.bincount(gb, minlength=ngroups * num_banks)
        total_cycles += int(occupancy.reshape(ngroups, num_banks).max(axis=1).sum())
        # One stall per losing PE: within a (group, bank) segment every
        # node after the first-served keeps its PEs waiting.  The stable
        # sort preserves the node-ascending order within segments.
        order = np.argsort(gb, kind="stable")
        sorted_gb = gb[order]
        first_in_bank = np.ones(len(order), dtype=bool)
        first_in_bank[1:] = sorted_gb[1:] != sorted_gb[:-1]
        total_stalls += int(pe_counts[order][~first_in_bank].sum())
        nxt, parked = descend_step(tree, queries[act], current[act])
        if parked.any():
            alive[act[parked]] = False
        current[act[~parked]] = nxt[~parked]
    total_cycles += int(fetched.sum()) * fill_cycles
    return total_cycles, total_stalls


def reference_top_phase(
    split: "SplitTree",
    queries: np.ndarray,
    num_pes: int,
    banking,
    fill_cycles: int = 0,
) -> Tuple[int, int]:
    """The per-group Python loop :func:`vectorized_top_phase` replaces.

    Kept as the behavioral reference for the randomized equivalence
    suite; same signature, same ``(cycles, stalls)`` contract.
    """
    from ..core.split_tree import descend_step

    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    tree = split.tree
    top_height = split.top_height
    if top_height == 0:
        return 0, 0
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    total_cycles = 0
    total_stalls = 0
    for start in range(0, len(queries), num_pes):
        group = queries[start : start + num_pes]
        current = np.full(len(group), tree.root, dtype=np.int64)
        alive = np.ones(len(group), dtype=bool)
        issued_fetch = False
        for _ in range(top_height):
            fetching = np.nonzero(alive)[0]
            if len(fetching) == 0:
                break
            issued_fetch = True
            uniq_nodes, pe_counts = np.unique(current[fetching], return_counts=True)
            slots = np.searchsorted(split.top_nodes, uniq_nodes)
            banks = np.asarray(banking.bank_of_slot(slots), dtype=np.int64)
            occupancy = np.bincount(banks, minlength=banking.num_banks)
            total_cycles += int(occupancy.max())
            order = np.argsort(banks, kind="stable")
            first_in_bank = np.ones(len(order), dtype=bool)
            sorted_banks = banks[order]
            first_in_bank[1:] = sorted_banks[1:] != sorted_banks[:-1]
            total_stalls += int(pe_counts[order][~first_in_bank].sum())
            nxt, parked = descend_step(tree, group[fetching], current[fetching])
            if parked.any():
                alive[fetching[parked]] = False
            current[fetching[~parked]] = nxt[~parked]
        if issued_fetch:
            total_cycles += fill_cycles
    return total_cycles, total_stalls
