"""Parameter-sweep fan-out and long-lived worker-process lifecycle.

The figure drivers and training studies are embarrassingly parallel over
their sweep axis (settings, figures, bank counts, …), and every sweep
point is a pure function of picklable inputs.  :class:`SweepRunner` is the
one place that policy lives: it maps a callable over sweep points either
inline (``backend="serial"``) or on a ``multiprocessing`` pool
(``backend="process"``), always preserving input order so downstream
tables and golden files stay deterministic regardless of worker count.

``backend="auto"`` picks the pool only when it can help (more than one
worker requested and more than one item to process); anything the pool
cannot pickle is a caller bug worth surfacing, so there is no silent
serial fallback.

:class:`WorkerProcess` is the long-lived promotion of the pool pattern:
where a pool worker is anonymous and job-scoped, a ``WorkerProcess`` owns
an inbox queue the parent keeps feeding, a monotonic heartbeat the parent
can age-check, and a :meth:`~WorkerProcess.respawn` that replaces a dead
incarnation in place (fresh process, fresh inbox).  The sharded serving
tier (:mod:`repro.serve.sharded`) builds its dispatcher/worker discipline
— heartbeats, dead-worker detection, orphaned-request requeue — on it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["SweepRunner", "WorkerProcess"]


class SweepRunner:
    """Run ``fn`` over sweep points, optionally across worker processes.

    Parameters
    ----------
    num_workers:
        Worker process count; ``None`` uses the CPU count (capped at 8 —
        the sweeps are short enough that more mostly buys startup cost).
    backend:
        ``"serial"``, ``"process"``, or ``"auto"`` (process iff it can
        help).  The callable and items must be picklable for the process
        backend — module-level functions and dataclasses qualify, closures
        do not.
    """

    def __init__(self, num_workers: Optional[int] = None, backend: str = "auto"):
        if backend not in ("serial", "process", "auto"):
            raise ValueError(f"unknown backend {backend!r}")
        if num_workers is not None and num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers or min(os.cpu_count() or 1, 8)
        self.backend = backend

    def _use_pool(self, num_items: int) -> bool:
        if self.backend == "serial":
            return False
        if self.backend == "process":
            return True
        return self.num_workers > 1 and num_items > 1

    def will_fan_out(self, num_items: int) -> bool:
        """Would :meth:`map`/:meth:`starmap` use the pool for this many items?

        Callers whose pooled path has different fidelity than their
        in-process path (e.g. sweep points that must be rebuilt from
        picklable parts) use this to take the pooled route only when a
        pool will actually be engaged.
        """
        return self._use_pool(num_items)

    def _pool(self, num_items: int):
        # The platform-default start method is deliberate: fork on Linux
        # (workers share the already-imported library), spawn on macOS /
        # Windows where forking a NumPy-initialized process is unsafe.
        ctx = multiprocessing.get_context()
        return ctx.Pool(processes=min(self.num_workers, num_items))

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """``[fn(x) for x in items]``, possibly fanned across processes.

        Result order always matches input order (``Pool.map`` semantics).
        """
        items = list(items)
        if not items or not self._use_pool(len(items)):
            return [fn(x) for x in items]
        with self._pool(len(items)) as pool:
            return pool.map(fn, items)

    def starmap(self, fn: Callable[..., R], items: Iterable[Sequence]) -> List[R]:
        """Like :meth:`map` for callables taking positional tuples."""
        items = list(items)
        if not items or not self._use_pool(len(items)):
            return [fn(*x) for x in items]
        with self._pool(len(items)) as pool:
            return pool.starmap(fn, items)


class WorkerProcess:
    """One long-lived, respawnable worker process with mailbox + heartbeat.

    Parameters
    ----------
    target:
        Module-level callable run in the child as ``target(inbox, outbox,
        heartbeat, *args)`` (module-level so spawn platforms can pickle
        it).  It should consume messages from ``inbox`` in a loop, reply
        on ``outbox``, and store ``time.monotonic()`` into
        ``heartbeat.value`` periodically — ideally from a side thread, so
        a long-running job does not read as a dead worker.
    args:
        Extra positional arguments appended after ``(inbox, outbox,
        heartbeat)``.  Only things that must *survive* a respawn belong
        here; the mailboxes and heartbeat are recreated fresh by every
        :meth:`start`.
    ctx:
        ``multiprocessing`` context (platform default when omitted: fork
        on Linux, spawn on macOS / Windows).
    clock:
        Monotonic time source for spawn timestamps and heartbeat aging
        (injectable so staleness logic can be tested without sleeping;
        the child process keeps writing real ``time.monotonic`` beats
        regardless, so only use a fake clock with workers that share it).

    Both mailboxes are private to one incarnation *by design*, not
    convenience: a queue is only as healthy as the processes that touch
    its locks, and a worker SIGKILL-ed mid-``put`` dies holding the
    queue's write lock — poisoning it for every other writer, forever.
    Sharing one result queue across workers would let a single crash hang
    the whole tier (on a loaded box the feeder thread reliably still
    holds the lock when a kill lands right after a reply).  Per-worker
    queues confine the damage: the poisoned pair is abandoned with the
    dead incarnation and the fresh one starts with clean locks.
    """

    def __init__(
        self,
        target: Callable[..., None],
        args: Tuple = (),
        name: Optional[str] = None,
        ctx=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._ctx = ctx if ctx is not None else multiprocessing.get_context()
        self._target = target
        self._args = tuple(args)
        self._clock = clock
        self.name = name
        self.generation = 0  # how many times this slot has been (re)spawned
        self.started_at = 0.0
        self.inbox = None
        self.outbox = None
        self.heartbeat = None
        self._process = None

    def start(self) -> "WorkerProcess":
        """Spawn the worker with fresh mailboxes and heartbeat."""
        if self.is_alive():
            raise RuntimeError(f"worker {self.name or ''} already running")
        self.inbox = self._ctx.Queue()
        self.outbox = self._ctx.Queue()
        self.heartbeat = self._ctx.Value("d", 0.0)
        self._process = self._ctx.Process(
            target=self._target,
            args=(self.inbox, self.outbox, self.heartbeat) + self._args,
            name=self.name,
            daemon=True,  # a crashed parent must not leave workers behind
        )
        self._process.start()
        self.generation += 1
        self.started_at = self._clock()
        return self

    def send(self, message) -> None:
        """Enqueue one (picklable) message on the worker's inbox."""
        if self.inbox is None:
            raise RuntimeError("worker not started")
        self.inbox.put(message)

    def receive(self, timeout: Optional[float] = None):
        """Pop one reply from this incarnation's outbox.

        Raises :class:`queue.Empty` on timeout (``timeout=None`` returns
        immediately if nothing is queued — a non-blocking poll).
        """
        if self.outbox is None:
            raise RuntimeError("worker not started")
        if timeout is None:
            return self.outbox.get_nowait()
        return self.outbox.get(timeout=timeout)

    def is_alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def heartbeat_age(self, now: Optional[float] = None) -> float:
        """Seconds since the worker's last sign of life.

        The spawn instant counts as a beat, so a freshly (re)started
        worker that has not reached its loop yet is never mistaken for a
        stale one; ``inf`` before the first :meth:`start`.
        """
        beat = float(self.heartbeat.value) if self.heartbeat is not None else 0.0
        beat = max(beat, self.started_at)
        if beat <= 0.0:
            return float("inf")
        now = self._clock() if now is None else now
        return max(0.0, now - beat)

    def respawn(self) -> "WorkerProcess":
        """Replace a dead (or hung) incarnation in place.

        The old process is killed outright and both mailboxes are
        abandoned with it — messages queued to (or replies pending from)
        the dead incarnation are *lost*, and requeueing them onto the
        fresh one is deliberately the caller's job (only the caller knows
        which were already answered).
        """
        self.kill()
        return self.start()

    def stop(self, message=("stop",), timeout: float = 5.0) -> None:
        """Graceful shutdown: send ``message``, join, kill on overrun."""
        if self._process is None:
            return
        if self._process.is_alive():
            try:
                self.send(message)
            except (OSError, ValueError):  # inbox already torn down
                pass
            self._process.join(timeout)
        self.kill()

    def kill(self) -> None:
        """Hard-stop the worker (SIGKILL) and reap it."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
        if self._process is not None:
            self._process.join()
        for mailbox in (self.inbox, self.outbox):
            if mailbox is not None:
                # Drop the mailbox without joining its feeder thread: the
                # other end is gone, so unflushed messages never drain.
                mailbox.close()
                mailbox.cancel_join_thread()
        self.inbox = None
        self.outbox = None
