"""Parameter-sweep fan-out across multiprocessing workers.

The figure drivers and training studies are embarrassingly parallel over
their sweep axis (settings, figures, bank counts, …), and every sweep
point is a pure function of picklable inputs.  :class:`SweepRunner` is the
one place that policy lives: it maps a callable over sweep points either
inline (``backend="serial"``) or on a ``multiprocessing`` pool
(``backend="process"``), always preserving input order so downstream
tables and golden files stay deterministic regardless of worker count.

``backend="auto"`` picks the pool only when it can help (more than one
worker requested and more than one item to process); anything the pool
cannot pickle is a caller bug worth surfacing, so there is no silent
serial fallback.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["SweepRunner"]


class SweepRunner:
    """Run ``fn`` over sweep points, optionally across worker processes.

    Parameters
    ----------
    num_workers:
        Worker process count; ``None`` uses the CPU count (capped at 8 —
        the sweeps are short enough that more mostly buys startup cost).
    backend:
        ``"serial"``, ``"process"``, or ``"auto"`` (process iff it can
        help).  The callable and items must be picklable for the process
        backend — module-level functions and dataclasses qualify, closures
        do not.
    """

    def __init__(self, num_workers: Optional[int] = None, backend: str = "auto"):
        if backend not in ("serial", "process", "auto"):
            raise ValueError(f"unknown backend {backend!r}")
        if num_workers is not None and num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers or min(os.cpu_count() or 1, 8)
        self.backend = backend

    def _use_pool(self, num_items: int) -> bool:
        if self.backend == "serial":
            return False
        if self.backend == "process":
            return True
        return self.num_workers > 1 and num_items > 1

    def will_fan_out(self, num_items: int) -> bool:
        """Would :meth:`map`/:meth:`starmap` use the pool for this many items?

        Callers whose pooled path has different fidelity than their
        in-process path (e.g. sweep points that must be rebuilt from
        picklable parts) use this to take the pooled route only when a
        pool will actually be engaged.
        """
        return self._use_pool(num_items)

    def _pool(self, num_items: int):
        # The platform-default start method is deliberate: fork on Linux
        # (workers share the already-imported library), spawn on macOS /
        # Windows where forking a NumPy-initialized process is unsafe.
        ctx = multiprocessing.get_context()
        return ctx.Pool(processes=min(self.num_workers, num_items))

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """``[fn(x) for x in items]``, possibly fanned across processes.

        Result order always matches input order (``Pool.map`` semantics).
        """
        items = list(items)
        if not items or not self._use_pool(len(items)):
            return [fn(x) for x in items]
        with self._pool(len(items)) as pool:
            return pool.map(fn, items)

    def starmap(self, fn: Callable[..., R], items: Iterable[Sequence]) -> List[R]:
        """Like :meth:`map` for callables taking positional tuples."""
        items = list(items)
        if not items or not self._use_pool(len(items)):
            return [fn(*x) for x in items]
        with self._pool(len(items)) as pool:
            return pool.starmap(fn, items)
