"""Batched query runtime: the performance layer under the network-facing API.

Three pieces, composable but independently usable:

- :class:`BatchedBallQuery` — all M queries of a layer advance together as
  NumPy frontier arrays; bit-identical to the per-query reference searcher
  (:func:`repro.kdtree.exact.ball_query`), which the parity suite enforces.
- :class:`SearchSession` — owns K-d tree construction and result
  memoization behind geometry-digested LRU caches (no stale hits when a
  caller reuses a cache key with mutated points).
- :class:`SweepRunner` — fans parameter sweeps across ``multiprocessing``
  workers with deterministic, order-preserving results.

The step-machines in :mod:`repro.kdtree.traversal` remain the behavioral
reference for hardware statistics; this package only accelerates the paths
whose *results* are what matters (training, accuracy sweeps, figures).
"""

from .batched import BatchedBallQuery, batched_ball_query
from .session import CacheStats, LruCache, SearchSession, geometry_digest
from .sweep import SweepRunner

__all__ = [
    "BatchedBallQuery",
    "batched_ball_query",
    "CacheStats",
    "LruCache",
    "SearchSession",
    "geometry_digest",
    "SweepRunner",
]
