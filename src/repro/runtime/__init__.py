"""Batched query runtime: the performance layer under the network-facing API.

Four pieces, composable but independently usable:

- :class:`BatchedBallQuery` — all M queries of a layer advance together as
  NumPy frontier arrays; bit-identical to the per-query reference searcher
  (:func:`repro.kdtree.exact.ball_query`), which the parity suite enforces.
- :class:`TracedBallQuery` — the trace-capable variant: the same batched
  frontier sweep, plus per-query DFS visit traces and reconstructed
  :class:`~repro.kdtree.stats.TraversalStats`, visit-trace- and
  stats-identical to ``radius_search(..., record_trace=True)`` (pinned by
  the traced equivalence suite); what the Sec. 2 motivation studies run.
- :mod:`~repro.runtime.epoch` — epoch-batched training materialization:
  the whole ``(sample, setting)`` schedule drawn up front
  (RNG-stream-compatible), neighbor matrices deduped, grouped by
  ``(cloud, setting)``, and materialized through one shared session —
  optionally fanned across a process pool — before the gradient loop runs
  against a warm cache.
- :class:`VectorizedLockstep` — the accelerator model's lockstep sub-tree
  search as NumPy stack arrays: arbitration, broadcast, elision, and stall
  decisions per cycle as array ops, cycle- and stat-identical to the
  per-step reference (:func:`repro.core.approx_search.run_subtree_lockstep`),
  which the lockstep equivalence suite enforces.
- :func:`vectorized_top_phase` — the engine's phase-1 top-tree descent
  with **all** PE groups advancing level-synchronously as stacked arrays;
  cycle- and stall-identical to the per-group loop (kept as
  :func:`reference_top_phase`), which the equivalence suite enforces.
- :class:`SearchSession` — owns K-d tree / split-tree construction and
  result memoization behind geometry-digested LRU caches (no stale hits
  when a caller reuses a cache key with mutated points; sentinel-based
  misses so cached falsy values are never recomputed).
- :mod:`~repro.runtime.treebuild` — level-synchronous vectorized K-d
  tree and split-tree construction (the serving cold path): bit-identical
  to :func:`repro.kdtree.build.build_kdtree` / :class:`SplitTree`, built
  in O(log N) NumPy passes instead of per-node Python; what sessions use
  to fill cache misses by default.
- :class:`SweepRunner` — fans parameter sweeps across ``multiprocessing``
  workers with deterministic, order-preserving results; its long-lived
  promotion :class:`WorkerProcess` (mailbox + heartbeat + in-place
  respawn) is what the sharded serving tier builds its workers on.
- :mod:`~repro.runtime.network` — the network-level grid runtime behind
  ``PointCloudAccelerator.run_many``: per-cloud sampling plans shared
  across settings, and per-worker-process sessions so fan-out jobs stop
  rebuilding trees and split-tree layouts.

The step-machines in :mod:`repro.kdtree.traversal` remain the behavioral
reference for hardware statistics; this package accelerates both the
result-only paths (training, accuracy sweeps) and the cycle-accounted
simulation the figure benchmarks run.
"""

from .batched import (
    BatchedBallQuery,
    batched_ball_query,
    batched_nearest_node,
    frontier_sweep,
)
from .epoch import (
    EpochPlan,
    EpochSchedule,
    MaterializeReport,
    MaterializeRequest,
    QueryRequest,
    materialize_requests,
)
from .lockstep import LockstepResult, VectorizedLockstep
from .traced import TracedBallQuery, TracedBatchResult, traced_ball_query
from .session import (
    CacheStats,
    LruCache,
    SearchSession,
    geometry_digest,
    tree_digest,
)
from .network import layer_sampling_plan, run_network_grid, worker_session
from .sweep import SweepRunner, WorkerProcess
from .topphase import reference_top_phase, vectorized_top_phase

# Imported last: treebuild pulls in repro.core (for the SplitTree base),
# whose pipeline module imports .session from this package — everything
# it needs is already bound above by the time that re-entrant import runs.
from .treebuild import VectorizedSplitTree, euler_tour, vectorized_build_kdtree

__all__ = [
    "layer_sampling_plan",
    "run_network_grid",
    "worker_session",
    "BatchedBallQuery",
    "batched_ball_query",
    "batched_nearest_node",
    "frontier_sweep",
    "TracedBallQuery",
    "TracedBatchResult",
    "traced_ball_query",
    "EpochPlan",
    "EpochSchedule",
    "MaterializeReport",
    "MaterializeRequest",
    "QueryRequest",
    "materialize_requests",
    "LockstepResult",
    "VectorizedLockstep",
    "CacheStats",
    "LruCache",
    "SearchSession",
    "geometry_digest",
    "tree_digest",
    "SweepRunner",
    "WorkerProcess",
    "reference_top_phase",
    "vectorized_top_phase",
    "VectorizedSplitTree",
    "euler_tour",
    "vectorized_build_kdtree",
]
