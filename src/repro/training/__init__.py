"""Approximation-aware training: samplers, trainers, metrics."""

from .metrics import detection_iou_geomean, mean_iou, overall_accuracy
from .sampling import FixedSetting, MixedSetting, SettingSampler
from .trainer import (
    ClassificationTrainer,
    DetectionTrainer,
    SegmentationTrainer,
    TrainReport,
)

__all__ = [
    "detection_iou_geomean",
    "mean_iou",
    "overall_accuracy",
    "FixedSetting",
    "MixedSetting",
    "SettingSampler",
    "ClassificationTrainer",
    "DetectionTrainer",
    "SegmentationTrainer",
    "TrainReport",
]
