"""Approximation-setting samplers for training (paper Sec. 5).

Conventional training samples the input distribution; Crescent's training
additionally samples the *approximation-knob* distribution so one set of
weights serves every inference-time setting.  Two samplers cover the
paper's study (Fig. 20):

* :class:`FixedSetting` — a dedicated model trained for one ``h``.
* :class:`MixedSetting` — ``h`` drawn uniformly per input from a range,
  yielding the "Mixed" model that adapts across settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.config import ApproxSetting

__all__ = ["SettingSampler", "FixedSetting", "MixedSetting"]


class SettingSampler:
    """Interface: produce an :class:`ApproxSetting` for each training input."""

    def sample(self, rng: np.random.Generator) -> ApproxSetting:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSetting(SettingSampler):
    """Always the same setting (dedicated-model training)."""

    setting: ApproxSetting

    def sample(self, rng: np.random.Generator) -> ApproxSetting:
        return self.setting


@dataclass(frozen=True)
class MixedSetting(SettingSampler):
    """Uniform over top heights (and optionally elision heights) per input.

    ``top_heights`` and ``elision_heights`` are the discrete menus sampled
    from; ``elision_heights=None`` trains ANS-only models.
    """

    top_heights: Sequence[int]
    elision_heights: Optional[Sequence[Optional[int]]] = None

    def __post_init__(self) -> None:
        if not self.top_heights:
            raise ValueError("top_heights must be non-empty")

    def sample(self, rng: np.random.Generator) -> ApproxSetting:
        ht = int(rng.choice(list(self.top_heights)))
        he: Optional[int] = None
        if self.elision_heights:
            choice = self.elision_heights[rng.integers(len(self.elision_heights))]
            he = None if choice is None else int(choice)
        return ApproxSetting(ht, he)
