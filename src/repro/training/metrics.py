"""Task metrics: overall accuracy, mIoU, detection BEV IoU.

These are the three metrics of the paper's Table 1: overall accuracy for
classification (ModelNet40), mean intersection-over-union for part
segmentation (ShapeNet), and the geometric mean of car-class BEV IoU for
detection (KITTI).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.scenes import Box3D, box_iou_bev

__all__ = ["overall_accuracy", "mean_iou", "detection_iou_geomean"]


def overall_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float((predictions == labels).mean())


def mean_iou(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> float:
    """Mean per-class IoU over classes present in predictions or labels."""
    predictions = np.asarray(predictions).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    ious = []
    for c in range(num_classes):
        pred_c = predictions == c
        true_c = labels == c
        union = (pred_c | true_c).sum()
        if union == 0:
            continue  # class absent everywhere: skip, as in ShapeNet eval
        ious.append((pred_c & true_c).sum() / union)
    if not ious:
        raise ValueError("no classes present")
    return float(np.mean(ious))


def detection_iou_geomean(
    predicted: Sequence[Box3D], ground_truth: Sequence[Box3D]
) -> float:
    """Geometric mean of per-detection BEV IoU (paper's car-class metric).

    Zero-IoU detections are floored at a small epsilon so a single miss
    does not zero the whole geometric mean.
    """
    if len(predicted) != len(ground_truth) or not predicted:
        raise ValueError("need equal, non-empty box lists")
    ious = np.array(
        [max(box_iou_bev(p, g), 1e-3) for p, g in zip(predicted, ground_truth)]
    )
    return float(np.exp(np.log(ious).mean()))
