"""Approximation-aware training loops (paper Sec. 5, Fig. 11).

The trainer is generic over the three tasks via small adapters; what makes
it *approximation-aware* is two lines: a :class:`SettingSampler` draws an
``h = <h_t, h_e>`` per training input, and the model's forward pass runs
its neighbor pipeline under that ``h`` (bank conflicts included, through
:class:`~repro.core.pipeline.ApproximationPipeline`).  Neighbor search and
aggregation construct MLP inputs and carry no gradient, exactly as in the
paper, so end-to-end differentiability is untouched.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import ApproxSetting
from ..runtime.epoch import EpochPlan, MaterializeRequest, QueryRequest
from ..runtime.sweep import SweepRunner
from ..geometry.datasets import (
    LidarDetectionDataset,
    PartSegmentationDataset,
    ShapeClassificationDataset,
)
from ..geometry.scenes import Box3D, LidarScene
from ..models.fpointnet import CAR_ANCHOR, FrustumPointNet, frustum_crop
from ..nn.losses import huber_loss, softmax_cross_entropy
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import no_grad
from .metrics import detection_iou_geomean, mean_iou, overall_accuracy
from .sampling import FixedSetting, SettingSampler

__all__ = [
    "TrainReport",
    "ClassificationTrainer",
    "SegmentationTrainer",
    "DetectionTrainer",
]


@dataclass
class TrainReport:
    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class _BaseTrainer:
    def __init__(
        self,
        model: Module,
        sampler: SettingSampler = FixedSetting(ApproxSetting()),
        lr: float = 5e-3,
        seed: int = 0,
    ):
        self.model = model
        self.sampler = sampler
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.rng = np.random.default_rng(seed)
        # Set while evaluate_settings holds a freshly materialized grid:
        # the per-setting evaluate() calls then skip re-planning (FPS,
        # frustum crops, geometry digests) work that would only rediscover
        # already-cached keys.
        self._grid_is_warm = False

    def _loss(self, sample, setting: ApproxSetting, cache_key: int):
        raise NotImplementedError

    def _loss_batch(self, samples, settings, cache_keys):
        """Per-sample loss vector ``(B,)`` for a stacked mini-batch.

        Row ``b`` must equal ``_loss(samples[b], settings[b],
        cache_keys[b])`` bit for bit under the current parameters — the
        contract every ``forward_batch``/``reduction="per_sample"`` pair
        in this repo upholds.
        """
        raise NotImplementedError

    def _dataset_items(self, dataset):
        return [(i, dataset[i]) for i in range(len(dataset))]

    # -- epoch-batched materialization hooks ---------------------------
    @property
    def _pipeline(self):
        return getattr(self.model, "pipeline", None)

    def _model_points(self, idx: int, sample) -> Optional[np.ndarray]:
        """The point array ``_loss`` will feed the model for this sample
        (``None`` disables materialization for the sample)."""
        return None

    def _eval_points(self, i: int, sample) -> Optional[np.ndarray]:
        """The point array ``evaluate`` will feed the model for item ``i``."""
        return self._model_points(i, sample)

    def _neighbor_requests(self, idx: int, sample) -> List[QueryRequest]:
        """The neighbor queries training this sample will issue."""
        plan_fn = getattr(self.model, "query_plan", None)
        if plan_fn is None:
            return []
        points = self._model_points(idx, sample)
        if points is None:
            return []
        return list(plan_fn(points, cache_key=idx))

    def _eval_plan(self, dataset) -> List[QueryRequest]:
        """The setting-independent query plan of one evaluation pass
        (cache keys match the ``("eval", i)`` the evaluate loops pass).

        Computed once and bound to each setting with ``with_setting`` —
        plans depend only on geometry, so a settings sweep must not pay
        the FPS/frustum-crop planning pass per setting.
        """
        plan_fn = getattr(self.model, "query_plan", None)
        if plan_fn is None or self._pipeline is None:
            return []
        requests: List[QueryRequest] = []
        for i in range(len(dataset)):
            points = self._eval_points(i, dataset[i])
            if points is None:
                continue
            requests.extend(plan_fn(points, cache_key=("eval", i)))
        return requests

    def _materialize_eval(
        self, dataset, setting: ApproxSetting, runner: Optional[SweepRunner]
    ) -> None:
        # An evaluation pass reads each key exactly once, so without a
        # fanning runner up-front materialization buys nothing: the
        # forward loop computes (and caches) the same searches on demand,
        # making the planning pass pure overhead.  (train() is different —
        # epochs re-read keys, so its serial materialization still buys
        # the dedupe and the working-set capacity growth.)  It pays off
        # here when a process pool takes the search work, or is skipped
        # when evaluate_settings already warmed the whole grid.
        pipeline = self._pipeline
        if pipeline is None or self._grid_is_warm or runner is None:
            return
        requests = [req.with_setting(setting) for req in self._eval_plan(dataset)]
        if requests and runner.will_fan_out(len(requests)):
            pipeline.materialize(requests, runner=runner)

    # ------------------------------------------------------------------
    def train(
        self,
        dataset,
        epochs: int = 5,
        runner: Optional[SweepRunner] = None,
        batch_size: Optional[int] = None,
    ) -> TrainReport:
        """Run ``epochs`` passes; samples a fresh ``h`` per input.

        Epoch-batched: the whole schedule (per-epoch shuffles and the
        per-input setting draws) is taken from the RNG up front —
        stream-compatible with the retired per-step loop, so losses are
        bit-identical seed for seed — and each epoch's neighbor matrices
        are materialized into the pipeline's session before its gradient
        loop runs (fanned across ``runner``'s process pool if given).
        Models without a ``query_plan`` skip materialization and compute
        per step, as before.

        ``batch_size=None`` (default) keeps the historical per-sample
        optimizer step.  An integer runs honest mini-batch SGD over the
        *same* schedule (same RNG stream, same sample order, same
        per-sample settings and cache keys): each chunk of the epoch
        schedule is stacked through ``_loss_batch`` — one tape replay and
        one optimizer step per chunk — and the per-sample losses recorded
        in the report are bit-identical to what the per-sample loop would
        compute *under the same parameters*.  ``batch_size=1`` reproduces
        the default loop bit for bit; larger sizes change the optimization
        trajectory exactly as mini-batching classically does.
        """
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive or None")
        report = TrainReport()
        items = self._dataset_items(dataset)
        self.model.train()
        plan = EpochPlan.draw(self.rng, self.sampler, len(items), epochs)
        pipeline = self._pipeline
        # Query plans depend only on sample geometry (FPS and frustum
        # crops are deterministic), so plan each position once for the
        # whole run, not once per epoch.
        plan_cache: Dict[int, List[QueryRequest]] = {}

        def plan_for(pos: int) -> List[QueryRequest]:
            if pos not in plan_cache:
                plan_cache[pos] = self._neighbor_requests(*items[pos])
            return plan_cache[pos]

        for epoch in range(epochs):
            schedule = plan.schedules[epoch]
            if pipeline is not None:
                requests = plan.epoch_requests(epoch, plan_for)
                if requests:
                    pipeline.materialize(requests, runner=runner)
            losses: List[float] = []
            if batch_size is None:
                for setting, pos in zip(schedule.settings, schedule.order):
                    idx, sample = items[pos]
                    self.optimizer.zero_grad()
                    loss = self._loss(sample, setting, cache_key=idx)
                    loss.backward()
                    self.optimizer.step()
                    losses.append(loss.item())
            else:
                steps = list(zip(schedule.settings, schedule.order))
                for lo in range(0, len(steps), batch_size):
                    chunk = steps[lo : lo + batch_size]
                    settings = [setting for setting, _pos in chunk]
                    keys = [items[pos][0] for _setting, pos in chunk]
                    samples = [items[pos][1] for _setting, pos in chunk]
                    self.optimizer.zero_grad()
                    per_sample = self._loss_batch(samples, settings, keys)
                    per_sample.mean().backward()
                    self.optimizer.step()
                    losses.extend(float(x) for x in per_sample.data)
            report.epoch_losses.append(float(np.mean(losses)))
        return report

    def evaluate(
        self,
        dataset,
        setting: ApproxSetting,
        runner: Optional[SweepRunner] = None,
    ) -> float:
        raise NotImplementedError

    def evaluate_settings(
        self,
        dataset,
        settings: Sequence[ApproxSetting],
        runner: Optional[SweepRunner] = None,
    ) -> Dict[ApproxSetting, float]:
        """Evaluate under several inference-time settings (the Fig. 13/18/19
        sweep shape); returns ``{setting: metric}`` in input order.

        With a fanning (process-backed) runner, the whole ``settings x
        dataset`` grid of neighbor matrices is materialized into the
        shared session first — one setting-independent planning pass,
        deduped, grouped per cloud — and the per-setting scoring then
        also fans across the pool (each worker's trainer copy carries the
        warm session, so workers parallelize the model forwards without
        recomputing searches).  Without one, every sweep point computes
        and memoizes on demand, which is exactly as fast serially.
        Metrics are bit-identical either way.
        """
        settings = list(settings)
        pipeline = self._pipeline
        warmed = False
        if pipeline is not None and runner is not None:
            # One planning pass; the plan is setting-independent.  Only
            # worth doing when a pool will actually take the search work.
            plan = self._eval_plan(dataset)
            requests: List[MaterializeRequest] = [
                req.with_setting(setting) for setting in settings for req in plan
            ]
            if requests and runner.will_fan_out(len(requests)):
                pipeline.materialize(requests, runner=runner)
                warmed = True
        if runner is not None and runner.will_fan_out(len(settings)):
            # Fan the scoring too: model forwards dominate once searches
            # are warm, and the pickled trainer ships the warm session.
            scores = runner.map(
                functools.partial(_evaluate_one, self, dataset), settings
            )
            return dict(zip(settings, scores))
        # Serial scoring; the warm-grid flag stops the per-setting calls
        # from re-planning what was just materialized.
        self._grid_is_warm = warmed
        try:
            return {
                setting: self.evaluate(dataset, setting) for setting in settings
            }
        finally:
            self._grid_is_warm = False


def _evaluate_one(trainer: "_BaseTrainer", dataset, setting: ApproxSetting) -> float:
    """Module-level sweep point so process-backed runners can pickle it."""
    return trainer.evaluate(dataset, setting)


class ClassificationTrainer(_BaseTrainer):
    """Trains classifiers on :class:`ShapeClassificationDataset`."""

    def _loss(self, sample, setting, cache_key):
        cloud, label = sample
        logits = self.model(cloud.points, setting, cache_key=cache_key)
        return softmax_cross_entropy(logits, np.array([label]))

    def _loss_batch(self, samples, settings, cache_keys):
        points = np.stack([cloud.points for cloud, _label in samples])
        labels = np.array([[label] for _cloud, label in samples])
        logits = self.model.forward_batch(points, settings, cache_keys)
        return softmax_cross_entropy(logits, labels, reduction="per_sample")

    def _model_points(self, idx, sample):
        cloud, _label = sample
        return cloud.points

    def evaluate(
        self,
        dataset: ShapeClassificationDataset,
        setting: ApproxSetting,
        runner: Optional[SweepRunner] = None,
    ) -> float:
        """Overall accuracy under a fixed inference-time setting."""
        self._materialize_eval(dataset, setting, runner)
        was_training = self.model.training
        self.model.eval()
        preds, labels = [], []
        forward_batch = getattr(self.model, "forward_batch", None)
        clouds = [dataset[i] for i in range(len(dataset))]
        stackable = len({np.shape(cloud.points) for cloud, _label in clouds}) == 1
        with no_grad():
            if forward_batch is not None and clouds and stackable:
                points = np.stack([cloud.points for cloud, _label in clouds])
                keys = [("eval", i) for i in range(len(clouds))]
                logits = forward_batch(points, setting, keys)
                preds = list(logits.data.reshape(len(clouds), -1).argmax(axis=-1))
                labels = [label for _cloud, label in clouds]
            else:
                for i, (cloud, label) in enumerate(clouds):
                    logits = self.model(cloud.points, setting, cache_key=("eval", i))
                    preds.append(int(logits.data.argmax()))
                    labels.append(label)
        # Restore the mode the model was actually in: evaluating an
        # eval-mode model must not silently flip it to training.
        if was_training:
            self.model.train()
        return overall_accuracy(np.array(preds), np.array(labels))


class SegmentationTrainer(_BaseTrainer):
    """Trains per-point segmenters on :class:`PartSegmentationDataset`."""

    def __init__(self, model, num_classes: int, **kwargs):
        super().__init__(model, **kwargs)
        self.num_classes = num_classes

    def _loss(self, sample, setting, cache_key):
        cloud = sample
        logits = self.model(cloud.points, setting, cache_key=cache_key)
        return softmax_cross_entropy(logits, cloud.labels)

    def _loss_batch(self, samples, settings, cache_keys):
        points = np.stack([cloud.points for cloud in samples])
        labels = np.stack([cloud.labels for cloud in samples])
        logits = self.model.forward_batch(points, settings, cache_keys)
        return softmax_cross_entropy(logits, labels, reduction="per_sample")

    def _model_points(self, idx, sample):
        return sample.points

    def evaluate(
        self,
        dataset: PartSegmentationDataset,
        setting: ApproxSetting,
        runner: Optional[SweepRunner] = None,
    ) -> float:
        """mIoU under a fixed inference-time setting.

        Follows the ShapeNet evaluation protocol: the object category is
        known at test time, so predictions are restricted (argmax) to the
        category's own part labels.
        """
        from ..geometry.partseg import PART_CATEGORIES, part_id

        self._materialize_eval(dataset, setting, runner)
        was_training = self.model.training
        self.model.eval()
        all_preds, all_labels = [], []
        clouds = [dataset[i] for i in range(len(dataset))]
        forward_batch = getattr(self.model, "forward_batch", None)
        stackable = len({np.shape(cloud.points) for cloud in clouds}) == 1

        def predict(cloud, logits_data: np.ndarray) -> np.ndarray:
            category = cloud.attrs.get("category")
            if category in PART_CATEGORIES:
                allowed = np.array([part_id(p) for p in PART_CATEGORIES[category]])
                restricted = logits_data[:, allowed]
                return allowed[restricted.argmax(axis=-1)]
            return logits_data.argmax(axis=-1)

        with no_grad():
            if forward_batch is not None and clouds and stackable:
                points = np.stack([cloud.points for cloud in clouds])
                keys = [("eval", i) for i in range(len(clouds))]
                logits = forward_batch(points, setting, keys)
                for i, cloud in enumerate(clouds):
                    all_preds.append(predict(cloud, logits.data[i]))
                    all_labels.append(cloud.labels)
            else:
                for i, cloud in enumerate(clouds):
                    logits = self.model(cloud.points, setting, cache_key=("eval", i))
                    all_preds.append(predict(cloud, logits.data))
                    all_labels.append(cloud.labels)
        if was_training:
            self.model.train()
        return mean_iou(
            np.concatenate(all_preds), np.concatenate(all_labels), self.num_classes
        )


class DetectionTrainer(_BaseTrainer):
    """Trains :class:`FrustumPointNet` on LiDAR scenes.

    Each scene contributes one frustum sample per ground-truth box: the
    frustum crop around the box bearing, per-point object labels, and the
    box-regression target (center offset from the labelled-point centroid,
    log-size residuals against the car anchor, yaw sin/cos).
    """

    def __init__(self, model: FrustumPointNet, frustum_points: int = 192, **kwargs):
        super().__init__(model, **kwargs)
        self.frustum_points = frustum_points

    def _frustum_sample(self, scene: LidarScene, box: Box3D, seed: int):
        crop = frustum_crop(
            scene.cloud.points,
            box.center[:2],
            max_points=self.frustum_points,
            rng=np.random.default_rng(seed),
        )
        labels = box.contains(crop).astype(np.int64)
        return crop, labels

    @staticmethod
    def _box_target(crop: np.ndarray, labels: np.ndarray, box: Box3D) -> np.ndarray:
        inside = crop[labels.astype(bool)]
        base = inside.mean(axis=0) if len(inside) else crop.mean(axis=0)
        return np.concatenate(
            [
                box.center - base,
                np.log(box.size / CAR_ANCHOR),
                [np.sin(box.yaw), np.cos(box.yaw)],
            ]
        )

    def _loss(self, sample, setting, cache_key):
        scene = sample
        box = scene.boxes[0]
        crop, labels = self._frustum_sample(scene, box, seed=cache_key)
        pred = self.model(crop, setting, cache_key=cache_key)
        seg_loss = softmax_cross_entropy(pred.segmentation_logits, labels)
        target = self._box_target(crop, labels, box)
        box_loss = huber_loss(pred.box_params, target[None, :])
        return seg_loss + 2.0 * box_loss

    def _loss_batch(self, samples, settings, cache_keys):
        crops, seg_labels, targets = [], [], []
        for scene, key in zip(samples, cache_keys):
            box = scene.boxes[0]
            crop, labels = self._frustum_sample(scene, box, seed=key)
            crops.append(crop)
            seg_labels.append(labels)
            targets.append(self._box_target(crop, labels, box))
        pred = self.model.forward_batch(np.stack(crops), settings, cache_keys)
        seg_loss = softmax_cross_entropy(
            pred.segmentation_logits, np.stack(seg_labels), reduction="per_sample"
        )
        box_loss = huber_loss(
            pred.box_params, np.stack(targets)[:, None, :], reduction="per_sample"
        )
        return seg_loss + 2.0 * box_loss

    def _model_points(self, idx, sample):
        scene = sample
        crop, _ = self._frustum_sample(scene, scene.boxes[0], seed=idx)
        return crop

    def _eval_points(self, i, sample):
        scene = sample
        crop, _ = self._frustum_sample(scene, scene.boxes[0], seed=10_000 + i)
        return crop

    def evaluate(
        self,
        dataset: LidarDetectionDataset,
        setting: ApproxSetting,
        runner: Optional[SweepRunner] = None,
    ) -> float:
        """Geometric-mean BEV IoU on the first box of each scene."""
        self._materialize_eval(dataset, setting, runner)
        was_training = self.model.training
        self.model.eval()
        predicted, truth = [], []
        crops = []
        for i in range(len(dataset)):
            scene = dataset[i]
            truth.append(scene.boxes[0])
            crops.append(
                self._frustum_sample(scene, scene.boxes[0], seed=10_000 + i)[0]
            )
        with no_grad():
            if crops:
                keys = [("eval", i) for i in range(len(crops))]
                pred = self.model.forward_batch(np.stack(crops), setting, keys)
                predicted = [
                    pred.sample(i).decode(crop) for i, crop in enumerate(crops)
                ]
        if was_training:
            self.model.train()
        return detection_iou_geomean(predicted, truth)
