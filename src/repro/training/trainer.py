"""Approximation-aware training loops (paper Sec. 5, Fig. 11).

The trainer is generic over the three tasks via small adapters; what makes
it *approximation-aware* is two lines: a :class:`SettingSampler` draws an
``h = <h_t, h_e>`` per training input, and the model's forward pass runs
its neighbor pipeline under that ``h`` (bank conflicts included, through
:class:`~repro.core.pipeline.ApproximationPipeline`).  Neighbor search and
aggregation construct MLP inputs and carry no gradient, exactly as in the
paper, so end-to-end differentiability is untouched.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import ApproxSetting
from ..runtime.sweep import SweepRunner
from ..geometry.datasets import (
    LidarDetectionDataset,
    PartSegmentationDataset,
    ShapeClassificationDataset,
)
from ..geometry.scenes import Box3D, LidarScene
from ..models.fpointnet import CAR_ANCHOR, FrustumPointNet, frustum_crop
from ..nn.losses import huber_loss, softmax_cross_entropy
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import no_grad
from .metrics import detection_iou_geomean, mean_iou, overall_accuracy
from .sampling import FixedSetting, SettingSampler

__all__ = [
    "TrainReport",
    "ClassificationTrainer",
    "SegmentationTrainer",
    "DetectionTrainer",
]


@dataclass
class TrainReport:
    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class _BaseTrainer:
    def __init__(
        self,
        model: Module,
        sampler: SettingSampler = FixedSetting(ApproxSetting()),
        lr: float = 5e-3,
        seed: int = 0,
    ):
        self.model = model
        self.sampler = sampler
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.rng = np.random.default_rng(seed)

    def _loss(self, sample, setting: ApproxSetting, cache_key: int):
        raise NotImplementedError

    def _dataset_items(self, dataset):
        return [(i, dataset[i]) for i in range(len(dataset))]

    def train(self, dataset, epochs: int = 5) -> TrainReport:
        """Run ``epochs`` passes; samples a fresh ``h`` per input."""
        report = TrainReport()
        items = self._dataset_items(dataset)
        self.model.train()
        for _ in range(epochs):
            order = self.rng.permutation(len(items))
            losses = []
            for pos in order:
                idx, sample = items[pos]
                setting = self.sampler.sample(self.rng)
                self.optimizer.zero_grad()
                loss = self._loss(sample, setting, cache_key=idx)
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            report.epoch_losses.append(float(np.mean(losses)))
        return report

    def evaluate(self, dataset, setting: ApproxSetting) -> float:
        raise NotImplementedError

    def evaluate_settings(
        self,
        dataset,
        settings: Sequence[ApproxSetting],
        runner: Optional[SweepRunner] = None,
    ) -> Dict[ApproxSetting, float]:
        """Evaluate under several inference-time settings (the Fig. 13/18/19
        sweep shape); returns ``{setting: metric}`` in input order.

        The sweep fans through a :class:`~repro.runtime.SweepRunner`.  The
        default is the serial backend — every sweep point then shares this
        trainer's memoized neighbor matrices, which is usually faster than
        paying a cold cache per worker; pass a process-backed runner for
        wide sweeps over slow models.
        """
        settings = list(settings)
        runner = runner if runner is not None else SweepRunner(backend="serial")
        scores = runner.map(
            functools.partial(_evaluate_one, self, dataset), settings
        )
        return dict(zip(settings, scores))


def _evaluate_one(trainer: "_BaseTrainer", dataset, setting: ApproxSetting) -> float:
    """Module-level sweep point so process-backed runners can pickle it."""
    return trainer.evaluate(dataset, setting)


class ClassificationTrainer(_BaseTrainer):
    """Trains classifiers on :class:`ShapeClassificationDataset`."""

    def _loss(self, sample, setting, cache_key):
        cloud, label = sample
        logits = self.model(cloud.points, setting, cache_key=cache_key)
        return softmax_cross_entropy(logits, np.array([label]))

    def evaluate(
        self, dataset: ShapeClassificationDataset, setting: ApproxSetting
    ) -> float:
        """Overall accuracy under a fixed inference-time setting."""
        self.model.eval()
        preds, labels = [], []
        with no_grad():
            for i in range(len(dataset)):
                cloud, label = dataset[i]
                logits = self.model(cloud.points, setting, cache_key=("eval", i))
                preds.append(int(logits.data.argmax()))
                labels.append(label)
        self.model.train()
        return overall_accuracy(np.array(preds), np.array(labels))


class SegmentationTrainer(_BaseTrainer):
    """Trains per-point segmenters on :class:`PartSegmentationDataset`."""

    def __init__(self, model, num_classes: int, **kwargs):
        super().__init__(model, **kwargs)
        self.num_classes = num_classes

    def _loss(self, sample, setting, cache_key):
        cloud = sample
        logits = self.model(cloud.points, setting, cache_key=cache_key)
        return softmax_cross_entropy(logits, cloud.labels)

    def evaluate(
        self, dataset: PartSegmentationDataset, setting: ApproxSetting
    ) -> float:
        """mIoU under a fixed inference-time setting.

        Follows the ShapeNet evaluation protocol: the object category is
        known at test time, so predictions are restricted (argmax) to the
        category's own part labels.
        """
        from ..geometry.partseg import PART_CATEGORIES, part_id

        self.model.eval()
        all_preds, all_labels = [], []
        with no_grad():
            for i in range(len(dataset)):
                cloud = dataset[i]
                logits = self.model(cloud.points, setting, cache_key=("eval", i))
                category = cloud.attrs.get("category")
                if category in PART_CATEGORIES:
                    allowed = np.array(
                        [part_id(p) for p in PART_CATEGORIES[category]]
                    )
                    restricted = logits.data[:, allowed]
                    preds = allowed[restricted.argmax(axis=-1)]
                else:
                    preds = logits.data.argmax(axis=-1)
                all_preds.append(preds)
                all_labels.append(cloud.labels)
        self.model.train()
        return mean_iou(
            np.concatenate(all_preds), np.concatenate(all_labels), self.num_classes
        )


class DetectionTrainer(_BaseTrainer):
    """Trains :class:`FrustumPointNet` on LiDAR scenes.

    Each scene contributes one frustum sample per ground-truth box: the
    frustum crop around the box bearing, per-point object labels, and the
    box-regression target (center offset from the labelled-point centroid,
    log-size residuals against the car anchor, yaw sin/cos).
    """

    def __init__(self, model: FrustumPointNet, frustum_points: int = 192, **kwargs):
        super().__init__(model, **kwargs)
        self.frustum_points = frustum_points

    def _frustum_sample(self, scene: LidarScene, box: Box3D, seed: int):
        crop = frustum_crop(
            scene.cloud.points,
            box.center[:2],
            max_points=self.frustum_points,
            rng=np.random.default_rng(seed),
        )
        labels = box.contains(crop).astype(np.int64)
        return crop, labels

    @staticmethod
    def _box_target(crop: np.ndarray, labels: np.ndarray, box: Box3D) -> np.ndarray:
        inside = crop[labels.astype(bool)]
        base = inside.mean(axis=0) if len(inside) else crop.mean(axis=0)
        return np.concatenate(
            [
                box.center - base,
                np.log(box.size / CAR_ANCHOR),
                [np.sin(box.yaw), np.cos(box.yaw)],
            ]
        )

    def _loss(self, sample, setting, cache_key):
        scene = sample
        box = scene.boxes[0]
        crop, labels = self._frustum_sample(scene, box, seed=cache_key)
        pred = self.model(crop, setting, cache_key=cache_key)
        seg_loss = softmax_cross_entropy(pred.segmentation_logits, labels)
        target = self._box_target(crop, labels, box)
        box_loss = huber_loss(pred.box_params, target[None, :])
        return seg_loss + 2.0 * box_loss

    def evaluate(self, dataset: LidarDetectionDataset, setting: ApproxSetting) -> float:
        """Geometric-mean BEV IoU on the first box of each scene."""
        self.model.eval()
        predicted, truth = [], []
        with no_grad():
            for i in range(len(dataset)):
                scene = dataset[i]
                box = scene.boxes[0]
                crop, _ = self._frustum_sample(scene, box, seed=10_000 + i)
                pred = self.model(crop, setting, cache_key=("eval", i))
                predicted.append(pred.decode(crop))
                truth.append(box)
        self.model.train()
        return detection_iou_geomean(predicted, truth)
