"""End-to-end point cloud DNN accelerator model (paper Fig. 12).

The accelerator couples three engines per network layer:

1. the **neighbor search engine** (Crescent's, or a baseline's),
2. the **aggregation unit** gathering neighbors through the point buffer,
3. the **systolic array** running the layer's shared MLP.

Workloads are described by :class:`LayerSpec`/:class:`NetworkSpec` — the
same abstraction the paper uses ("a point cloud network layer = neighbor
search + feature computation") — and driven over concrete point clouds so
the search behaviour is real, not statistical.  Layer stages are
serialized, as in the paper's pipeline (search produces the neighbor index
matrix that aggregation consumes, which feeds the MLP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..core.config import ApproxSetting, CrescentHardwareConfig
from ..kdtree.build import KdTree
from ..memsim.dram import DramUsage
from ..memsim.energy import EnergyBreakdown
from ..runtime.network import layer_sampling_plan, run_network_grid
from ..runtime.session import SearchSession
from ..runtime.sweep import SweepRunner
from .aggregation import AggregationUnit
from .search_engine import NeighborSearchEngine, SearchEngineResult
from .systolic import SystolicArray

__all__ = [
    "LayerSpec",
    "NetworkSpec",
    "LayerResult",
    "NetworkResult",
    "PointCloudAccelerator",
    "SearchEngineProtocol",
]


@dataclass(frozen=True)
class LayerSpec:
    """One set-abstraction layer: search + aggregate + shared MLP."""

    name: str
    num_queries: int  # centroids searched this layer
    radius: float
    max_neighbors: int  # K
    mlp_channels: Tuple[int, ...]  # (C_in, ..., C_out), applied per neighbor

    def __post_init__(self) -> None:
        if self.num_queries <= 0 or self.max_neighbors <= 0:
            raise ValueError("num_queries and max_neighbors must be positive")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if len(self.mlp_channels) < 2:
            raise ValueError("mlp_channels needs input and output widths")


@dataclass(frozen=True)
class NetworkSpec:
    """A point cloud network as a sequence of search layers."""

    name: str
    layers: Tuple[LayerSpec, ...]
    # Fraction of MLP work outside search layers (classifier head, feature
    # propagation):  modeled as extra MLP rows on the last layer's widths.
    head_mlp_rows: int = 0
    head_mlp_channels: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a network needs at least one layer")


class SearchEngineProtocol(Protocol):
    """Anything that can run a search batch with engine-style accounting."""

    def run(
        self,
        tree: KdTree,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,
    ) -> Tuple[np.ndarray, np.ndarray, SearchEngineResult]:
        ...


@dataclass
class LayerResult:
    name: str
    search_cycles: int
    aggregation_cycles: int
    mlp_cycles: int
    energy: EnergyBreakdown
    search: SearchEngineResult
    aggregation_sram_conflicted: int
    dram_bytes: int

    @property
    def cycles(self) -> int:
        return self.search_cycles + self.aggregation_cycles + self.mlp_cycles


@dataclass
class NetworkResult:
    name: str
    layers: List[LayerResult] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return sum(l.cycles for l in self.layers)

    @property
    def search_cycles(self) -> int:
        return sum(l.search_cycles for l in self.layers)

    @property
    def aggregation_cycles(self) -> int:
        return sum(l.aggregation_cycles for l in self.layers)

    @property
    def mlp_cycles(self) -> int:
        return sum(l.mlp_cycles for l in self.layers)

    @property
    def energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for l in self.layers:
            total.merge(l.energy)
        return total

    @property
    def dram_bytes(self) -> int:
        return sum(l.dram_bytes for l in self.layers)

    @property
    def nodes_visited(self) -> int:
        return sum(l.search.report.traversal.nodes_visited for l in self.layers)


class PointCloudAccelerator:
    """A full accelerator: search engine + aggregation + systolic array.

    ``elide_aggregation`` selects the point-buffer service discipline
    (Crescent's BCE vs the baseline's stall-and-retry).

    ``session`` owns the K-d tree (and, for the default Crescent engine,
    split-tree) caches, so sweeps that revisit the same clouds —
    ``run_many``, the Fig. 22/23 drivers, repeated ``run_network`` calls —
    stop rebuilding trees per layer call.  One private session per
    accelerator by default; pass a shared one to pool across accelerators.
    """

    def __init__(
        self,
        hw: CrescentHardwareConfig = CrescentHardwareConfig(),
        search_engine: Optional[SearchEngineProtocol] = None,
        elide_aggregation: bool = False,
        session: Optional[SearchSession] = None,
    ):
        self.hw = hw
        self.session = session if session is not None else SearchSession()
        self.search_engine = search_engine or NeighborSearchEngine(
            hw, session=self.session
        )
        self.aggregation = AggregationUnit(hw)
        self.systolic = SystolicArray(hw.systolic_rows, hw.systolic_cols)
        self.elide_aggregation = elide_aggregation

    # ------------------------------------------------------------------
    def run_layer(
        self,
        points: np.ndarray,
        spec: LayerSpec,
        setting: ApproxSetting,
        rng: Optional[np.random.Generator] = None,
        queries: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, LayerResult]:
        """Execute one layer over ``points``; returns the next layer's points.

        Centroids are either sampled from ``rng`` or passed pre-sampled as
        ``queries`` (the shared-plan path of
        :func:`~repro.runtime.network.run_network_grid`, where one draw
        serves every setting of a sweep).
        """
        points = np.asarray(points, dtype=np.float64)
        if spec.num_queries > len(points):
            raise ValueError(
                f"layer {spec.name!r} wants {spec.num_queries} queries from "
                f"{len(points)} points"
            )
        if queries is None:
            if rng is None:
                raise ValueError("run_layer needs either rng or queries")
            queries = points[rng.choice(len(points), spec.num_queries, replace=False)]
        tree = self.session.tree_for(points)
        indices, counts, search = self.search_engine.run(
            tree, queries, spec.radius, spec.max_neighbors, setting
        )
        agg = self.aggregation.run(
            indices, num_points=len(points), elide=self.elide_aggregation
        )
        mlp_rows = spec.num_queries * spec.max_neighbors
        mlp = self.systolic.shared_mlp(mlp_rows, list(spec.mlp_channels))

        energy = EnergyBreakdown()
        energy.merge(search.energy)
        energy.merge(agg.energy)
        energy.merge(self.systolic.energy(mlp, self.hw.energy))
        result = LayerResult(
            name=spec.name,
            search_cycles=search.cycles,
            aggregation_cycles=agg.cycles,
            mlp_cycles=mlp.cycles,
            energy=energy,
            search=search,
            aggregation_sram_conflicted=agg.sram.conflicted,
            dram_bytes=search.dram.total_bytes + agg.dram.total_bytes,
        )
        return queries, result

    # ------------------------------------------------------------------
    def run_network(
        self,
        spec: NetworkSpec,
        points: np.ndarray,
        setting: ApproxSetting,
        seed: int = 0,
        plan: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> NetworkResult:
        """Execute every layer of ``spec`` starting from ``points``.

        Each layer's query set (the sampled centroids) becomes the next
        layer's point population, mirroring hierarchical set abstraction.
        ``plan`` optionally supplies the per-layer ``(points, queries)``
        chain pre-sampled by
        :func:`~repro.runtime.network.layer_sampling_plan` — bit-identical
        to sampling here, so sweeps draw each cloud's centroids once and
        replay them under every setting.
        """
        if plan is None:
            plan = layer_sampling_plan(spec, points, seed)
        result = NetworkResult(name=spec.name)
        for layer, (layer_points, layer_queries) in zip(spec.layers, plan):
            _, layer_result = self.run_layer(
                layer_points, layer, setting, queries=layer_queries
            )
            result.layers.append(layer_result)
        if spec.head_mlp_rows > 0 and spec.head_mlp_channels:
            head = self.systolic.shared_mlp(
                spec.head_mlp_rows, list(spec.head_mlp_channels)
            )
            energy = self.systolic.energy(head, self.hw.energy)
            result.layers.append(
                LayerResult(
                    name=f"{spec.name}/head",
                    search_cycles=0,
                    aggregation_cycles=0,
                    mlp_cycles=head.cycles,
                    energy=energy,
                    search=SearchEngineResult(0, 0, 0),
                    aggregation_sram_conflicted=0,
                    dram_bytes=head.weight_dram_bytes,
                )
            )
        return result

    # ------------------------------------------------------------------
    def run_many(
        self,
        spec: NetworkSpec,
        clouds: Sequence[np.ndarray],
        settings: Sequence[ApproxSetting],
        seed: int = 0,
        runner: Optional[SweepRunner] = None,
    ) -> List[List[NetworkResult]]:
        """Run ``spec`` for every ``settings x clouds`` combination.

        The network-level sweep entry: ``results[i][j]`` is
        ``run_network(spec, clouds[j], settings[i], seed)``, so a figure
        driver gets its whole settings-by-clouds grid in one call.  With a
        :class:`~repro.runtime.SweepRunner` the grid fans out across
        worker processes (order-preserving, so tables stay deterministic);
        the default runs serially through this accelerator's shared
        session, which reuses each cloud's trees across every setting.

        Worker processes rebuild the accelerator from picklable parts —
        the hardware config, the elision flag, and the search engine
        *class* (reconstructed as ``type(engine)(hw, session=...)``, or
        ``type(engine)(hw)`` for engines without a session parameter) —
        so engines with unpicklable runtime state still sweep; engines
        whose constructors need more than that should be swept serially.
        Each worker process keeps one long-lived session, so its jobs
        share trees, split-tree layouts, and sampling plans.  The rebuild
        only happens when the runner will actually engage its pool: a
        runner that resolves to serial execution (``backend="serial"``,
        or ``"auto"`` with one worker or one job) takes the faithful
        in-process path through this accelerator's own engine.
        """
        return run_network_grid(
            self, spec, clouds, settings, seed=seed, runner=runner
        )
