"""Systolic-array timing/energy model for the MLP stage.

The paper uses a 16×16 TPU-style MAC array for feature computation; its
behaviour on dense MLPs is regular and well understood, so a first-order
analytical model is adequate (and is exactly what the paper's simulator
parameterizes): a weight-stationary array processes an ``(M × Cin) @ (Cin
× Cout)`` matmul in output tiles of ``rows × cols``, paying a pipeline
fill/drain latency per tile and one MAC per cell per cycle at full
utilization.

SRAM traffic (global buffer) and streaming DRAM traffic for weights are
accounted so the end-to-end energy breakdown (paper Fig. 16) has the MLP
contributions in it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsim.energy import EnergyBreakdown, EnergyModel

__all__ = ["SystolicArray", "MatmulCost"]

BYTES_PER_VALUE = 2  # fp16/int16 datapath, as in mobile accelerators


@dataclass
class MatmulCost:
    cycles: int
    macs: int
    sram_bytes: int
    weight_dram_bytes: int

    def merge(self, other: "MatmulCost") -> "MatmulCost":
        self.cycles += other.cycles
        self.macs += other.macs
        self.sram_bytes += other.sram_bytes
        self.weight_dram_bytes += other.weight_dram_bytes
        return self


class SystolicArray:
    """Weight-stationary ``rows × cols`` MAC array."""

    def __init__(self, rows: int = 16, cols: int = 16):
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols

    def matmul(self, m: int, c_in: int, c_out: int) -> MatmulCost:
        """Cost of an ``(m, c_in) @ (c_in, c_out)`` matmul.

        Tiles: ``ceil(c_in / rows) * ceil(c_out / cols)`` weight tiles; each
        tile streams all ``m`` activations through the array with a
        ``rows + cols`` fill/drain bubble.
        """
        if m < 0 or c_in <= 0 or c_out <= 0:
            raise ValueError("matmul dimensions must be positive (m may be 0)")
        if m == 0:
            return MatmulCost(0, 0, 0, 0)
        tiles_in = -(-c_in // self.rows)
        tiles_out = -(-c_out // self.cols)
        tiles = tiles_in * tiles_out
        fill = self.rows + self.cols
        cycles = tiles * (m + fill)
        macs = m * c_in * c_out
        # Activations are read per input tile and written per output tile.
        act_reads = m * c_in * tiles_out * BYTES_PER_VALUE
        act_writes = m * c_out * BYTES_PER_VALUE
        weight_bytes = c_in * c_out * BYTES_PER_VALUE
        return MatmulCost(
            cycles=cycles,
            macs=macs,
            sram_bytes=act_reads + act_writes + weight_bytes,
            weight_dram_bytes=weight_bytes,
        )

    def shared_mlp(self, num_points: int, channels: "list[int]") -> MatmulCost:
        """Cost of a per-point MLP (1×1 conv) chain over ``num_points`` rows.

        ``channels`` is ``[c0, c1, ..., ck]``; the chain runs k matmuls.
        """
        if len(channels) < 2:
            raise ValueError("channels must list at least input and output width")
        total = MatmulCost(0, 0, 0, 0)
        for c_in, c_out in zip(channels, channels[1:]):
            total.merge(self.matmul(num_points, c_in, c_out))
        return total

    def energy(self, cost: MatmulCost, model: EnergyModel) -> EnergyBreakdown:
        """Energy of a matmul cost under the shared energy model."""
        out = EnergyBreakdown()
        out.add("mlp_macs", model.macs(cost.macs))
        out.add("mlp_sram", model.sram(cost.sram_bytes))
        out.add("dram_streaming", model.dram_streaming(cost.weight_dram_bytes))
        return out
