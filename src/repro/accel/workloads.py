"""Evaluation workloads: the paper's four networks as accelerator specs.

Table 1 of the paper evaluates PointNet++ (classification and segmentation
variants), DensePoint, and F-PointNet.  For the *architecture* experiments
(Figs. 14–17, 22, 24) what matters is each network's layer geometry — how
many centroids search how many neighbors over how many points, and how
much MLP work follows — because that fixes the search/compute balance the
paper reports (neighbor search is ~81% of DensePoint's time but ~55% of
the others').  The specs below reproduce those balances at the scale of
our synthetic datasets; accuracy experiments (Figs. 13, 18–21) use the
trainable models in :mod:`repro.models` instead.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..geometry.scenes import generate_scene
from ..geometry.synthetic import sample_shape
from .accelerator import LayerSpec, NetworkSpec

__all__ = [
    "pointnetpp_cls_spec",
    "pointnetpp_seg_spec",
    "densepoint_spec",
    "fpointnet_spec",
    "evaluation_networks",
    "evaluation_hardware",
    "workload_points",
]


def evaluation_hardware() -> "CrescentHardwareConfig":
    """Hardware config used by the evaluation benches.

    Identical to the paper's Sec. 6 configuration except the query buffer,
    which is scaled down (3 KB → 128 B, i.e. 8 staged queries) to keep the
    *queue-length : buffer-capacity* ratio in the paper's regime (sub-tree
    queues several times the buffer).  The paper's scenes are ~1.2 M points, so
    sub-tree query queues overflow a 3 KB buffer — that overflow is
    precisely what forces Tigris/QuickNN to reload sub-trees and what
    Crescent's batch staging eliminates (Sec. 3.4).  Our synthetic scenes
    are ~100× smaller; an unscaled buffer would hide the reload pathology
    entirely.
    """
    from ..core.config import CrescentHardwareConfig
    from ..memsim.sram import BankedSramConfig

    return CrescentHardwareConfig().with_overrides(
        query_buffer=BankedSramConfig(size_bytes=128, num_banks=1)
    )


def pointnetpp_cls_spec() -> NetworkSpec:
    """PointNet++ (c): three set-abstraction layers + classifier head.

    Channel widths are scaled down with the synthetic datasets (2048-point
    clouds instead of the paper's full scans) so the baseline's
    search : feature-computation time split lands at the paper's measured
    ratio (neighbor search ≈ 55% of PointNet++ runtime).
    """
    return NetworkSpec(
        name="PointNet++ (c)",
        layers=(
            LayerSpec("sa1", num_queries=512, radius=0.1, max_neighbors=16,
                      mlp_channels=(3, 16, 16)),
            LayerSpec("sa2", num_queries=128, radius=0.2, max_neighbors=16,
                      mlp_channels=(16, 16, 16)),
            LayerSpec("sa3", num_queries=32, radius=0.4, max_neighbors=16,
                      mlp_channels=(16, 16, 16)),
        ),
        head_mlp_rows=32,
        head_mlp_channels=(16, 16, 8),
    )


def pointnetpp_seg_spec() -> NetworkSpec:
    """PointNet++ (s): the SA stack plus per-point feature propagation."""
    return NetworkSpec(
        name="PointNet++ (s)",
        layers=(
            LayerSpec("sa1", num_queries=512, radius=0.1, max_neighbors=16,
                      mlp_channels=(3, 16, 16)),
            LayerSpec("sa2", num_queries=128, radius=0.2, max_neighbors=16,
                      mlp_channels=(16, 16, 16)),
            LayerSpec("sa3", num_queries=32, radius=0.4, max_neighbors=16,
                      mlp_channels=(16, 16, 16)),
        ),
        # Feature propagation: per-point MLP over all 2048 input points.
        head_mlp_rows=2048,
        head_mlp_channels=(16, 16, 8),
    )


def densepoint_spec() -> NetworkSpec:
    """DensePoint: many narrow, densely-connected layers.

    Narrow MLPs make neighbor search dominate (~81% of runtime in the
    paper), which is why DensePoint shows Crescent's largest speedups.
    """
    layers: List[LayerSpec] = []
    queries = [1024, 768, 512, 384, 256, 128]
    for i, q in enumerate(queries):
        layers.append(
            LayerSpec(
                f"ppool{i+1}",
                num_queries=q,
                radius=0.07 + 0.025 * i,
                max_neighbors=8,
                mlp_channels=(8, 8) if i else (3, 8),
            )
        )
    return NetworkSpec(
        name="DensePoint",
        layers=tuple(layers),
        head_mlp_rows=128,
        head_mlp_channels=(8, 16, 8),
    )


def fpointnet_spec() -> NetworkSpec:
    """F-PointNet: frustum proposals then PointNet++-style box estimation."""
    return NetworkSpec(
        name="F-PointNet",
        layers=(
            LayerSpec("seg1", num_queries=2048, radius=1.5, max_neighbors=16,
                      mlp_channels=(3, 16, 16)),
            LayerSpec("seg2", num_queries=512, radius=3.0, max_neighbors=16,
                      mlp_channels=(16, 16, 16)),
            LayerSpec("box1", num_queries=128, radius=6.0, max_neighbors=16,
                      mlp_channels=(16, 16, 16)),
        ),
        head_mlp_rows=128,
        head_mlp_channels=(16, 16, 8),
    )


def evaluation_networks() -> Dict[str, NetworkSpec]:
    """The paper's Table 1 suite, keyed by display name."""
    specs = [
        pointnetpp_cls_spec(),
        pointnetpp_seg_spec(),
        densepoint_spec(),
        fpointnet_spec(),
    ]
    return {spec.name: spec for spec in specs}


def workload_points(spec_name: str, seed: int = 0) -> np.ndarray:
    """A representative input point cloud for a network spec.

    Classification/segmentation networks get a ModelNet-style shape scan
    (2048 points, unit sphere); F-PointNet gets a KITTI-style LiDAR scene
    (4096 points, tens of meters).
    """
    rng = np.random.default_rng(seed)
    if spec_name == "F-PointNet":
        return generate_scene(rng, num_points=4096, num_cars=4).cloud.points
    cloud = sample_shape("torus", rng, num_points=2048, noise=0.03, occlusion=0.1)
    return cloud.points
