"""The five-stage search PE pipeline (paper Fig. 7, left panel).

A PE processes one tree-node visit per pipeline pass through the stages

    RS (read stack) → FN (fetch node) → CD (compute distance)
    → SR (store result) → US (update stack)

with an initiation interval of one: stack forwarding lets the next visit's
RS issue right behind the previous visit's US.  The only stall source is a
bank conflict at FN, which either inserts a retry bubble (conflict above
the elision height) or converts the visit into a skip that still flows
down the pipe (conflict elided).  During top-tree search the US stage is
bypassed (no backtracking state to update).

:class:`FiveStagePipeline` is a cycle-stepped simulator of that structure.
The batch engine (:mod:`repro.accel.search_engine`) uses its timing
contract — ``cycles = depth + visits + retry_bubbles - 1`` — which the
unit tests verify against this simulator cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["FiveStagePipeline", "PipelineRun", "PIPELINE_DEPTH"]

PIPELINE_DEPTH = 5
_STAGES = ("RS", "FN", "CD", "SR", "US")


@dataclass
class PipelineRun:
    """Outcome of running a visit sequence through the pipeline."""

    cycles: int
    visits_completed: int
    retry_bubbles: int
    occupancy_trace: List[int]

    @property
    def throughput(self) -> float:
        return 0.0 if self.cycles == 0 else self.visits_completed / self.cycles


class FiveStagePipeline:
    """Cycle-accurate model of one search PE.

    The input is, per visit, the number of FN retries the visit suffers
    (0 for conflict-free visits; an elided visit is also 0 retries — it
    proceeds as a skip).  The simulator advances stage occupancy cycle by
    cycle, holding younger visits back while FN retries.
    """

    def __init__(self, depth: int = PIPELINE_DEPTH, skip_us: bool = False):
        if depth < 3:
            raise ValueError("pipeline needs at least RS, FN, and one more stage")
        self.depth = depth
        self.skip_us = skip_us  # top-tree mode: US bypassed (no timing change;
        # the slot still flows through to keep II = 1)

    def run(self, retries_per_visit: Sequence[int]) -> PipelineRun:
        retries = list(retries_per_visit)
        if any(r < 0 for r in retries):
            raise ValueError("retry counts must be non-negative")
        n = len(retries)
        # stage[s] holds the visit index occupying stage s, or None.
        stage: List[Optional[int]] = [None] * self.depth
        fn = 1  # FN is the second stage
        remaining = dict(enumerate(retries))
        next_issue = 0
        completed = 0
        cycles = 0
        occupancy: List[int] = []
        while completed < n:
            # Issue into RS at the start of the cycle if it is free.
            if stage[0] is None and next_issue < n:
                stage[0] = next_issue
                next_issue += 1
            cycles += 1
            occupancy.append(sum(1 for v in stage if v is not None))
            # A conflicted FN occupies the stage for one retry cycle and
            # back-pressures everything behind it; stages ahead keep draining.
            fn_stall = stage[fn] is not None and remaining[stage[fn]] > 0
            if fn_stall:
                remaining[stage[fn]] -= 1
            new: List[Optional[int]] = [None] * self.depth
            for s in range(self.depth - 1, -1, -1):
                visit = stage[s]
                if visit is None:
                    continue
                if s == self.depth - 1:
                    completed += 1  # exits the pipeline this cycle
                elif fn_stall and s <= fn:
                    new[s] = visit  # held by the FN retry
                else:
                    new[s + 1] = visit
            stage = new
        return PipelineRun(
            cycles=cycles,
            visits_completed=completed,
            retry_bubbles=sum(retries),
            occupancy_trace=occupancy,
        )

    @staticmethod
    def analytic_cycles(num_visits: int, retry_bubbles: int, depth: int = PIPELINE_DEPTH) -> int:
        """Closed form the batch engine uses; verified against :meth:`run`."""
        if num_visits == 0:
            return 0
        return depth + num_visits - 1 + retry_bubbles
