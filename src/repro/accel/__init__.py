"""Accelerator simulator: PEs, search engine, aggregation, systolic array, baselines."""

from .pe import PIPELINE_DEPTH, FiveStagePipeline, PipelineRun
from .systolic import MatmulCost, SystolicArray
from .search_engine import (
    INDEX_BYTES,
    QUERY_BYTES,
    NeighborSearchEngine,
    SearchEngineResult,
)
from .aggregation import POINT_RECORD_BYTES, AggregationResult, AggregationUnit
from .accelerator import (
    LayerResult,
    LayerSpec,
    NetworkResult,
    NetworkSpec,
    PointCloudAccelerator,
)
from .baselines import (
    ExhaustiveSplitSearchEngine,
    GpuCoefficients,
    GpuModel,
    gpu_network_result,
    make_mesorasi,
    tigris_gpu_network_result,
)
from .workloads import (
    densepoint_spec,
    evaluation_hardware,
    evaluation_networks,
    fpointnet_spec,
    pointnetpp_cls_spec,
    pointnetpp_seg_spec,
    workload_points,
)

__all__ = [
    "PIPELINE_DEPTH",
    "FiveStagePipeline",
    "PipelineRun",
    "MatmulCost",
    "SystolicArray",
    "INDEX_BYTES",
    "QUERY_BYTES",
    "NeighborSearchEngine",
    "SearchEngineResult",
    "POINT_RECORD_BYTES",
    "AggregationResult",
    "AggregationUnit",
    "LayerResult",
    "LayerSpec",
    "NetworkResult",
    "NetworkSpec",
    "PointCloudAccelerator",
    "ExhaustiveSplitSearchEngine",
    "GpuCoefficients",
    "GpuModel",
    "gpu_network_result",
    "make_mesorasi",
    "tigris_gpu_network_result",
    "densepoint_spec",
    "evaluation_hardware",
    "evaluation_networks",
    "fpointnet_spec",
    "pointnetpp_cls_spec",
    "pointnetpp_seg_spec",
    "workload_points",
]
