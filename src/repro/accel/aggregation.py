"""Neighbor aggregation unit (Mesorasi-style), with optional elision.

Aggregation gathers each query's ``K`` neighbor points/features from the
banked point buffer into the matrix the MLP consumes.  The DRAM side is
fully streaming (points are loaded once, in order); the SRAM side suffers
input-dependent bank conflicts, which either serialize (baseline) or are
elided by replicating the winner's data (Crescent, paper Sec. 4.2).

Timing: one group of ``num_ports`` concurrent fetches issues per cycle;
a group with a ``c``-way worst bank collision takes ``c`` cycles in stall
mode and 1 cycle in elide mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.bank_conflict import PointBufferBanking, apply_aggregation_elision
from ..core.config import CrescentHardwareConfig
from ..memsim.dram import DramModel, DramUsage
from ..memsim.energy import EnergyBreakdown
from ..memsim.sram import SramStats

__all__ = ["AggregationResult", "AggregationUnit", "POINT_RECORD_BYTES"]

POINT_RECORD_BYTES = 16  # one point/feature record in the point buffer


@dataclass
class AggregationResult:
    cycles: int
    effective_indices: np.ndarray
    sram: SramStats = field(default_factory=SramStats)
    dram: DramUsage = field(default_factory=DramUsage)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)


class AggregationUnit:
    """Gathers neighbors through the banked point buffer."""

    def __init__(self, hw: CrescentHardwareConfig = CrescentHardwareConfig()):
        self.hw = hw
        self.banking = PointBufferBanking(num_banks=hw.point_buffer.num_banks)
        self.num_ports = hw.point_buffer.num_banks  # ports match banks, Sec. 6

    def run(
        self,
        indices: np.ndarray,
        num_points: int,
        elide: bool,
        record_bytes: int = POINT_RECORD_BYTES,
    ) -> AggregationResult:
        """Aggregate using the ``(M, K)`` neighbor index matrix.

        ``num_points`` is the population of the point buffer's backing
        store (for the streaming DRAM load of the points themselves).
        Returns the *effective* index matrix: identical to the input in
        stall mode, conflict-replicated in elide mode.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2:
            raise ValueError("indices must be (M, K)")
        m, k = indices.shape
        sram = SramStats()
        cycles = 0
        if elide:
            effective = apply_aggregation_elision(
                indices, self.banking, self.num_ports, stats=sram
            )
            cycles = sram.cycles
        else:
            effective = indices
            # Stall mode: each group of num_ports requests serializes to the
            # worst per-bank occupancy; every non-first request to a bank is
            # conflicted.
            nb = self.banking.num_banks
            for start in range(0, k, self.num_ports):
                chunk = indices[:, start : start + self.num_ports]
                banks = self.banking.bank_of_point(chunk)  # (M, P)
                counts = (
                    banks[:, :, None] == np.arange(nb)[None, None, :]
                ).sum(axis=1)  # (M, nb): requests per bank per group
                group_cycles = counts.max(axis=1)
                distinct = (counts > 0).sum(axis=1)
                cycles += int(group_cycles.sum())
                sram.accesses += chunk.size
                sram.reads_served += chunk.size
                sram.conflicted += chunk.size - int(distinct.sum())
                sram.cycles += int(group_cycles.sum())

        # DRAM: streaming load of all point records once, streaming write of
        # the aggregated matrix is consumed on-chip by the MLP (no write-back).
        dram = DramModel(self.hw.dram)
        dram.stream(num_points * record_bytes)

        energy = EnergyBreakdown()
        em = self.hw.energy
        energy.add("sram_aggregation", em.sram(sram.reads_served * record_bytes))
        energy.add("dram_streaming", em.dram_streaming(dram.usage.streaming_bytes))
        return AggregationResult(
            cycles=cycles,
            effective_indices=effective,
            sram=sram,
            dram=dram.usage,
            energy=energy,
        )
