"""Neighbor aggregation unit (Mesorasi-style), with optional elision.

Aggregation gathers each query's ``K`` neighbor points/features from the
banked point buffer into the matrix the MLP consumes.  The DRAM side is
fully streaming (points are loaded once, in order); the SRAM side suffers
input-dependent bank conflicts, which either serialize (baseline) or are
elided by replicating the winner's data (Crescent, paper Sec. 4.2).

Timing: one group of ``num_ports`` concurrent fetches issues per cycle;
a group whose worst bank serves ``c`` *distinct* point ids takes ``c``
cycles in stall mode and 1 cycle in elide mode.  Requests for the same
point id are satisfied by one broadcast read in both modes (the point
buffer's wide words hold a whole record, so the winner's read carries the
loser's data): they are ledgered in ``SramStats.broadcasts``, excluded
from ``conflicted``/``elided``, and charge no read energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.bank_conflict import (
    PointBufferBanking,
    apply_aggregation_elision,
    point_buffer_stall_stats,
)
from ..core.config import CrescentHardwareConfig
from ..memsim.dram import DramModel, DramUsage
from ..memsim.energy import EnergyBreakdown
from ..memsim.sram import SramStats

__all__ = ["AggregationResult", "AggregationUnit", "POINT_RECORD_BYTES"]

POINT_RECORD_BYTES = 16  # one point/feature record in the point buffer


@dataclass
class AggregationResult:
    cycles: int
    effective_indices: np.ndarray
    sram: SramStats = field(default_factory=SramStats)
    dram: DramUsage = field(default_factory=DramUsage)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)


class AggregationUnit:
    """Gathers neighbors through the banked point buffer."""

    def __init__(self, hw: CrescentHardwareConfig = CrescentHardwareConfig()):
        self.hw = hw
        self.banking = PointBufferBanking(num_banks=hw.point_buffer.num_banks)
        self.num_ports = hw.point_buffer.num_banks  # ports match banks, Sec. 6

    def run(
        self,
        indices: np.ndarray,
        num_points: int,
        elide: bool,
        record_bytes: int = POINT_RECORD_BYTES,
    ) -> AggregationResult:
        """Aggregate using the ``(M, K)`` neighbor index matrix.

        ``num_points`` is the population of the point buffer's backing
        store (for the streaming DRAM load of the points themselves).
        Returns the *effective* index matrix: identical to the input in
        stall mode, conflict-replicated in elide mode.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2:
            raise ValueError("indices must be (M, K)")
        m, k = indices.shape
        sram = SramStats()
        cycles = 0
        if elide:
            effective = apply_aggregation_elision(
                indices, self.banking, self.num_ports, stats=sram
            )
            cycles = sram.cycles
        else:
            effective = indices
            # Stall mode: the shared baseline ledger — the same accounting
            # Fig. 5's aggregation_conflict_rate reports, so the metric
            # and the modeled hardware can never drift apart.
            cycles = point_buffer_stall_stats(
                indices, self.banking, self.num_ports, stats=sram
            )

        # DRAM: streaming load of all point records once, streaming write of
        # the aggregated matrix is consumed on-chip by the MLP (no write-back).
        dram = DramModel(self.hw.dram)
        dram.stream(num_points * record_bytes)

        energy = EnergyBreakdown()
        em = self.hw.energy
        energy.add("sram_aggregation", em.sram(sram.reads_served * record_bytes))
        energy.add("dram_streaming", em.dram_streaming(dram.usage.streaming_bytes))
        return AggregationResult(
            cycles=cycles,
            effective_indices=effective,
            sram=sram,
            dram=dram.usage,
            energy=energy,
        )
