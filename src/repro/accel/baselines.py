"""Baseline accelerators and prior neighbor-search engines.

Three baselines frame the paper's evaluation (Sec. 6):

* **Mesorasi** — a point cloud accelerator using a Tigris-style neighbor
  search engine plus the same systolic array / aggregation unit as
  Crescent, but with neither approximate search nor bank-conflict elision.
  Modeled as :class:`PointCloudAccelerator` with
  :class:`ExhaustiveSplitSearchEngine` and stall-mode aggregation.
* **Tigris+GPU** — Tigris search engine, feature computation on a mobile
  (Jetson TX2 class) GPU.
* **GPU** — everything on the mobile GPU.

Tigris and QuickNN share the split-tree idea but (a) search sub-trees
*exhaustively* and (b) reload a sub-tree from DRAM whenever its query
buffer fills, instead of staging all queries first.  Both behaviours are
modeled here and ablated in the Fig. 24 bench.

The GPU is modeled analytically from workload counters (node visits, MACs,
bytes) with coefficients calibrated so the *relative* gaps match the
paper's published ratios (GPU ≈ 38× Mesorasi's energy, Tigris+GPU ≈ 25×).
Absolute GPU latencies are not meaningful; only bar ordering is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.session import SearchSession

from ..core.config import ApproxSetting, CrescentHardwareConfig, valid_top_heights
from ..core.split_tree import SplitTree
from ..kdtree.build import NODE_BYTES, KdTree
from ..kdtree.stats import TraversalStats
from ..memsim.dram import DramModel
from ..memsim.energy import EnergyBreakdown
from .accelerator import NetworkResult, NetworkSpec, PointCloudAccelerator
from .pe import PIPELINE_DEPTH
from .search_engine import INDEX_BYTES, QUERY_BYTES, SearchEngineResult
from ..core.approx_search import SearchReport

__all__ = [
    "ExhaustiveSplitSearchEngine",
    "make_mesorasi",
    "GpuCoefficients",
    "GpuModel",
    "gpu_network_result",
    "tigris_gpu_network_result",
]


def _staggered_scan_cost(
    num_nodes: int, num_pes: int, num_banks: int
) -> Tuple[int, int]:
    """Cycles and conflicted accesses for one staggered exhaustive scan.

    ``num_pes`` PEs walk the ``num_nodes`` buffer slots concurrently at
    offsets ``i * (num_nodes // num_pes)``; each cycle the group serializes
    to the worst per-bank occupancy (stall-and-retry, no elision).
    """
    if num_nodes == 0 or num_pes == 0:
        return 0, 0
    steps = np.arange(num_nodes)[:, None]
    offsets = (np.arange(num_pes) * max(1, num_nodes // num_pes))[None, :]
    slots = (steps + offsets) % num_nodes
    banks = slots % num_banks
    counts = (banks[:, :, None] == np.arange(num_banks)[None, None, :]).sum(axis=1)
    cycles = int(counts.max(axis=1).sum())
    distinct = (counts > 0).sum(axis=1)
    conflicts = int((num_pes - distinct).sum())
    return cycles, conflicts


class ExhaustiveSplitSearchEngine:
    """Tigris/QuickNN-style neighbor search.

    Splits the tree so each sub-tree fits the tree buffer (choosing the
    *smallest* feasible top height — prior work splits only as much as
    capacity forces), routes queries by top-tree descent, then **scans
    every node of the sub-tree** per query.  PEs pick up queries from the
    queue asynchronously, so their scan positions through the tree buffer
    are staggered; concurrent reads of different slots conflict on banks
    and serialize (the baseline has no elision).  Together with the extra
    work itself — every sub-tree node distance-tested by every query —
    this is the trade Crescent rejects (Sec. 3.4).

    ``reload_on_full_queue=True`` reproduces the prior accelerators' DRAM
    behaviour: a sub-tree is re-fetched for every query-buffer batch.
    ``False`` gives them Crescent's staging (used for ablation).
    """

    def __init__(
        self,
        hw: CrescentHardwareConfig = CrescentHardwareConfig(),
        reload_on_full_queue: bool = True,
    ):
        self.hw = hw
        self.reload_on_full_queue = reload_on_full_queue
        self.query_buffer_capacity = max(1, hw.query_buffer.size_bytes // QUERY_BYTES)

    def _split_height(self, tree: KdTree) -> int:
        lo, hi = valid_top_heights(tree.height, self.hw.tree_buffer_nodes)
        if lo > hi:
            # Tree buffer can't hold any sub-tree split; fall back to the
            # tallest possible split (prior work would recurse here).
            return max(tree.height - 1, 0)
        return min(lo, tree.height - 1)

    def run(
        self,
        tree: KdTree,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,  # ignored: prior work has no approximation knobs
    ) -> Tuple[np.ndarray, np.ndarray, SearchEngineResult]:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        m = len(queries)
        ht = self._split_height(tree)
        split = SplitTree(tree, ht)
        report = SearchReport()
        report.traversal.queries = m

        assigned = split.route_queries(queries)
        uniq_roots, inverse = np.unique(assigned, return_inverse=True)
        report.queue_occupancy = {
            int(r): int((inverse == i).sum()) for i, r in enumerate(uniq_roots)
        }
        report.subtrees_loaded = len(uniq_roots)
        report.top_tree_visits = m * ht
        report.traversal.nodes_visited += m * ht

        r2 = radius * radius
        indices = np.zeros((m, max_neighbors), dtype=np.int64)
        counts = np.zeros(m, dtype=np.int64)
        compute_cycles = 0
        dram = DramModel(self.hw.dram)
        dram.stream(m * QUERY_BYTES)
        dram.stream(split.top_tree_bytes())

        # Top-tree hits (points streamed past during descent are tested).
        top_hits = [[] for _ in range(m)]
        if ht > 0:
            current = np.full(m, tree.root, dtype=np.int64)
            for _ in range(ht):
                pts = tree.points[tree.point_id[current]]
                d2 = ((queries - pts) ** 2).sum(axis=1)
                for qi in np.nonzero(d2 <= r2)[0]:
                    top_hits[qi].append(int(tree.point_id[current[qi]]))
                rows = np.arange(m)
                dims = tree.split_dim[current]
                go_left = queries[rows, dims] <= pts[rows, dims]
                nxt = np.where(go_left, tree.left[current], tree.right[current])
                missing = nxt < 0
                if missing.any():
                    alt = np.where(go_left, tree.right[current], tree.left[current])
                    nxt = np.where(missing, alt, nxt)
                    nxt = np.where(nxt < 0, current, nxt)
                current = nxt.astype(np.int64)
            compute_cycles += (m // self.hw.num_pes + 1) * ht

        for pos, root in enumerate(uniq_roots):
            q_ids = np.nonzero(inverse == pos)[0]
            nodes = split.subtree_nodes(int(root))
            node_points = tree.points[tree.point_id[nodes]]
            sub_queries = queries[q_ids]
            # (Q, S) exhaustive distance scan.
            d2 = ((sub_queries[:, None, :] - node_points[None, :, :]) ** 2).sum(axis=2)
            within = d2 <= r2
            for local, qi in enumerate(q_ids):
                hits = list(top_hits[qi])
                scan_hits = nodes[within[local]]
                hits.extend(int(tree.point_id[n]) for n in scan_hits)
                counts[qi] = min(len(hits), max_neighbors)
                if not hits:
                    nearest = nodes[int(np.argmin(d2[local]))]
                    hits = [int(tree.point_id[nearest])]
                row = hits[:max_neighbors]
                row = row + [row[0]] * (max_neighbors - len(row))
                indices[qi] = row
            visits = len(q_ids) * len(nodes)
            report.traversal.nodes_visited += visits
            report.traversal.neighbors_found += int(counts[q_ids].sum())
            # Each PE handles one query, scanning one node per cycle.  PE
            # scan positions are staggered (queries start asynchronously),
            # so each cycle the active PEs read different slots and pay the
            # bank serialization of the worst-hit bank.
            rounds = -(-len(q_ids) // self.hw.num_pes)
            scan_cycles, scan_conflicts = _staggered_scan_cost(
                len(nodes),
                min(self.hw.num_pes, len(q_ids)),
                self.hw.tree_buffer.num_banks,
            )
            compute_cycles += rounds * scan_cycles + PIPELINE_DEPTH - 1
            report.tree_sram.accesses += visits
            report.tree_sram.reads_served += visits
            report.tree_sram.conflicted += rounds * scan_conflicts
            report.stall_cycles += rounds * (scan_cycles - len(nodes))
            # DRAM: reload per query-buffer batch, or load once if staging.
            if self.reload_on_full_queue:
                loads = -(-len(q_ids) // self.query_buffer_capacity)
            else:
                loads = 1
                dram.stream(len(q_ids) * QUERY_BYTES)  # staging writeback
            for _ in range(loads):
                dram.stream(split.subtree_bytes(int(root)))
        dram.stream(m * max_neighbors * INDEX_BYTES)

        energy = EnergyBreakdown()
        em = self.hw.energy
        energy.add("dram_streaming", em.dram_streaming(dram.usage.streaming_bytes))
        energy.add("dram_random", em.dram_random(dram.usage.random_bytes))
        energy.add(
            "sram_search",
            em.sram(report.tree_sram.reads_served * NODE_BYTES + m * QUERY_BYTES),
        )
        energy.add("search_datapath", em.distances(report.traversal.nodes_visited))

        cycles = max(compute_cycles, dram.usage.cycles)
        return indices, counts, SearchEngineResult(
            cycles=cycles,
            compute_cycles=compute_cycles,
            dram_cycles=dram.usage.cycles,
            report=report,
            dram=dram.usage,
            energy=energy,
        )


def make_mesorasi(
    hw: CrescentHardwareConfig = CrescentHardwareConfig(),
    session: Optional["SearchSession"] = None,
) -> PointCloudAccelerator:
    """The Mesorasi baseline: Tigris search + stall-mode aggregation.

    ``session`` optionally pools K-d trees with other accelerators in a
    sweep (the search engine itself lays out its own splits).
    """
    return PointCloudAccelerator(
        hw=hw,
        search_engine=ExhaustiveSplitSearchEngine(hw),
        elide_aggregation=False,
        session=session,
    )


# ----------------------------------------------------------------------
# Mobile GPU analytic model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GpuCoefficients:
    """Jetson-TX2-class coefficients, relative to the accelerator's units.

    Calibration targets (paper Sec. 7.2): GPU ≈ 38× and Tigris+GPU ≈ 25×
    Mesorasi's energy; both are substantially slower end-to-end.  The
    coefficients below encode the standard reasons: ~20× worse MAC energy
    (general-purpose datapath + SIMT overheads vs a 16 nm systolic array),
    divergence-limited tree traversal, and random (non-streaming) DRAM for
    gather-heavy stages.
    """

    cycles_per_visit: float = 4.0  # SIMT divergence on tree traversal
    macs_per_cycle: float = 64.0  # effective, memory-bound shared MLP
    e_mac: float = 10.0  # pJ per MAC (vs 0.5 on the accelerator)
    e_visit: float = 30.0  # pJ per traversal step incl. cache traffic
    dram_bytes_per_visit: float = 24.0  # poor locality in neighbor search
    dram_bytes_per_mac: float = 0.25  # activation/weight re-fetch


@dataclass
class GpuModel:
    coeffs: GpuCoefficients = field(default_factory=GpuCoefficients)
    hw: CrescentHardwareConfig = field(default_factory=CrescentHardwareConfig)

    def feature_computation(self, macs: int) -> Tuple[int, EnergyBreakdown]:
        cycles = int(macs / self.coeffs.macs_per_cycle)
        energy = EnergyBreakdown()
        energy.add("gpu_mlp", self.coeffs.e_mac * macs)
        energy.add(
            "dram_random",
            self.hw.energy.dram_random(self.coeffs.dram_bytes_per_mac * macs),
        )
        return cycles, energy

    def neighbor_search(self, visits: int) -> Tuple[int, EnergyBreakdown]:
        cycles = int(visits * self.coeffs.cycles_per_visit)
        energy = EnergyBreakdown()
        energy.add("gpu_search", self.coeffs.e_visit * visits)
        energy.add(
            "dram_random",
            self.hw.energy.dram_random(self.coeffs.dram_bytes_per_visit * visits),
        )
        return cycles, energy


def _workload_counters(result: NetworkResult) -> Tuple[int, int]:
    """Extract (search visits, MLP MACs) from an accelerator run."""
    visits = result.nodes_visited
    macs = 0
    for layer in result.layers:
        # Recover MACs from the energy breakdown (mlp_macs = 0.5 pJ/MAC).
        macs += int(layer.energy.components.get("mlp_macs", 0.0) / 0.5)
    return visits, macs


def gpu_network_result(reference: NetworkResult, gpu: Optional[GpuModel] = None) -> Tuple[int, float]:
    """(cycles, energy pJ) of running the reference workload fully on GPU.

    ``reference`` should be an exact-search accelerator run (it supplies
    the workload counters: exact node visits and MLP MACs).
    """
    gpu = gpu or GpuModel()
    visits, macs = _workload_counters(reference)
    sc, se = gpu.neighbor_search(visits)
    fc, fe = gpu.feature_computation(macs)
    return sc + fc, se.total + fe.total


def tigris_gpu_network_result(
    mesorasi_result: NetworkResult, gpu: Optional[GpuModel] = None
) -> Tuple[int, float]:
    """(cycles, energy pJ) of Tigris search + GPU feature computation."""
    gpu = gpu or GpuModel()
    _, macs = _workload_counters(mesorasi_result)
    fc, fe = gpu.feature_computation(macs)
    search_cycles = mesorasi_result.search_cycles
    search_energy = sum(
        l.search.energy.total for l in mesorasi_result.layers
    )
    return search_cycles + fc, search_energy + fe.total
