"""The Crescent neighbor search engine (paper Sec. 3.2, Fig. 7).

Combines the functional approximate search of
:mod:`repro.core.approx_search` with cycle and energy accounting:

* **Phase 1 (top tree)** — queries stream through the PEs in groups of
  ``num_pes``, descending level-synchronously.  Fetches of the *same* node
  by several PEs are broadcast (one bank read serves all ports); fetches of
  different nodes in the same bank stall, since elision is not applied in
  the top-tree phase (a dropped fetch would leave the query unrouted).
* **Phase 2 (sub-trees)** — the lockstep simulation from the core package
  provides per-sub-tree visit cycles and stalls; the five-stage-PE timing
  contract (verified in :mod:`repro.accel.pe`) converts them to cycles.
* **DRAM** — every transfer is a streaming DMA by construction of the
  split-tree layout: queries in, top tree in, staged queries out/in, each
  needed sub-tree in exactly once, neighbor indices out.  Double-buffering
  overlaps DMA with compute, so phase time is ``max(compute, dma)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.approx_search import SearchReport, approximate_ball_query
from ..core.bank_conflict import TreeBufferBanking
from ..core.config import ApproxSetting, CrescentHardwareConfig
from ..core.split_tree import SplitTree
from ..kdtree.build import NODE_BYTES, KdTree
from ..memsim.dram import DramModel, DramUsage
from ..memsim.energy import EnergyBreakdown
from .pe import PIPELINE_DEPTH, FiveStagePipeline

__all__ = ["SearchEngineResult", "NeighborSearchEngine", "QUERY_BYTES", "INDEX_BYTES"]

QUERY_BYTES = 16  # x, y, z (float32) + query id
INDEX_BYTES = 4  # one neighbor index


@dataclass
class SearchEngineResult:
    """Timing, memory, and energy outcome of one search batch."""

    cycles: int
    compute_cycles: int
    dram_cycles: int
    report: SearchReport = field(default_factory=SearchReport)
    dram: DramUsage = field(default_factory=DramUsage)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    top_phase_cycles: int = 0
    sub_phase_cycles: int = 0


class NeighborSearchEngine:
    """Batch-level model of the Crescent search engine."""

    def __init__(self, hw: CrescentHardwareConfig = CrescentHardwareConfig()):
        self.hw = hw
        self.banking = TreeBufferBanking(num_banks=hw.tree_buffer.num_banks)

    # ------------------------------------------------------------------
    def _top_phase(
        self, tree: KdTree, queries: np.ndarray, top_height: int
    ) -> Tuple[int, int]:
        """Cycles and stalls of the level-synchronous top-tree descent."""
        if top_height == 0:
            return 0, 0
        num_pes = self.hw.num_pes
        m = len(queries)
        total_cycles = 0
        total_stalls = 0
        for start in range(0, m, num_pes):
            group = queries[start : start + num_pes]
            current = np.full(len(group), tree.root, dtype=np.int64)
            for _ in range(top_height):
                # Same node ⇒ broadcast; same bank, different node ⇒ stall.
                uniq_nodes = np.unique(current)
                banks = self.banking.bank_of_slot(uniq_nodes)
                occupancy = np.bincount(banks, minlength=self.banking.num_banks)
                level_cycles = int(occupancy.max()) if len(uniq_nodes) else 1
                total_cycles += level_cycles
                total_stalls += level_cycles - 1
                rows = np.arange(len(group))
                pts = tree.points[tree.point_id[current]]
                dims = tree.split_dim[current]
                go_left = group[rows, dims] <= pts[rows, dims]
                nxt = np.where(go_left, tree.left[current], tree.right[current])
                missing = nxt < 0
                if missing.any():
                    alt = np.where(go_left, tree.right[current], tree.left[current])
                    nxt = np.where(missing, alt, nxt)
                    nxt = np.where(nxt < 0, current, nxt)
                current = nxt.astype(np.int64)
            total_cycles += PIPELINE_DEPTH - 1  # fill/drain per group
        return total_cycles, total_stalls

    # ------------------------------------------------------------------
    def run(
        self,
        tree: KdTree,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,
    ) -> Tuple[np.ndarray, np.ndarray, SearchEngineResult]:
        """Search ``queries`` and account cycles/energy for the whole batch."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        setting = setting.scaled_to(tree.height)
        hw = self.hw
        indices, counts, report = approximate_ball_query(
            tree,
            queries,
            radius,
            max_neighbors,
            setting,
            banking=self.banking,
            num_pes=hw.num_pes,
            simulate_conflicts=True,
        )
        m = len(queries)

        # ---------------- compute cycles ----------------
        top_cycles, top_stalls = self._top_phase(tree, queries, setting.top_height)
        # Lockstep cycles count one visit slot per PE-cycle including
        # arbitration; add the pipeline fill per sub-tree batch.
        sub_cycles = report.lockstep_cycles + report.subtrees_loaded * (
            PIPELINE_DEPTH - 1
        )
        compute_cycles = top_cycles + sub_cycles

        # ---------------- DRAM (all streaming) ----------------
        dram = DramModel(hw.dram)
        split = SplitTree(tree, setting.top_height)
        dram.stream(m * QUERY_BYTES)  # queries in (phase 1)
        dram.stream(split.top_tree_bytes())  # top tree in
        if setting.top_height > 0:
            dram.stream(m * QUERY_BYTES)  # staged queries out
            dram.stream(m * QUERY_BYTES)  # staged queries back in (phase 2)
        for root, occupancy in report.queue_occupancy.items():
            if occupancy > 0:
                dram.stream(split.subtree_bytes(int(root)))
        dram.stream(m * max_neighbors * INDEX_BYTES)  # index matrix out

        dram_cycles = dram.usage.cycles
        cycles = max(compute_cycles, dram_cycles)  # double-buffered overlap

        # ---------------- energy ----------------
        energy = EnergyBreakdown()
        em = hw.energy
        energy.add("dram_streaming", em.dram_streaming(dram.usage.streaming_bytes))
        energy.add("dram_random", em.dram_random(dram.usage.random_bytes))
        tree_reads = report.tree_sram.reads_served + report.top_tree_visits
        energy.add("sram_search", em.sram(tree_reads * NODE_BYTES))
        energy.add("sram_search", em.sram(m * QUERY_BYTES))  # query buffer reads
        visits = report.traversal.nodes_visited
        energy.add("search_datapath", em.distances(visits))
        energy.add(
            "search_datapath",
            em.stack_ops(report.traversal.stack_pushes + report.traversal.stack_pops),
        )

        result = SearchEngineResult(
            cycles=cycles,
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            report=report,
            dram=dram.usage,
            energy=energy,
            top_phase_cycles=top_cycles,
            sub_phase_cycles=sub_cycles,
        )
        return indices, counts, result
