"""The Crescent neighbor search engine (paper Sec. 3.2, Fig. 7).

Combines the functional approximate search of
:mod:`repro.core.approx_search` with cycle and energy accounting:

* **Phase 1 (top tree)** — queries stream through the PEs in groups of
  ``num_pes``, descending level-synchronously.  Fetches of the *same* node
  by several PEs are broadcast (one bank read serves all ports); fetches of
  different nodes in the same bank stall, since elision is not applied in
  the top-tree phase (a dropped fetch would leave the query unrouted).
* **Phase 2 (sub-trees)** — the lockstep simulation from the core package
  provides per-sub-tree visit cycles and stalls; the five-stage-PE timing
  contract (verified in :mod:`repro.accel.pe`) converts them to cycles.
* **DRAM** — every transfer is a streaming DMA by construction of the
  split-tree layout: queries in, top tree in, staged queries out/in, each
  needed sub-tree in exactly once, neighbor indices out.  Double-buffering
  overlaps DMA with compute, so phase time is ``max(compute, dma)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.session import SearchSession

from ..core.approx_search import SearchReport, approximate_ball_query
from ..core.bank_conflict import TreeBufferBanking
from ..core.config import ApproxSetting, CrescentHardwareConfig
from ..core.split_tree import SplitTree
from ..kdtree.build import NODE_BYTES, KdTree
from ..memsim.dram import DramModel, DramUsage
from ..memsim.energy import EnergyBreakdown
from ..runtime.topphase import vectorized_top_phase
from .pe import PIPELINE_DEPTH, FiveStagePipeline

__all__ = ["SearchEngineResult", "NeighborSearchEngine", "QUERY_BYTES", "INDEX_BYTES"]

QUERY_BYTES = 16  # x, y, z (float32) + query id
INDEX_BYTES = 4  # one neighbor index


@dataclass
class SearchEngineResult:
    """Timing, memory, and energy outcome of one search batch."""

    cycles: int
    compute_cycles: int
    dram_cycles: int
    report: SearchReport = field(default_factory=SearchReport)
    dram: DramUsage = field(default_factory=DramUsage)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    top_phase_cycles: int = 0
    sub_phase_cycles: int = 0
    top_phase_stalls: int = 0


class NeighborSearchEngine:
    """Batch-level model of the Crescent search engine.

    ``session`` (optional) pools K-d split-tree layouts across calls —
    a sweep that reruns the same tree under many settings lays the memory
    image out once per ``h_t``; see
    :meth:`repro.runtime.SearchSession.split_tree_for`.
    """

    def __init__(
        self,
        hw: CrescentHardwareConfig = CrescentHardwareConfig(),
        session: Optional["SearchSession"] = None,
    ):
        self.hw = hw
        self.banking = TreeBufferBanking(num_banks=hw.tree_buffer.num_banks)
        self.session = session

    def _split_for(self, tree: KdTree, top_height: int) -> SplitTree:
        if self.session is not None:
            return self.session.split_tree_for(tree, top_height)
        return SplitTree(tree, top_height)

    # ------------------------------------------------------------------
    def _top_phase(
        self, split: SplitTree, queries: np.ndarray
    ) -> Tuple[int, int]:
        """Cycles and stalls of the level-synchronous top-tree descent.

        Fetches go through the *top-tree buffer slot* (the node's position
        in the streamed top-tree image) — the same record-interleaved
        layout convention the sub-tree phase banks on, not the global node
        id.  Stall accounting is per losing PE: every PE whose node is not
        the bank's first-served request waits out the serialization, so a
        bank serving ``c`` distinct nodes for ``p`` PEs charges ``p``
        minus the first-served node's PE count stalls (PEs fetching the
        same node share one broadcast read and are served together).  A
        query whose branch runs out of children early parks: it issues no
        further fetches, matching the functional phase-1 accounting — and
        a group whose queries all park before issuing any fetch is not
        charged the pipeline fill/drain.  All groups advance together
        through :func:`repro.runtime.vectorized_top_phase`; the per-group
        loop survives as :func:`repro.runtime.reference_top_phase`,
        pinned identical by the randomized equivalence suite.
        """
        return vectorized_top_phase(
            split,
            queries,
            self.hw.num_pes,
            self.banking,
            fill_cycles=PIPELINE_DEPTH - 1,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        tree: KdTree,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,
    ) -> Tuple[np.ndarray, np.ndarray, SearchEngineResult]:
        """Search ``queries`` and account cycles/energy for the whole batch."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        setting = setting.scaled_to(tree.height)
        hw = self.hw
        split = self._split_for(tree, setting.top_height)
        indices, counts, report = approximate_ball_query(
            tree,
            queries,
            radius,
            max_neighbors,
            setting,
            banking=self.banking,
            num_pes=hw.num_pes,
            simulate_conflicts=True,
            split=split,
        )
        m = len(queries)

        # ---------------- compute cycles ----------------
        top_cycles, top_stalls = self._top_phase(split, queries)
        # Lockstep cycles count one visit slot per PE-cycle including
        # arbitration; add the pipeline fill per sub-tree batch.
        sub_cycles = report.lockstep_cycles + report.subtrees_loaded * (
            PIPELINE_DEPTH - 1
        )
        compute_cycles = top_cycles + sub_cycles

        # ---------------- DRAM (all streaming) ----------------
        dram = DramModel(hw.dram)
        dram.stream(m * QUERY_BYTES)  # queries in (phase 1)
        dram.stream(split.top_tree_bytes())  # top tree in
        if setting.top_height > 0:
            dram.stream(m * QUERY_BYTES)  # staged queries out
            dram.stream(m * QUERY_BYTES)  # staged queries back in (phase 2)
        for root, occupancy in report.queue_occupancy.items():
            if occupancy > 0:
                dram.stream(split.subtree_bytes(int(root)))
        dram.stream(m * max_neighbors * INDEX_BYTES)  # index matrix out

        dram_cycles = dram.usage.cycles
        cycles = max(compute_cycles, dram_cycles)  # double-buffered overlap

        # ---------------- energy ----------------
        energy = EnergyBreakdown()
        em = hw.energy
        energy.add("dram_streaming", em.dram_streaming(dram.usage.streaming_bytes))
        energy.add("dram_random", em.dram_random(dram.usage.random_bytes))
        tree_reads = report.tree_sram.reads_served + report.top_tree_visits
        energy.add("sram_search", em.sram(tree_reads * NODE_BYTES))
        energy.add("sram_search", em.sram(m * QUERY_BYTES))  # query buffer reads
        visits = report.traversal.nodes_visited
        energy.add("search_datapath", em.distances(visits))
        energy.add(
            "search_datapath",
            em.stack_ops(report.traversal.stack_pushes + report.traversal.stack_pops),
        )

        result = SearchEngineResult(
            cycles=cycles,
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            report=report,
            dram=dram.usage,
            energy=energy,
            top_phase_cycles=top_cycles,
            sub_phase_cycles=sub_cycles,
            top_phase_stalls=top_stalls,
        )
        return indices, counts, result
