"""Crescent (ISCA 2022) reproduction: taming memory irregularities for
deep point cloud analytics.

Subpackages
-----------
- :mod:`repro.geometry` — point clouds and synthetic datasets
- :mod:`repro.kdtree`   — K-d tree substrate
- :mod:`repro.memsim`   — DRAM/SRAM/cache/energy models
- :mod:`repro.core`     — the paper's contribution (split-tree search,
  bank-conflict elision, approximation pipeline)
- :mod:`repro.runtime`  — batched query engine, memoizing search
  sessions, multiprocessing sweep fan-out
- :mod:`repro.accel`    — cycle-level accelerator simulator + baselines
- :mod:`repro.nn`       — NumPy autograd and layers
- :mod:`repro.models`   — PointNet++ (c/s), DensePoint, F-PointNet
- :mod:`repro.training` — approximation-aware training
- :mod:`repro.analysis` — experiment drivers behind every paper figure
"""

__version__ = "1.0.0"

__all__ = [
    "geometry",
    "kdtree",
    "memsim",
    "core",
    "runtime",
    "accel",
    "nn",
    "models",
    "training",
    "analysis",
]
