"""Loss functions."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["softmax_cross_entropy", "log_softmax", "mse_loss", "huber_loss"]


def log_softmax(logits: Tensor) -> Tensor:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - Tensor(logits.data.max(axis=-1, keepdims=True))
    return shifted - shifted.exp().sum(axis=-1, keepdims=True).log()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits (..., C)`` and integer labels.

    Works for both classification ``(B, C)`` and per-point segmentation
    ``(B, N, C)`` shapes; labels must have the logits' leading shape.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != logits.shape[:-1]:
        raise ValueError(
            f"labels shape {labels.shape} must match logits leading shape "
            f"{logits.shape[:-1]}"
        )
    logp = log_softmax(logits)
    num_classes = logits.shape[-1]
    onehot = np.eye(num_classes)[labels.reshape(-1)].reshape(*labels.shape, num_classes)
    picked = (logp * Tensor(onehot)).sum(axis=-1)
    return -picked.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def huber_loss(pred: Tensor, target: np.ndarray, delta: float = 1.0) -> Tensor:
    """Smooth-L1 loss, the standard choice for box regression heads.

    Implemented with differentiable primitives: quadratic inside ``delta``,
    linear outside, blended by a constant mask (the mask depends only on
    the forward values, matching the piecewise definition's gradient).
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    target = np.asarray(target, dtype=np.float64)
    diff = pred - Tensor(target)
    abs_diff = np.abs(pred.data - target)
    quadratic_mask = (abs_diff <= delta).astype(np.float64)
    sign = np.sign(pred.data - target)
    quad = diff * diff * 0.5
    lin = diff * Tensor(sign * delta) - 0.5 * delta * delta
    return (quad * Tensor(quadratic_mask) + lin * Tensor(1.0 - quadratic_mask)).mean()
