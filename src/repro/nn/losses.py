"""Loss functions.

Every loss accepts ``reduction="mean"`` (default: one scalar over all
elements, the historical behavior) or ``reduction="per_sample"``: the
leading axis is treated as a stacked mini-batch and the loss is averaged
over everything *except* that axis, yielding a ``(B,)`` tensor whose row
``b`` equals the scalar loss of sample ``b`` alone, bit for bit.  That
equivalence is what lets the mini-batched trainer report per-sample losses
identical to the per-sample loop.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["softmax_cross_entropy", "log_softmax", "mse_loss", "huber_loss"]


def _reduce(values: Tensor, reduction: str) -> Tensor:
    """Apply the reduction contract described in the module docstring."""
    if reduction == "mean":
        return values.mean()
    if reduction == "per_sample":
        if values.ndim == 0:
            raise ValueError("per_sample reduction requires a leading sample axis")
        return values.reshape(values.shape[0], -1).mean(axis=-1)
    raise ValueError(f"unknown reduction {reduction!r}")


def log_softmax(logits: Tensor) -> Tensor:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - Tensor(logits.data.max(axis=-1, keepdims=True))
    return shifted - shifted.exp().sum(axis=-1, keepdims=True).log()


def softmax_cross_entropy(
    logits: Tensor, labels: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Cross-entropy between ``logits (..., C)`` and integer labels.

    Works for both classification ``(B, C)`` and per-point segmentation
    ``(B, N, C)`` shapes; labels must have the logits' leading shape.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != logits.shape[:-1]:
        raise ValueError(
            f"labels shape {labels.shape} must match logits leading shape "
            f"{logits.shape[:-1]}"
        )
    logp = log_softmax(logits)
    num_classes = logits.shape[-1]
    onehot = np.eye(num_classes)[labels.reshape(-1)].reshape(*labels.shape, num_classes)
    picked = (logp * Tensor(onehot)).sum(axis=-1)
    return -_reduce(picked, reduction)


def mse_loss(pred: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return _reduce(diff * diff, reduction)


def huber_loss(
    pred: Tensor, target: np.ndarray, delta: float = 1.0, reduction: str = "mean"
) -> Tensor:
    """Smooth-L1 loss, the standard choice for box regression heads.

    Implemented with differentiable primitives: quadratic inside ``delta``,
    linear outside, blended by a constant mask (the mask depends only on
    the forward values, matching the piecewise definition's gradient).
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    target = np.asarray(target, dtype=np.float64)
    diff = pred - Tensor(target)
    abs_diff = np.abs(pred.data - target)
    quadratic_mask = (abs_diff <= delta).astype(np.float64)
    sign = np.sign(pred.data - target)
    quad = diff * diff * 0.5
    lin = diff * Tensor(sign * delta) - 0.5 * delta * delta
    return _reduce(quad * Tensor(quadratic_mask) + lin * Tensor(1.0 - quadratic_mask), reduction)
