"""The closure-chained reverse-mode engine, retained as behavioral reference.

This is the original ``nn/tensor.py`` autograd: each op records its parent
tensors and a closure that accumulates gradients into them, and ``backward``
fires the closures in reverse topological order.  It walks one op at a time
by construction, which is exactly why it was replaced by the flat-tape
engine in ``nn.tape`` / ``nn.tensor`` — and exactly why it stays: like
``kdtree.exact`` and ``runtime.reference_top_phase``, it is the per-step
ground truth the equivalence suite (``tests/test_nn_tape.py``) pins the
tape engine's gradients against, bit for bit.

Frozen under repro-lint's ``reference-freeze`` rule: this module must not
import the tape or vectorized modules it exists to check.  Do not vectorize
or "optimize" it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["ReferenceTensor", "reference_no_grad"]

Arrayish = Union[np.ndarray, float, int, "ReferenceTensor"]

_grad_enabled = True


class reference_no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "reference_no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (the reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class ReferenceTensor:
    """A differentiable array (closure-chained reference engine)."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")
    __array_priority__ = 100  # numpy defers binary ops to ReferenceTensor

    def __init__(self, data: Arrayish, requires_grad: bool = False):
        if isinstance(data, ReferenceTensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[ReferenceTensor, ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["ReferenceTensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "ReferenceTensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = ReferenceTensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        # Topological order via DFS.
        order: List[ReferenceTensor] = []
        seen = set()
        stack: List[Tuple[ReferenceTensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
        # Graph release: a finished pass must not retain the op graph.  The
        # closures above close over parent tensors and forward intermediates,
        # so dropping them here mirrors the tape engine freeing its entries.
        for node in order:
            node._parents = ()
            node._backward_fn = None

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "ReferenceTensor":
        return ReferenceTensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (
            f"ReferenceTensor(shape={self.data.shape}, "
            f"requires_grad={self.requires_grad})"
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: Arrayish) -> "ReferenceTensor":
        return value if isinstance(value, ReferenceTensor) else ReferenceTensor(value)

    def __add__(self, other: Arrayish) -> "ReferenceTensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return ReferenceTensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "ReferenceTensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return ReferenceTensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Arrayish) -> "ReferenceTensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Arrayish) -> "ReferenceTensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Arrayish) -> "ReferenceTensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return ReferenceTensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "ReferenceTensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return ReferenceTensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "ReferenceTensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "ReferenceTensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return ReferenceTensor._make(out_data, (self,), backward)

    def __matmul__(self, other: Arrayish) -> "ReferenceTensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return ReferenceTensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "ReferenceTensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return ReferenceTensor._make(out_data, (self,), backward)

    def log(self) -> "ReferenceTensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return ReferenceTensor._make(np.log(self.data), (self,), backward)

    def relu(self) -> "ReferenceTensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return ReferenceTensor._make(self.data * mask, (self,), backward)

    def tanh(self) -> "ReferenceTensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1 - out_data**2))

        return ReferenceTensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "ReferenceTensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1 - out_data))

        return ReferenceTensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "ReferenceTensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return ReferenceTensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "ReferenceTensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "ReferenceTensor":
        """Max-reduce along ``axis``; gradient flows to the (first) argmax."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        # Route gradient only to the first maximal element along the axis.
        first = np.cumsum(mask, axis=axis) == 1
        mask = mask & first

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)

        return ReferenceTensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape / indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "ReferenceTensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return ReferenceTensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "ReferenceTensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).transpose(inverse))

        return ReferenceTensor._make(out_data, (self,), backward)

    def take(self, indices: np.ndarray, axis: int = 0) -> "ReferenceTensor":
        """Gather rows: the differentiable face of neighbor aggregation.

        ``indices`` may be any integer array; the output shape is
        ``indices.shape + self.shape[1:]`` for ``axis=0``.  The backward
        pass scatter-adds, so repeated indices (replicated neighbors, as
        bank-conflict elision produces) accumulate gradient correctly.
        """
        if axis != 0:
            raise NotImplementedError("take supports axis=0 only")
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), np.asarray(grad).reshape(-1, *self.data.shape[1:]))
            self._accumulate(full)

        return ReferenceTensor._make(out_data, (self,), backward)

    def concat(self, others: Sequence["ReferenceTensor"], axis: int = -1) -> "ReferenceTensor":
        """Concatenate ``[self, *others]`` along ``axis``."""
        tensors = [self] + [self._coerce(o) for o in others]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * g.ndim
                    slicer[axis] = slice(start, stop)
                    t._accumulate(g[tuple(slicer)])

        return ReferenceTensor._make(out_data, tuple(tensors), backward)
