"""Minimal deep-learning framework over NumPy (autograd, layers, optimizers)."""

from .tensor import Tensor, no_grad
from .tape import reset_tape, tape_length
from .reference import ReferenceTensor, reference_no_grad
from .gradcheck import gradcheck
from .module import Module, Parameter
from .layers import MLP, BatchNorm, Dropout, Linear, ReLU, Sequential
from .losses import huber_loss, log_softmax, mse_loss, softmax_cross_entropy
from .optim import Adam, SGD
from .init import kaiming_uniform, xavier_uniform, zeros

__all__ = [
    "Tensor",
    "no_grad",
    "tape_length",
    "reset_tape",
    "ReferenceTensor",
    "reference_no_grad",
    "gradcheck",
    "Module",
    "Parameter",
    "MLP",
    "BatchNorm",
    "Dropout",
    "Linear",
    "ReLU",
    "Sequential",
    "huber_loss",
    "log_softmax",
    "mse_loss",
    "softmax_cross_entropy",
    "Adam",
    "SGD",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros",
]
