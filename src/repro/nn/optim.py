"""Optimizers: SGD with momentum, Adam."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam"]


class Optimizer:
    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.b1
            m += (1 - self.b1) * grad
            v *= self.b2
            v += (1 - self.b2) * grad**2
            m_hat = m / (1 - self.b1**self._t)
            v_hat = v / (1 - self.b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
