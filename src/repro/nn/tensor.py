"""Tape-based reverse-mode automatic differentiation over NumPy.

The paper's training contribution (Sec. 5) needs gradients only through
the MLP stack — neighbor search and aggregation construct MLP inputs and
do not participate in gradient flow — so a compact autograd with dense
ops, gather, and max-reduction is sufficient to train every network in
the evaluation.

Design: every op is a *registered primitive* — the forward computes the
answer with plain NumPy and appends one entry to the flat module tape in
``nn.tape``; per-argnum VJP makers (registered at the bottom of this file
via ``tape.defvjp``) build the backward closures at record time.
``backward()`` replays the tape in reverse instead of walking a
closure-chained graph, and frees entries as it goes.  Broadcasting is
handled by un-broadcasting gradients back to the parent's shape.

The closure engine this replaced is frozen in ``nn.reference`` as
``ReferenceTensor``; ``tests/test_nn_tape.py`` pins this engine's
gradients bit-identically against it on randomized graphs covering every
primitive, broadcasting, gather, and max-reduction ties.  Because ops
here accept a stacked leading sample axis (see ``gather_rows``), one tape
replay covers a whole mini-batch.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from . import tape

__all__ = ["Tensor", "no_grad"]

Arrayish = Union[np.ndarray, float, int, "Tensor"]

_grad_enabled = True


class no_grad:
    """Context manager disabling tape recording (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


class Tensor:
    """A differentiable array."""

    __slots__ = ("data", "grad", "requires_grad", "_interior")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data: Arrayish, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: Optional[np.ndarray] = None
        # True iff this tensor was produced by a recorded primitive; leaves
        # (parameters, inputs) accumulate ``.grad`` directly during replay.
        self._interior = False

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        name: str,
        parents: Tuple["Tensor", ...],
        out_data: np.ndarray,
        **op_state,
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            out._interior = True
            tape.record(name, out, parents, **op_state)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = tape.unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        tape.backward_pass(self, grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: Arrayish) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op("add", (self, other), self.data + other.data)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._from_op("neg", (self,), -self.data)

    def __sub__(self, other: Arrayish) -> "Tensor":
        # IEEE-754 subtraction is addition of the negation, so this single
        # primitive is bit-identical to the reference's ``a + (-b)`` chain.
        other = self._coerce(other)
        return Tensor._from_op("sub", (self, other), self.data - other.data)

    def __rsub__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op("sub", (other, self), other.data - self.data)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op("mul", (self, other), self.data * other.data)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op("div", (self, other), self.data / other.data)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return Tensor._from_op(
            "pow", (self,), self.data**exponent, exponent=exponent
        )

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op("matmul", (self, other), self.data @ other.data)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return Tensor._from_op("exp", (self,), np.exp(self.data))

    def log(self) -> "Tensor":
        return Tensor._from_op("log", (self,), np.log(self.data))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._from_op("relu", (self,), self.data * mask, mask=mask)

    def tanh(self) -> "Tensor":
        return Tensor._from_op("tanh", (self,), np.tanh(self.data))

    def sigmoid(self) -> "Tensor":
        return Tensor._from_op("sigmoid", (self,), 1.0 / (1.0 + np.exp(-self.data)))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        return Tensor._from_op(
            "sum",
            (self,),
            self.data.sum(axis=axis, keepdims=keepdims),
            axis=axis,
            keepdims=keepdims,
        )

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max-reduce along ``axis``; gradient flows to the (first) argmax.

        The tie mask is built by scattering ``argmax`` (which picks the
        first maximum along the axis) instead of the reference engine's
        equality + cumsum sweep — same positions, two fewer full-array
        passes.  The backward stays ``mask * g`` so gradient bits (including
        signed zeros) match the reference exactly.
        """
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        first = np.argmax(self.data, axis=axis)
        mask = np.zeros(self.data.shape, dtype=bool)
        np.put_along_axis(mask, np.expand_dims(first, axis), True, axis=axis)
        return Tensor._from_op(
            "max", (self,), out_data, axis=axis, keepdims=keepdims, mask=mask
        )

    # ------------------------------------------------------------------
    # Shape / indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        return Tensor._from_op("reshape", (self,), self.data.reshape(*shape))

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        return Tensor._from_op(
            "transpose",
            (self,),
            self.data.transpose(axes_tuple),
            inverse=np.argsort(axes_tuple),
        )

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Gather rows: the differentiable face of neighbor aggregation.

        ``indices`` may be any integer array; the output shape is
        ``indices.shape + self.shape[1:]`` for ``axis=0``.  The backward
        pass scatter-adds, so repeated indices (replicated neighbors, as
        bank-conflict elision produces) accumulate gradient correctly.
        """
        if axis != 0:
            raise NotImplementedError("take supports axis=0 only")
        indices = np.asarray(indices, dtype=np.int64)
        return Tensor._from_op("take", (self,), self.data[indices], indices=indices)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Batched gather along the second-to-last axis.

        For ``self`` of shape ``(..., N, C)`` and integer ``indices`` of
        shape ``(..., M)`` (leading dims matching exactly), returns
        ``(..., M, C)`` — each batch row gathers its own rows.  The backward
        pass scatter-adds per batch row, bit-identical to looping ``take``
        over the leading axes.  This is the primitive that lets one tape
        entry cover a whole mini-batch of neighbor aggregations.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self.data.ndim < 2:
            raise ValueError("gather_rows needs at least 2 dims (rows, channels)")
        if indices.shape[:-1] != self.data.shape[:-2]:
            raise ValueError(
                f"leading dims mismatch: indices {indices.shape[:-1]} vs "
                f"data {self.data.shape[:-2]}"
            )
        out_data = np.take_along_axis(self.data, indices[..., None], axis=-2)
        return Tensor._from_op("gather_rows", (self,), out_data, indices=indices)

    def concat(self, others: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        """Concatenate ``[self, *others]`` along ``axis``."""
        tensors = tuple([self] + [self._coerce(o) for o in others])
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        return Tensor._from_op(
            "concat", tensors, out_data, axis=axis, offsets=offsets
        )


# ----------------------------------------------------------------------
# VJP registration — one maker per argnum; every expression matches the
# reference closure in nn.reference bit for bit.
# ----------------------------------------------------------------------
tape.defvjp(
    "add",
    lambda ans, a, b: lambda g: g,
    lambda ans, a, b: lambda g: g,
)
tape.defvjp("neg", lambda ans, a: lambda g: -g)
tape.defvjp(
    "sub",
    lambda ans, a, b: lambda g: g,
    lambda ans, a, b: lambda g: -g,
)
tape.defvjp(
    "mul",
    lambda ans, a, b: lambda g: g * b,
    lambda ans, a, b: lambda g: g * a,
)
tape.defvjp(
    "div",
    lambda ans, a, b: lambda g: g / b,
    lambda ans, a, b: lambda g: -g * a / (b**2),
)
tape.defvjp(
    "pow",
    lambda ans, a, exponent: lambda g: g * exponent * a ** (exponent - 1),
)
tape.defvjp(
    "matmul",
    lambda ans, a, b: lambda g: g @ np.swapaxes(b, -1, -2),
    lambda ans, a, b: lambda g: np.swapaxes(a, -1, -2) @ g,
)
tape.defvjp("exp", lambda ans, a: lambda g: g * ans)
tape.defvjp("log", lambda ans, a: lambda g: g / a)
tape.defvjp("relu", lambda ans, a, mask: lambda g: g * mask)
tape.defvjp("tanh", lambda ans, a: lambda g: g * (1 - ans**2))
tape.defvjp("sigmoid", lambda ans, a: lambda g: g * ans * (1 - ans))


def _sum_vjp(ans, a, axis, keepdims):
    shape, ndim = a.shape, a.ndim

    def vjp(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            for ax in sorted(x % ndim for x in axes):
                g = np.expand_dims(g, ax)
        return np.broadcast_to(g, shape)

    return vjp


tape.defvjp("sum", _sum_vjp)


def _max_vjp(ans, a, axis, keepdims, mask):
    def vjp(g):
        g = np.asarray(g)
        if not keepdims:
            g = np.expand_dims(g, axis)
        return mask * g

    return vjp


tape.defvjp("max", _max_vjp)

tape.defvjp("reshape", lambda ans, a: lambda g: np.asarray(g).reshape(a.shape))
tape.defvjp(
    "transpose",
    lambda ans, a, inverse: lambda g: np.asarray(g).transpose(inverse),
)


def _take_vjp(ans, a, indices):
    def vjp(g):
        full = np.zeros_like(a)
        np.add.at(full, indices.reshape(-1), np.asarray(g).reshape(-1, *a.shape[1:]))
        return full

    return vjp


tape.defvjp("take", _take_vjp)


def _gather_rows_vjp(ans, a, indices):
    def vjp(g):
        full = np.zeros_like(a)
        rows, channels = a.shape[-2], a.shape[-1]
        flat = full.reshape(-1, rows, channels)
        idx = indices.reshape(flat.shape[0], -1)
        batch = np.arange(flat.shape[0])[:, None]
        np.add.at(flat, (batch, idx), np.asarray(g).reshape(idx.shape + (channels,)))
        return full

    return vjp


tape.defvjp("gather_rows", _gather_rows_vjp)


def _concat_vjp(argnum, ans, *args, axis, offsets):
    start, stop = offsets[argnum], offsets[argnum + 1]

    def vjp(g):
        g = np.asarray(g)
        slicer = [slice(None)] * g.ndim
        slicer[axis] = slice(start, stop)
        return g[tuple(slicer)]

    return vjp


tape.defvjp_argnum("concat", _concat_vjp)
