"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter."""

    def __init__(self, data: np.ndarray):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for network components.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes;
    registration is automatic via ``__setattr__`` introspection at
    collection time (no metaclass magic — the collection walks ``__dict__``).
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{path}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={missing}, extra={extra}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].copy()
