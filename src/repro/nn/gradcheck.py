"""Finite-difference gradient verification for autograd primitives.

New primitives cannot land without VJP verification: every op registered
in ``nn.tensor`` has a ``gradcheck`` case in ``tests/test_nn_gradcheck.py``
(broadcasting shapes, gather indices, max-reduction ties included).  The
checker perturbs each input coordinate by ``±eps`` and compares the
central-difference quotient of the scalar output against the autograd
gradient.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    fn: Callable[..., float],
    inputs: Sequence[np.ndarray],
    argnum: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input.

    ``fn`` receives plain arrays and returns a Python float; the perturbed
    argument is mutated in place and restored, so ``fn`` must not retain it.
    """
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
    target = arrays[argnum]
    grad = np.zeros_like(target)
    flat, gflat = target.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(*arrays)
        flat[i] = orig - eps
        minus = fn(*arrays)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def gradcheck(
    build: Callable[..., Tensor],
    *inputs: np.ndarray,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Verify autograd gradients of ``build(*tensors) -> scalar Tensor``.

    Every input is treated as requiring grad; raises ``AssertionError`` with
    the offending argnum and max deviation on mismatch, returns ``True``
    otherwise (so it can sit directly in an ``assert``).
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64).copy(), requires_grad=True) for x in inputs]
    out = build(*tensors)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar output")
    out.backward()

    def scalar_fn(*arrays: np.ndarray) -> float:
        return build(*(Tensor(a.copy()) for a in arrays)).item()

    for argnum, t in enumerate(tensors):
        expected = numerical_gradient(scalar_fn, inputs, argnum, eps=eps)
        got = t.grad
        if got is None:
            raise AssertionError(f"argnum {argnum}: no gradient accumulated")
        if not np.allclose(got, expected, atol=atol, rtol=rtol):
            dev = np.max(np.abs(got - expected))
            raise AssertionError(
                f"argnum {argnum}: autograd/numerical mismatch (max dev {dev:.3e})\n"
                f"autograd:\n{got}\nnumerical:\n{expected}"
            )
    return True
