"""Flat-tape reverse-mode machinery for the production autograd engine.

Design (after the classic ``autograd`` package): ops are *registered
primitives*.  Each primitive registers one VJP *maker* per argnum via
:func:`defvjp` (or a single argnum-indexed maker via :func:`defvjp_argnum`).
At forward time ``nn.tensor`` calls :func:`record`, which invokes the makers
once — capturing the forward answer, parent arrays, and any op state (masks,
indices, axes) — and appends a :class:`TapeEntry` to the flat module-level
:class:`Tape`.  ``backward`` is :func:`backward_pass`: a single reverse sweep
over the tape that pops each reachable entry, applies its per-argnum VJPs,
un-broadcasts every contribution back to the parent's shape, and **frees the
entry** as it goes, so long epochs stop retaining whole op graphs.

Bit-identity discipline (pinned by ``tests/test_nn_tape.py`` against the
frozen closure engine in ``nn.reference``):

* every VJP uses the *same arithmetic expression* as the reference closure,
  and each contribution is un-broadcast **before** accumulation (reduction
  does not distribute bitwise over sums);
* accumulation into a node copies the first contribution and ``+=``-s the
  rest, exactly like the reference ``_accumulate``;
* the two engines may fire a node's consumers in different orders (reverse
  tape-creation order here vs. DFS reverse-postorder there), but IEEE-754
  addition is commutative bitwise, so nodes with at most two distinct
  consumers — which covers every graph the models build — accumulate to
  identical bits.  Graphs with higher fan-out agree to within reassociation
  (the equivalence suite checks those with ``allclose``).

Deliberate divergences from the retired closure behavior: entries are freed
by the pass, so a second ``backward()`` through the same subgraph propagates
nothing (the reference engine now releases its graph too, matching this),
and intermediate ``.grad`` values are transient per pass rather than
accumulated across retained graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Tape",
    "TapeEntry",
    "active_tape",
    "backward_pass",
    "defvjp",
    "defvjp_argnum",
    "record",
    "reset_tape",
    "tape_length",
    "unbroadcast",
]

# A VJP maps the output cotangent to one parent's (pre-unbroadcast)
# contribution; a maker builds the VJP at forward/record time.
VJP = Callable[[np.ndarray], np.ndarray]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (the reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class TapeEntry:
    """One recorded primitive application.

    ``vjps`` is aligned with ``parents``; a ``None`` slot marks a parent that
    requires no gradient.  Entries hold the only strong references the engine
    keeps to intermediate tensors — freeing an entry releases its subgraph.
    """

    __slots__ = ("out", "parents", "vjps")

    def __init__(
        self,
        out: object,
        parents: Tuple[object, ...],
        vjps: Tuple[Optional[VJP], ...],
    ):
        self.out = out
        self.parents = parents
        self.vjps = vjps


class Tape:
    """A flat, append-only record of primitive applications."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Optional[TapeEntry]] = []

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()


_TAPE = Tape()


def active_tape() -> Tape:
    return _TAPE


def tape_length() -> int:
    """Number of live (unconsumed) entries — 0 after a completed backward."""
    return len(_TAPE.entries)


def reset_tape() -> None:
    """Drop all recorded entries (e.g. after a forward that is never
    backpropagated outside a ``no_grad`` block)."""
    _TAPE.clear()


# ----------------------------------------------------------------------
# Primitive registry
# ----------------------------------------------------------------------
_VJP_MAKERS: Dict[str, Tuple[Optional[Callable], ...]] = {}
_VJP_ARGNUM_MAKERS: Dict[str, Callable] = {}


def defvjp(name: str, *makers: Optional[Callable]) -> None:
    """Register per-argnum VJP makers for primitive ``name``.

    ``makers[argnum](ans, *parent_datas, **op_state) -> vjp`` builds the
    backward closure for that parent at record time.
    """
    _VJP_MAKERS[name] = makers


def defvjp_argnum(name: str, maker: Callable) -> None:
    """Register a single argnum-indexed maker (for variadic primitives).

    ``maker(argnum, ans, *parent_datas, **op_state) -> vjp``.
    """
    _VJP_ARGNUM_MAKERS[name] = maker


def record(name: str, out, parents: Tuple[object, ...], **op_state) -> None:
    """Append a tape entry for primitive ``name`` applied to ``parents``.

    Called by ``nn.tensor`` at forward time, only when the output requires
    grad.  Makers run here so VJPs capture forward state once; parents that
    require no gradient get a ``None`` VJP slot and are skipped on replay.
    """
    argnum_maker = _VJP_ARGNUM_MAKERS.get(name)
    parent_datas = tuple(p.data for p in parents)
    vjps: List[Optional[VJP]] = []
    for argnum, parent in enumerate(parents):
        if not parent.requires_grad:
            vjps.append(None)
        elif argnum_maker is not None:
            vjps.append(argnum_maker(argnum, out.data, *parent_datas, **op_state))
        else:
            maker = _VJP_MAKERS[name][argnum]
            if maker is None:
                raise ValueError(f"primitive {name!r} has no VJP for argnum {argnum}")
            vjps.append(maker(out.data, *parent_datas, **op_state))
    _TAPE.entries.append(TapeEntry(out, tuple(parents), tuple(vjps)))


# ----------------------------------------------------------------------
# Reverse sweep
# ----------------------------------------------------------------------
def backward_pass(out, seed: np.ndarray) -> None:
    """Replay the tape in reverse from ``out``, freeing entries as it goes.

    Entries not reachable from ``out`` (other live graphs sharing the tape)
    are left in place.  Gradients for leaf tensors accumulate into ``.grad``
    via the tensor's own ``_accumulate`` (copy-first, ``+=`` after — the
    reference discipline); interior gradients live in a scratch dict keyed
    by object identity and are assigned to ``.grad`` when their entry fires.
    """
    seed = unbroadcast(np.asarray(seed, dtype=np.float64), out.data.shape)
    if not out._interior:
        out._accumulate(seed)
        return
    entries = _TAPE.entries
    # id() keys are stable here: every keyed tensor is kept alive either by
    # the dict value itself or by its still-unprocessed tape entry.
    grads: Dict[int, List] = {id(out): [out, seed.copy()]}
    for i in range(len(entries) - 1, -1, -1):
        entry = entries[i]
        slot = grads.pop(id(entry.out), None)
        if slot is None:
            continue
        node, grad = slot
        node.grad = grad
        for parent, vjp in zip(entry.parents, entry.vjps):
            if vjp is None:
                continue
            contrib = unbroadcast(
                np.asarray(vjp(grad), dtype=np.float64), parent.data.shape
            )
            if parent._interior:
                pslot = grads.get(id(parent))
                if pslot is None:
                    grads[id(parent)] = [parent, contrib.copy()]
                else:
                    pslot[1] += contrib
            else:
                parent._accumulate(contrib)
        entries[i] = None
    # Interior nodes whose producing entry was consumed by an earlier pass
    # behave like leaves now: flush whatever reached them.
    for node, grad in grads.values():
        node._accumulate(grad)
    _TAPE.entries = [e for e in entries if e is not None]
