"""Weight initializers (explicit RNG, reproducible)."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros"]


def kaiming_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """He initialization for ReLU networks: U(-b, b), b = sqrt(6 / fan_in)."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot initialization: U(-b, b), b = sqrt(6 / (fan_in + fan_out))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape)
