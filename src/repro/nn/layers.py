"""Network layers: Linear / shared MLP, BatchNorm, ReLU, Dropout, Sequential.

A "shared MLP" in point cloud networks is a 1×1 convolution — the same
Linear applied independently to every point (row).  Because our
:class:`~repro.nn.tensor.Tensor` matmul broadcasts over leading axes, a
plain :class:`Linear` already is a shared MLP for inputs shaped
``(..., C_in)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .init import kaiming_uniform
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "BatchNorm", "ReLU", "Dropout", "Sequential", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        return x @ self.weight + self.bias


class BatchNorm(Module):
    """Batch normalization over all axes except the last (features).

    Running statistics are tracked in training mode and used at eval time,
    as in standard DNN training.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"expected last dim {self.num_features}, got {x.shape[-1]}"
            )
        axes = tuple(range(x.ndim - 1))
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
            inv_std = (var + self.eps) ** -0.5
            normalized = centered * inv_std
        else:
            normalized = (x - self.running_mean) * (
                1.0 / np.sqrt(self.running_var + self.eps)
            )
        return normalized * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


# Spawning source for default-constructed Dropout layers.  Each instance
# used to create its own ``default_rng(0)``, which made every such layer
# draw the *identical* mask stream — stacked dropout layers masked the
# same positions every step (perfectly correlated masking).  Spawned
# children are independent streams, still deterministic run-to-run (the
# spawn sequence is a pure function of this seed and construction order).
_DROPOUT_SEEDS = np.random.SeedSequence(0)


class Dropout(Module):
    """Inverted dropout; identity at eval time.

    Uses an explicit generator so training runs are reproducible; when no
    generator is passed, each instance gets an independent deterministic
    stream spawned from a module-level :class:`numpy.random.SeedSequence`.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p
        if rng is None:
            rng = np.random.default_rng(_DROPOUT_SEEDS.spawn(1)[0])
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.uniform(size=x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)


def MLP(
    channels: Sequence[int],
    rng: np.random.Generator,
    batch_norm: bool = True,
    final_activation: bool = True,
) -> Sequential:
    """Build a shared MLP ``channels[0] → ... → channels[-1]``.

    Each stage is Linear (+ BatchNorm) + ReLU; the trailing activation and
    norm can be dropped for logit heads.
    """
    if len(channels) < 2:
        raise ValueError("need at least input and output widths")
    layers: List[Module] = []
    for i, (c_in, c_out) in enumerate(zip(channels, channels[1:])):
        last = i == len(channels) - 2
        layers.append(Linear(c_in, c_out, rng))
        if not last or final_activation:
            if batch_norm:
                layers.append(BatchNorm(c_out))
            layers.append(ReLU())
    return Sequential(*layers)
