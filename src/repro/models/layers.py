"""Point cloud network building blocks.

:class:`SetAbstraction` is the canonical PointNet++ layer: sample
centroids (farthest point sampling), search each centroid's neighborhood
(through an :class:`~repro.core.pipeline.ApproximationPipeline`, which is
where all of Crescent's approximation enters), gather the neighbors,
run a shared MLP on relative coordinates + features, and max-pool per
centroid.

:class:`FeaturePropagation` is the PointNet++ upsampling layer used by the
segmentation and detection heads: features are interpolated back onto a
denser point set by inverse-distance-weighted 3-NN, concatenated with skip
features, and refined by a per-point MLP.

Neither neighbor search nor interpolation weights participate in gradient
flow (paper Sec. 5, Fig. 11): they are computed in NumPy and enter the
graph as constants; gradients flow through gathers and MLPs only.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ApproxSetting
from ..core.pipeline import ApproximationPipeline
from ..nn.layers import MLP
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..runtime.epoch import QueryRequest
from ..runtime.session import geometry_digest

__all__ = [
    "farthest_point_sampling",
    "farthest_point_sampling_batched",
    "interpolation_plan",
    "SetAbstraction",
    "FeaturePropagation",
    "GlobalMaxPool",
]


# FPS is pure geometry: the same cloud yields the same centroid ids every
# epoch and every planning pass, so results are memoized by content digest.
# Bounded LRU; stored arrays are frozen read-only since callers only index
# with them.
_FPS_CACHE_LIMIT = 4096
_FPS_CACHE: "OrderedDict[Tuple[str, int, int], np.ndarray]" = OrderedDict()
_FPS_MISS = object()


def _fps_cache_get(key):
    hit = _FPS_CACHE.get(key, _FPS_MISS)
    if hit is not _FPS_MISS:
        _FPS_CACHE.move_to_end(key)
    return hit


def _fps_cache_put(key, chosen: np.ndarray) -> np.ndarray:
    frozen = chosen.copy()
    frozen.setflags(write=False)
    _FPS_CACHE[key] = frozen
    if len(_FPS_CACHE) > _FPS_CACHE_LIMIT:
        _FPS_CACHE.popitem(last=False)
    return frozen


def _fps_greedy_batched(pts: np.ndarray, num_samples: int, start: int) -> np.ndarray:
    """The greedy max-min iteration, in lockstep over a ``(B, N, 3)`` stack.

    Row ``b`` is bit-identical to the historical per-sample loop: every
    per-row operation (squared-distance sum, first-argmax, elementwise
    minimum) matches the per-sample arithmetic exactly.
    """
    rows = np.arange(pts.shape[0])
    chosen = np.empty((pts.shape[0], num_samples), dtype=np.int64)
    chosen[:, 0] = start
    dist = ((pts - pts[:, start][:, None, :]) ** 2).sum(axis=-1)  # (B, N)
    for i in range(1, num_samples):
        nxt = dist.argmax(axis=1)
        chosen[:, i] = nxt
        dist = np.minimum(dist, ((pts - pts[rows, nxt][:, None, :]) ** 2).sum(axis=-1))
    return chosen


def farthest_point_sampling(points: np.ndarray, num_samples: int, start: int = 0) -> np.ndarray:
    """Deterministic farthest point sampling.

    Greedy max-min selection starting from ``points[start]``.  Determinism
    matters: it keeps layer geometry (and therefore the cached neighbor
    matrices) stable across training epochs — and is what makes the digest
    memoization safe.  The returned array is read-only.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if not 0 < num_samples <= n:
        raise ValueError(f"num_samples must be in (0, {n}], got {num_samples}")
    key = (geometry_digest(points), num_samples, start)
    hit = _fps_cache_get(key)
    if hit is not _FPS_MISS:
        return hit
    return _fps_cache_put(key, _fps_greedy_batched(points[None], num_samples, start)[0])


def farthest_point_sampling_batched(
    points: np.ndarray, num_samples: int, start: int = 0
) -> np.ndarray:
    """:func:`farthest_point_sampling` over a stacked ``(B, N, 3)`` axis.

    Row ``b`` of the ``(B, num_samples)`` result is bit-identical to
    ``farthest_point_sampling(points[b], num_samples, start)``; rows whose
    cloud digest is already memoized are served from the shared cache and
    only the missing rows run the greedy iteration (in lockstep).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 3:
        raise ValueError(f"expected stacked (B, N, 3) points, got shape {pts.shape}")
    batch, n = pts.shape[0], pts.shape[1]
    if not 0 < num_samples <= n:
        raise ValueError(f"num_samples must be in (0, {n}], got {num_samples}")
    chosen = np.empty((batch, num_samples), dtype=np.int64)
    misses = []
    keys = []
    for b in range(batch):
        key = (geometry_digest(pts[b]), num_samples, start)
        keys.append(key)
        hit = _fps_cache_get(key)
        if hit is _FPS_MISS:
            misses.append(b)
        else:
            chosen[b] = hit
    if misses:
        computed = _fps_greedy_batched(pts[misses], num_samples, start)
        for j, b in enumerate(misses):
            chosen[b] = _fps_cache_put(keys[b], computed[j])
    return chosen


def interpolation_plan(
    dense_points: np.ndarray, coarse_points: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized 3-NN inverse-distance plan: ``(indices, weights)``.

    ``dense_points`` is ``(..., N, 3)`` and ``coarse_points`` ``(..., M, 3)``
    with matching leading axes; the result is ``(..., N, k)`` neighbor ids
    into the coarse set plus normalized inverse-distance weights.  Per dense
    point this reproduces :func:`repro.kdtree.brute.brute_knn_search`
    (introselect partition, then a stable distance sort) and the weight
    arithmetic of the historical per-point loop bit for bit — the plan is
    pure geometry and never enters the autograd graph.
    """
    dense = np.asarray(dense_points, dtype=np.float64)
    coarse = np.asarray(coarse_points, dtype=np.float64)
    if dense.shape[:-2] != coarse.shape[:-2]:
        raise ValueError(
            f"leading axes of dense {dense.shape} and coarse {coarse.shape} must match"
        )
    k = min(k, coarse.shape[-2])
    lead = dense.shape[:-2]
    flat_dense = dense.reshape((-1,) + dense.shape[-2:])
    flat_coarse = coarse.reshape((-1,) + coarse.shape[-2:])
    d2 = ((flat_dense[:, :, None, :] - flat_coarse[:, None, :, :]) ** 2).sum(axis=-1)
    part = np.argpartition(d2, k - 1, axis=-1)[..., :k]
    order = np.argsort(np.take_along_axis(d2, part, axis=-1), kind="stable", axis=-1)
    idx = np.take_along_axis(part, order, axis=-1)  # (L, N, k)
    neighbors = flat_coarse[np.arange(flat_coarse.shape[0])[:, None, None], idx]
    d = np.linalg.norm(neighbors - flat_dense[:, :, None, :], axis=-1)
    inv = 1.0 / np.maximum(d, 1e-8)
    w = inv / inv.sum(axis=-1, keepdims=True)
    return idx.reshape(lead + idx.shape[-2:]), w.reshape(lead + w.shape[-2:])


class SetAbstraction(Module):
    """One PointNet++ set-abstraction layer.

    Parameters
    ----------
    num_centroids:
        Points sampled by FPS this layer (``None`` = group-all: a single
        pseudo-centroid at the centroid of the cloud covering every point,
        used as the global pooling stage of classifiers).
    radius, max_neighbors:
        Ball-query parameters.
    mlp_channels:
        Shared-MLP widths; input width must be ``3 + in_features``
        (relative coordinates concatenated with point features).
    pipeline:
        The approximation pipeline; one instance is usually shared by all
        layers of a network so caching and banking stay consistent.
    """

    def __init__(
        self,
        num_centroids: Optional[int],
        radius: float,
        max_neighbors: int,
        in_features: int,
        mlp_widths: Sequence[int],
        pipeline: ApproximationPipeline,
        rng: np.random.Generator,
    ):
        super().__init__()
        if num_centroids is not None and num_centroids <= 0:
            raise ValueError("num_centroids must be positive or None")
        self.num_centroids = num_centroids
        self.radius = radius
        self.max_neighbors = max_neighbors
        self.in_features = in_features
        self.pipeline = pipeline
        # batch_norm off: training feeds one cloud at a time, so batch
        # statistics would be per-input (and eval-time running stats would
        # mismatch them).  The reference implementations normalize across
        # large cross-cloud batches, which we cannot form here.
        self.mlp = MLP([3 + in_features, *mlp_widths], rng, batch_norm=False)
        self.out_features = mlp_widths[-1]

    def query_plan(
        self, points: np.ndarray, cache_key: Optional[tuple] = None
    ) -> Tuple[Optional[QueryRequest], np.ndarray]:
        """The neighbor query this layer's forward pass will issue.

        Returns ``(request, centroids)``; ``request`` is ``None`` for the
        group-all stage, which never touches the pipeline.  Centroid
        sampling is deterministic (FPS), so the plan depends only on
        geometry — :meth:`forward` issues *this* request (it calls this
        method), which is what guarantees epoch-batched materialization
        (:mod:`repro.runtime.epoch`) warms exactly the entries the
        training forward pass will look up.
        """
        points = np.asarray(points, dtype=np.float64)
        if self.num_centroids is None:
            return None, points.mean(axis=0, keepdims=True)
        fps = farthest_point_sampling(points, self.num_centroids)
        centroids = points[fps]
        request = QueryRequest(
            points=points,
            queries=centroids,
            radius=self.radius,
            max_neighbors=self.max_neighbors,
            cache_key=cache_key,
        )
        return request, centroids

    def forward(
        self,
        points: np.ndarray,
        features: Optional[Tensor],
        setting: ApproxSetting,
        cache_key: Optional[tuple] = None,
    ) -> Tuple[np.ndarray, Tensor]:
        """Returns ``(centroid_points, centroid_features)``."""
        points = np.asarray(points, dtype=np.float64)
        request, centroids = self.query_plan(points, cache_key)
        if request is None:
            k = len(points)
            indices = np.arange(k, dtype=np.int64)[None, :]
        else:
            k = self.max_neighbors
            indices = self.pipeline.query(
                request.points,
                request.queries,
                request.radius,
                request.max_neighbors,
                setting,
                cache_key=request.cache_key,
            )
        m = len(centroids)
        # Relative coordinates of each gathered neighbor (constants in the
        # graph — geometry does not carry gradient).
        rel = points[indices] - centroids[:, None, :]  # (M, K, 3)
        grouped = Tensor(rel)
        if features is not None:
            gathered = features.take(indices.reshape(-1)).reshape(m, k, self.in_features)
            grouped = grouped.concat([gathered], axis=-1)
        elif self.in_features:
            raise ValueError("layer expects features but received none")
        out = self.mlp(grouped)  # (M, K, C_out)
        pooled = out.max(axis=1)  # (M, C_out)
        return centroids, pooled

    def forward_batch(
        self,
        points: np.ndarray,
        features: Optional[Tensor],
        settings: Sequence[ApproxSetting],
        cache_keys: Optional[Sequence[Optional[tuple]]] = None,
    ) -> Tuple[np.ndarray, Tensor]:
        """Batched :meth:`forward` over a stacked ``(B, N, 3)`` cloud axis.

        Neighbor queries still go through the pipeline one cloud at a time
        (each sample carries its own approximation setting and cache key,
        which is what epoch-batched materialization warms), but sampling,
        gathering, the shared MLP and the pooling run stacked, so a single
        tape replay covers the whole mini-batch.  Row ``b`` of the result
        is bit-identical to
        ``forward(points[b], features[b], settings[b], cache_keys[b])``.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 3:
            raise ValueError(f"expected stacked (B, N, 3) points, got shape {pts.shape}")
        batch = pts.shape[0]
        if cache_keys is None:
            cache_keys = [None] * batch
        if len(settings) != batch or len(cache_keys) != batch:
            raise ValueError("settings and cache_keys must match the batch size")
        if self.num_centroids is None:
            centroids = pts.mean(axis=1, keepdims=True)  # (B, 1, 3)
            k = pts.shape[1]
            indices = np.broadcast_to(np.arange(k, dtype=np.int64), (batch, 1, k))
        else:
            k = self.max_neighbors
            fps = farthest_point_sampling_batched(pts, self.num_centroids)
            centroids = pts[np.arange(batch)[:, None], fps]  # (B, M, 3)
            indices = np.stack(
                [
                    self.pipeline.query(
                        pts[i],
                        centroids[i],
                        self.radius,
                        self.max_neighbors,
                        settings[i],
                        cache_key=cache_keys[i],
                    )
                    for i in range(batch)
                ]
            )
        m = centroids.shape[1]
        rel = pts[np.arange(batch)[:, None, None], indices] - centroids[:, :, None, :]
        grouped = Tensor(rel)  # (B, M, K, 3)
        if features is not None:
            gathered = features.gather_rows(indices.reshape(batch, m * k)).reshape(
                batch, m, k, self.in_features
            )
            grouped = grouped.concat([gathered], axis=-1)
        elif self.in_features:
            raise ValueError("layer expects features but received none")
        out = self.mlp(grouped)  # (B, M, K, C_out)
        return centroids, out.max(axis=-2)


class FeaturePropagation(Module):
    """PointNet++ feature propagation (3-NN inverse-distance upsampling)."""

    def __init__(
        self,
        coarse_features: int,
        skip_features: int,
        mlp_widths: Sequence[int],
        rng: np.random.Generator,
        k: int = 3,
    ):
        super().__init__()
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.coarse_features = coarse_features
        self.skip_features = skip_features
        # batch_norm off: see SetAbstraction.
        self.mlp = MLP([coarse_features + skip_features, *mlp_widths], rng, batch_norm=False)
        self.out_features = mlp_widths[-1]

    def forward(
        self,
        dense_points: np.ndarray,
        coarse_points: np.ndarray,
        coarse_features: Tensor,
        skip_features: Optional[Tensor],
    ) -> Tensor:
        dense_points = np.asarray(dense_points, dtype=np.float64)
        coarse_points = np.asarray(coarse_points, dtype=np.float64)
        n = len(dense_points)
        idx, w = interpolation_plan(dense_points, coarse_points, self.k)
        k = idx.shape[-1]
        gathered = coarse_features.take(idx.reshape(-1)).reshape(
            n, k, self.coarse_features
        )
        interpolated = (gathered * Tensor(w[:, :, None])).sum(axis=1)
        if skip_features is not None:
            interpolated = interpolated.concat([skip_features], axis=-1)
        elif self.skip_features:
            raise ValueError("layer expects skip features but received none")
        return self.mlp(interpolated)

    def forward_batch(
        self,
        dense_points: np.ndarray,
        coarse_points: np.ndarray,
        coarse_features: Tensor,
        skip_features: Optional[Tensor],
    ) -> Tensor:
        """Batched :meth:`forward` over stacked ``(B, N, 3)`` point arrays.

        Row ``b`` of the ``(B, N, C_out)`` result is bit-identical to
        ``forward(dense_points[b], coarse_points[b], coarse_features[b],
        skip_features[b])``.
        """
        dense = np.asarray(dense_points, dtype=np.float64)
        coarse = np.asarray(coarse_points, dtype=np.float64)
        if dense.ndim != 3 or coarse.ndim != 3:
            raise ValueError("expected stacked (B, N, 3) point arrays")
        batch, n = dense.shape[0], dense.shape[1]
        idx, w = interpolation_plan(dense, coarse, self.k)
        k = idx.shape[-1]
        gathered = coarse_features.gather_rows(idx.reshape(batch, n * k)).reshape(
            batch, n, k, self.coarse_features
        )
        interpolated = (gathered * Tensor(w[..., None])).sum(axis=-2)
        if skip_features is not None:
            interpolated = interpolated.concat([skip_features], axis=-1)
        elif self.skip_features:
            raise ValueError("layer expects skip features but received none")
        return self.mlp(interpolated)


class GlobalMaxPool(Module):
    """Max over the point axis: ``(..., N, C)`` features → ``(..., 1, C)``.

    Pooling over ``axis=-2`` makes the same module serve both the
    per-sample ``(N, C)`` path and the stacked ``(B, N, C)`` path.
    """

    def forward(self, features: Tensor) -> Tensor:
        return features.max(axis=-2, keepdims=True)
