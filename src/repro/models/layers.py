"""Point cloud network building blocks.

:class:`SetAbstraction` is the canonical PointNet++ layer: sample
centroids (farthest point sampling), search each centroid's neighborhood
(through an :class:`~repro.core.pipeline.ApproximationPipeline`, which is
where all of Crescent's approximation enters), gather the neighbors,
run a shared MLP on relative coordinates + features, and max-pool per
centroid.

:class:`FeaturePropagation` is the PointNet++ upsampling layer used by the
segmentation and detection heads: features are interpolated back onto a
denser point set by inverse-distance-weighted 3-NN, concatenated with skip
features, and refined by a per-point MLP.

Neither neighbor search nor interpolation weights participate in gradient
flow (paper Sec. 5, Fig. 11): they are computed in NumPy and enter the
graph as constants; gradients flow through gathers and MLPs only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ApproxSetting
from ..core.pipeline import ApproximationPipeline
from ..kdtree.brute import brute_knn_search
from ..nn.layers import MLP
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..runtime.epoch import QueryRequest

__all__ = ["farthest_point_sampling", "SetAbstraction", "FeaturePropagation", "GlobalMaxPool"]


def farthest_point_sampling(points: np.ndarray, num_samples: int, start: int = 0) -> np.ndarray:
    """Deterministic farthest point sampling.

    Greedy max-min selection starting from ``points[start]``.  Determinism
    matters: it keeps layer geometry (and therefore the cached neighbor
    matrices) stable across training epochs.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if not 0 < num_samples <= n:
        raise ValueError(f"num_samples must be in (0, {n}], got {num_samples}")
    chosen = np.empty(num_samples, dtype=np.int64)
    chosen[0] = start
    dist = ((points - points[start]) ** 2).sum(axis=1)
    for i in range(1, num_samples):
        nxt = int(np.argmax(dist))
        chosen[i] = nxt
        dist = np.minimum(dist, ((points - points[nxt]) ** 2).sum(axis=1))
    return chosen


class SetAbstraction(Module):
    """One PointNet++ set-abstraction layer.

    Parameters
    ----------
    num_centroids:
        Points sampled by FPS this layer (``None`` = group-all: a single
        pseudo-centroid at the centroid of the cloud covering every point,
        used as the global pooling stage of classifiers).
    radius, max_neighbors:
        Ball-query parameters.
    mlp_channels:
        Shared-MLP widths; input width must be ``3 + in_features``
        (relative coordinates concatenated with point features).
    pipeline:
        The approximation pipeline; one instance is usually shared by all
        layers of a network so caching and banking stay consistent.
    """

    def __init__(
        self,
        num_centroids: Optional[int],
        radius: float,
        max_neighbors: int,
        in_features: int,
        mlp_widths: Sequence[int],
        pipeline: ApproximationPipeline,
        rng: np.random.Generator,
    ):
        super().__init__()
        if num_centroids is not None and num_centroids <= 0:
            raise ValueError("num_centroids must be positive or None")
        self.num_centroids = num_centroids
        self.radius = radius
        self.max_neighbors = max_neighbors
        self.in_features = in_features
        self.pipeline = pipeline
        # batch_norm off: training feeds one cloud at a time, so batch
        # statistics would be per-input (and eval-time running stats would
        # mismatch them).  The reference implementations normalize across
        # large cross-cloud batches, which we cannot form here.
        self.mlp = MLP([3 + in_features, *mlp_widths], rng, batch_norm=False)
        self.out_features = mlp_widths[-1]

    def query_plan(
        self, points: np.ndarray, cache_key: Optional[tuple] = None
    ) -> Tuple[Optional[QueryRequest], np.ndarray]:
        """The neighbor query this layer's forward pass will issue.

        Returns ``(request, centroids)``; ``request`` is ``None`` for the
        group-all stage, which never touches the pipeline.  Centroid
        sampling is deterministic (FPS), so the plan depends only on
        geometry — :meth:`forward` issues *this* request (it calls this
        method), which is what guarantees epoch-batched materialization
        (:mod:`repro.runtime.epoch`) warms exactly the entries the
        training forward pass will look up.
        """
        points = np.asarray(points, dtype=np.float64)
        if self.num_centroids is None:
            return None, points.mean(axis=0, keepdims=True)
        fps = farthest_point_sampling(points, self.num_centroids)
        centroids = points[fps]
        request = QueryRequest(
            points=points,
            queries=centroids,
            radius=self.radius,
            max_neighbors=self.max_neighbors,
            cache_key=cache_key,
        )
        return request, centroids

    def forward(
        self,
        points: np.ndarray,
        features: Optional[Tensor],
        setting: ApproxSetting,
        cache_key: Optional[tuple] = None,
    ) -> Tuple[np.ndarray, Tensor]:
        """Returns ``(centroid_points, centroid_features)``."""
        points = np.asarray(points, dtype=np.float64)
        request, centroids = self.query_plan(points, cache_key)
        if request is None:
            k = len(points)
            indices = np.arange(k, dtype=np.int64)[None, :]
        else:
            k = self.max_neighbors
            indices = self.pipeline.query(
                request.points,
                request.queries,
                request.radius,
                request.max_neighbors,
                setting,
                cache_key=request.cache_key,
            )
        m = len(centroids)
        # Relative coordinates of each gathered neighbor (constants in the
        # graph — geometry does not carry gradient).
        rel = points[indices] - centroids[:, None, :]  # (M, K, 3)
        grouped = Tensor(rel)
        if features is not None:
            gathered = features.take(indices.reshape(-1)).reshape(m, k, self.in_features)
            grouped = grouped.concat([gathered], axis=-1)
        elif self.in_features:
            raise ValueError("layer expects features but received none")
        out = self.mlp(grouped)  # (M, K, C_out)
        pooled = out.max(axis=1)  # (M, C_out)
        return centroids, pooled


class FeaturePropagation(Module):
    """PointNet++ feature propagation (3-NN inverse-distance upsampling)."""

    def __init__(
        self,
        coarse_features: int,
        skip_features: int,
        mlp_widths: Sequence[int],
        rng: np.random.Generator,
        k: int = 3,
    ):
        super().__init__()
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.coarse_features = coarse_features
        self.skip_features = skip_features
        # batch_norm off: see SetAbstraction.
        self.mlp = MLP([coarse_features + skip_features, *mlp_widths], rng, batch_norm=False)
        self.out_features = mlp_widths[-1]

    def forward(
        self,
        dense_points: np.ndarray,
        coarse_points: np.ndarray,
        coarse_features: Tensor,
        skip_features: Optional[Tensor],
    ) -> Tensor:
        dense_points = np.asarray(dense_points, dtype=np.float64)
        coarse_points = np.asarray(coarse_points, dtype=np.float64)
        n = len(dense_points)
        k = min(self.k, len(coarse_points))
        idx = np.empty((n, k), dtype=np.int64)
        w = np.empty((n, k))
        for i in range(n):
            nearest = brute_knn_search(coarse_points, dense_points[i], k)
            idx[i] = nearest
            d = np.linalg.norm(coarse_points[nearest] - dense_points[i], axis=1)
            inv = 1.0 / np.maximum(d, 1e-8)
            w[i] = inv / inv.sum()
        gathered = coarse_features.take(idx.reshape(-1)).reshape(
            n, k, self.coarse_features
        )
        interpolated = (gathered * Tensor(w[:, :, None])).sum(axis=1)
        if skip_features is not None:
            interpolated = interpolated.concat([skip_features], axis=-1)
        elif self.skip_features:
            raise ValueError("layer expects skip features but received none")
        return self.mlp(interpolated)


class GlobalMaxPool(Module):
    """Max over the point axis of an ``(N, C)`` feature tensor → ``(1, C)``."""

    def forward(self, features: Tensor) -> Tensor:
        return features.max(axis=0, keepdims=True)
