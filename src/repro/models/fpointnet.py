"""F-PointNet detection model (Qi et al., CVPR'18), scaled down.

The original pipeline lifts 2D detections into frustums, segments the
frustum's points into object vs clutter, and regresses an amodal 3D box
with a PointNet on the segmented points.  We reproduce the point cloud
side: given a frustum crop of a LiDAR scene around a proposal, the model

1. segments frustum points (PointNet++-style encoder + propagation),
2. regresses the box: center offset (from the segmented centroid),
   log-size residuals against a car-class anchor, and yaw (sin/cos).

Training uses cross-entropy for segmentation and Huber loss for the box,
as in the original.  The detection metric (paper Tbl. 1) is BEV IoU on
the car class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.config import ApproxSetting
from ..core.pipeline import ApproximationPipeline
from ..geometry.scenes import Box3D
from ..nn.layers import MLP
from ..nn.module import Module
from ..nn.tensor import Tensor
from .layers import GlobalMaxPool, SetAbstraction

__all__ = ["FrustumPointNet", "BoxPrediction", "frustum_crop", "CAR_ANCHOR"]

# Anchor box (length, width, height) for the car class, meters.
CAR_ANCHOR = np.array([4.2, 1.8, 1.55])


@dataclass
class BoxPrediction:
    """Decoded detection output.

    :meth:`FrustumPointNet.forward_batch` returns one instance holding
    stacked ``(B, N, 2)`` / ``(B, 1, 8)`` tensors; use :meth:`sample` to
    slice out a per-frustum prediction before decoding.
    """

    segmentation_logits: Tensor  # (N, 2)
    box_params: Tensor  # (1, 7): dx, dy, dz, dlogl, dlogw, dlogh, yaw_sin, yaw_cos

    def sample(self, index: int) -> "BoxPrediction":
        """Per-sample view of a stacked prediction (forward values only —
        the slices are detached constants, fine for decoding/metrics)."""
        return BoxPrediction(
            segmentation_logits=Tensor(self.segmentation_logits.data[index]),
            box_params=Tensor(self.box_params.data[index]),
        )

    def decode(self, points: np.ndarray) -> Box3D:
        """Turn network outputs into a world-frame box."""
        points = np.asarray(points, dtype=np.float64)
        seg = self.segmentation_logits.data.argmax(axis=1).astype(bool)
        base = points[seg].mean(axis=0) if seg.any() else points.mean(axis=0)
        params = self.box_params.data[0]
        center = base + params[:3]
        size = CAR_ANCHOR * np.exp(np.clip(params[3:6], -1.5, 1.5))
        yaw = float(np.arctan2(params[6], params[7]))
        return Box3D(center, size, yaw)


def frustum_crop(
    points: np.ndarray,
    center_xy: np.ndarray,
    half_angle: float = 0.25,
    max_points: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Crop the scene to an angular frustum around a proposal direction.

    Emulates lifting a 2D detection into 3D: keep points whose bearing is
    within ``half_angle`` radians of the proposal's bearing, re-sampled to
    a fixed size.
    """
    points = np.asarray(points, dtype=np.float64)
    bearing = np.arctan2(points[:, 1], points[:, 0])
    target = np.arctan2(center_xy[1], center_xy[0])
    diff = np.angle(np.exp(1j * (bearing - target)))
    mask = np.abs(diff) <= half_angle
    crop = points[mask]
    if len(crop) == 0:
        crop = points
    rng = rng or np.random.default_rng(0)
    idx = rng.choice(len(crop), size=max_points, replace=len(crop) < max_points)
    return crop[idx]


class FrustumPointNet(Module):
    """Frustum segmentation + box regression."""

    def __init__(
        self,
        rng: np.random.Generator,
        pipeline: Optional[ApproximationPipeline] = None,
        num_centroids: Tuple[int, int] = (64, 16),
        radii: Tuple[float, float] = (1.5, 3.0),
        max_neighbors: int = 8,
    ):
        super().__init__()
        self.pipeline = pipeline or ApproximationPipeline()
        self.sa1 = SetAbstraction(
            num_centroids[0], radii[0], max_neighbors,
            in_features=0, mlp_widths=(32, 32), pipeline=self.pipeline, rng=rng,
        )
        self.sa2 = SetAbstraction(
            num_centroids[1], radii[1], max_neighbors,
            in_features=32, mlp_widths=(64, 64), pipeline=self.pipeline, rng=rng,
        )
        from .layers import FeaturePropagation

        self.fp2 = FeaturePropagation(64, 32, (64,), rng)
        self.fp1 = FeaturePropagation(64, 0, (32,), rng)
        self.seg_head = MLP([32, 32, 2], rng, batch_norm=False, final_activation=False)
        self.pool = GlobalMaxPool()
        # batch_norm off: single pooled row per frustum.
        self.box_head = MLP([64, 64, 8], rng, batch_norm=False, final_activation=False)

    def query_plan(self, frustum_points: np.ndarray, cache_key: Optional[int] = None):
        """The neighbor queries one forward pass will issue (on the
        centroid-normalized frustum, matching :meth:`forward`)."""
        from .pointnetpp import _chain_query_plan

        pts = np.asarray(frustum_points, dtype=np.float64)
        local = pts - pts.mean(axis=0)
        return _chain_query_plan([("sa1", self.sa1), ("sa2", self.sa2)], local, cache_key)

    def forward(
        self,
        frustum_points: np.ndarray,
        setting: ApproxSetting = ApproxSetting(),
        cache_key: Optional[int] = None,
    ) -> BoxPrediction:
        pts = np.asarray(frustum_points, dtype=np.float64)
        # Normalize to the frustum centroid so the MLPs see local scale;
        # box decoding adds the centroid back through the segmented mean.
        offset = pts.mean(axis=0)
        local = pts - offset
        key = (cache_key, "sa1") if cache_key is not None else None
        p1, f1 = self.sa1(local, None, setting, cache_key=key)
        key = (cache_key, "sa2") if cache_key is not None else None
        p2, f2 = self.sa2(p1, f1, setting, cache_key=key)
        up1 = self.fp2(p1, p2, f2, f1)
        up0 = self.fp1(local, p1, up1, None)
        seg_logits = self.seg_head(up0)
        box = self.box_head(self.pool(f2))
        return BoxPrediction(segmentation_logits=seg_logits, box_params=box)

    def forward_batch(
        self,
        frustum_points: np.ndarray,
        settings=ApproxSetting(),
        cache_keys=None,
    ) -> BoxPrediction:
        """Stacked prediction for ``(B, N, 3)`` frustum crops:
        segmentation logits ``(B, N, 2)`` and box params ``(B, 1, 8)``.
        Row ``b`` is bit-identical to the per-sample forward."""
        from .pointnetpp import _batch_settings, _stage_keys

        pts = np.asarray(frustum_points, dtype=np.float64)
        batch = len(pts)
        settings = _batch_settings(settings, batch)
        offset = pts.mean(axis=1, keepdims=True)
        local = pts - offset
        p1, f1 = self.sa1.forward_batch(
            local, None, settings, _stage_keys(cache_keys, "sa1", batch)
        )
        p2, f2 = self.sa2.forward_batch(
            p1, f1, settings, _stage_keys(cache_keys, "sa2", batch)
        )
        up1 = self.fp2.forward_batch(p1, p2, f2, f1)
        up0 = self.fp1.forward_batch(local, p1, up1, None)
        seg_logits = self.seg_head(up0)
        box = self.box_head(self.pool(f2))
        return BoxPrediction(segmentation_logits=seg_logits, box_params=box)
