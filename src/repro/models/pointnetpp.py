"""PointNet++ classification and segmentation models (Qi et al., NeurIPS'17).

Scaled-down single-scale-grouping (SSG) variants sized for the synthetic
datasets: the architecture — hierarchical set abstraction, global pooling
for classification, feature propagation for segmentation — matches the
originals; widths and point counts are reduced so CPU training converges
in seconds.

Every forward takes an :class:`~repro.core.config.ApproxSetting`, which is
how both inference-time approximation and approximation-aware training
(sampling ``h`` per input) are expressed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ApproxSetting
from ..core.pipeline import ApproximationPipeline
from ..nn.layers import MLP, Dropout
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..runtime.epoch import QueryRequest
from .layers import FeaturePropagation, GlobalMaxPool, SetAbstraction


def _chain_query_plan(
    stages: Sequence[Tuple[str, SetAbstraction]],
    points: np.ndarray,
    cache_key: Optional[int],
) -> List[QueryRequest]:
    """Thread ``points`` through a chain of SA stages, collecting each
    stage's :class:`QueryRequest` under the cache key its forward pass
    will use (``(cache_key, stage_name)``, or ``None`` when uncached)."""
    requests: List[QueryRequest] = []
    current = np.asarray(points, dtype=np.float64)
    for name, stage in stages:
        key = (cache_key, name) if cache_key is not None else None
        request, current = stage.query_plan(current, key)
        if request is not None:
            requests.append(request)
    return requests

__all__ = ["PointNetPPClassifier", "PointNetPPSegmenter"]


def _batch_settings(
    settings, batch: int
) -> Sequence[ApproxSetting]:
    """Broadcast a single setting to the batch; validate sequence length."""
    if isinstance(settings, ApproxSetting):
        return [settings] * batch
    if len(settings) != batch:
        raise ValueError(f"expected {batch} settings, got {len(settings)}")
    return settings


def _stage_keys(
    cache_keys: Optional[Sequence[Optional[int]]], name: str, batch: int
) -> Optional[List[Optional[tuple]]]:
    """Per-sample cache keys for one SA stage (matching the per-sample
    forward's ``(cache_key, stage_name)`` convention)."""
    if cache_keys is None:
        return None
    if len(cache_keys) != batch:
        raise ValueError(f"expected {batch} cache keys, got {len(cache_keys)}")
    return [(k, name) if k is not None else None for k in cache_keys]


class PointNetPPClassifier(Module):
    """PointNet++ (c): SA ×2 → group-all SA → classifier head."""

    def __init__(
        self,
        num_classes: int,
        rng: np.random.Generator,
        pipeline: Optional[ApproximationPipeline] = None,
        num_centroids: Tuple[int, int] = (64, 16),
        radii: Tuple[float, float] = (0.25, 0.5),
        max_neighbors: int = 8,
    ):
        super().__init__()
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        self.pipeline = pipeline or ApproximationPipeline()
        self.sa1 = SetAbstraction(
            num_centroids[0], radii[0], max_neighbors,
            in_features=0, mlp_widths=(32, 32), pipeline=self.pipeline, rng=rng,
        )
        self.sa2 = SetAbstraction(
            num_centroids[1], radii[1], max_neighbors,
            in_features=32, mlp_widths=(64, 64), pipeline=self.pipeline, rng=rng,
        )
        self.sa3 = SetAbstraction(
            None, 1.0, max_neighbors,
            in_features=64, mlp_widths=(128,), pipeline=self.pipeline, rng=rng,
        )
        self.pool = GlobalMaxPool()
        self.dropout = Dropout(0.3, rng=np.random.default_rng(rng.integers(2**31)))
        # batch_norm off: the head sees a single pooled row per cloud, and
        # normalizing a batch of one zeroes it.
        self.head = MLP([128, 64, num_classes], rng, batch_norm=False, final_activation=False)

    def query_plan(
        self, points: np.ndarray, cache_key: Optional[int] = None
    ) -> List[QueryRequest]:
        """The neighbor queries one forward pass will issue (sa3 is
        group-all and never queries the pipeline)."""
        return _chain_query_plan(
            [("sa1", self.sa1), ("sa2", self.sa2)], points, cache_key
        )

    def forward(
        self,
        points: np.ndarray,
        setting: ApproxSetting = ApproxSetting(),
        cache_key: Optional[int] = None,
    ) -> Tensor:
        """Logits of shape ``(1, num_classes)`` for one cloud."""
        key = (cache_key, "sa1") if cache_key is not None else None
        p1, f1 = self.sa1(points, None, setting, cache_key=key)
        key = (cache_key, "sa2") if cache_key is not None else None
        p2, f2 = self.sa2(p1, f1, setting, cache_key=key)
        _, f3 = self.sa3(p2, f2, setting)
        return self.head(self.dropout(f3))

    def forward_batch(
        self,
        points: np.ndarray,
        settings=ApproxSetting(),
        cache_keys: Optional[Sequence[Optional[int]]] = None,
    ) -> Tensor:
        """Logits of shape ``(B, 1, num_classes)`` for ``(B, N, 3)`` clouds.

        Row ``b`` is bit-identical to
        ``forward(points[b], settings[b], cache_keys[b])`` (modulo the
        dropout mask shape in training mode, which consumes the layer RNG
        identically only for ``B == 1``).
        """
        pts = np.asarray(points, dtype=np.float64)
        batch = len(pts)
        settings = _batch_settings(settings, batch)
        p1, f1 = self.sa1.forward_batch(
            pts, None, settings, _stage_keys(cache_keys, "sa1", batch)
        )
        p2, f2 = self.sa2.forward_batch(
            p1, f1, settings, _stage_keys(cache_keys, "sa2", batch)
        )
        _, f3 = self.sa3.forward_batch(p2, f2, settings)
        return self.head(self.dropout(f3))


class PointNetPPSegmenter(Module):
    """PointNet++ (s): SA encoder + FP decoder → per-point logits."""

    def __init__(
        self,
        num_classes: int,
        rng: np.random.Generator,
        pipeline: Optional[ApproximationPipeline] = None,
        num_centroids: Tuple[int, int] = (64, 16),
        radii: Tuple[float, float] = (0.25, 0.5),
        max_neighbors: int = 8,
    ):
        super().__init__()
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        self.pipeline = pipeline or ApproximationPipeline()
        self.sa1 = SetAbstraction(
            num_centroids[0], radii[0], max_neighbors,
            in_features=0, mlp_widths=(32, 32), pipeline=self.pipeline, rng=rng,
        )
        self.sa2 = SetAbstraction(
            num_centroids[1], radii[1], max_neighbors,
            in_features=32, mlp_widths=(64, 64), pipeline=self.pipeline, rng=rng,
        )
        self.fp2 = FeaturePropagation(64, 32, (64,), rng)  # coarse→sa1 level
        self.fp1 = FeaturePropagation(64, 0, (32,), rng)  # sa1→input level
        self.head = MLP([32, 32, num_classes], rng, batch_norm=False, final_activation=False)

    def query_plan(
        self, points: np.ndarray, cache_key: Optional[int] = None
    ) -> List[QueryRequest]:
        """The neighbor queries one forward pass will issue (the FP
        decoder interpolates with brute-force 3-NN, not the pipeline)."""
        return _chain_query_plan(
            [("sa1", self.sa1), ("sa2", self.sa2)], points, cache_key
        )

    def forward(
        self,
        points: np.ndarray,
        setting: ApproxSetting = ApproxSetting(),
        cache_key: Optional[int] = None,
    ) -> Tensor:
        """Per-point logits of shape ``(N, num_classes)``."""
        key = (cache_key, "sa1") if cache_key is not None else None
        p1, f1 = self.sa1(points, None, setting, cache_key=key)
        key = (cache_key, "sa2") if cache_key is not None else None
        p2, f2 = self.sa2(p1, f1, setting, cache_key=key)
        up1 = self.fp2(p1, p2, f2, f1)  # features at sa1 resolution
        up0 = self.fp1(np.asarray(points, dtype=np.float64), p1, up1, None)
        return self.head(up0)

    def forward_batch(
        self,
        points: np.ndarray,
        settings=ApproxSetting(),
        cache_keys: Optional[Sequence[Optional[int]]] = None,
    ) -> Tensor:
        """Per-point logits of shape ``(B, N, num_classes)``; row ``b`` is
        bit-identical to ``forward(points[b], settings[b], cache_keys[b])``."""
        pts = np.asarray(points, dtype=np.float64)
        batch = len(pts)
        settings = _batch_settings(settings, batch)
        p1, f1 = self.sa1.forward_batch(
            pts, None, settings, _stage_keys(cache_keys, "sa1", batch)
        )
        p2, f2 = self.sa2.forward_batch(
            p1, f1, settings, _stage_keys(cache_keys, "sa2", batch)
        )
        up1 = self.fp2.forward_batch(p1, p2, f2, f1)
        up0 = self.fp1.forward_batch(pts, p1, up1, None)
        return self.head(up0)
