"""Model registry: the paper's Table 1 as constructable entries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..core.pipeline import ApproximationPipeline
from ..nn.module import Module
from .densepoint import DensePointClassifier
from .fpointnet import FrustumPointNet
from .pointnetpp import PointNetPPClassifier, PointNetPPSegmenter

__all__ = ["ModelEntry", "MODEL_REGISTRY", "build_model"]


@dataclass(frozen=True)
class ModelEntry:
    """One row of the paper's Table 1."""

    name: str
    task: str  # classification | segmentation | detection
    dataset: str  # the stand-in dataset used in this reproduction
    paper_dataset: str
    metric: str
    builder: Callable[..., Module]


def _build_pnpp_c(num_classes: int, rng: np.random.Generator, pipeline: ApproximationPipeline) -> Module:
    return PointNetPPClassifier(num_classes, rng, pipeline)


def _build_pnpp_s(num_classes: int, rng: np.random.Generator, pipeline: ApproximationPipeline) -> Module:
    return PointNetPPSegmenter(num_classes, rng, pipeline)


def _build_densepoint(num_classes: int, rng: np.random.Generator, pipeline: ApproximationPipeline) -> Module:
    return DensePointClassifier(num_classes, rng, pipeline)


def _build_fpointnet(num_classes: int, rng: np.random.Generator, pipeline: ApproximationPipeline) -> Module:
    return FrustumPointNet(rng, pipeline)


MODEL_REGISTRY: Dict[str, ModelEntry] = {
    "PointNet++ (c)": ModelEntry(
        "PointNet++ (c)", "classification", "synthetic shapes", "ModelNet40",
        "overall accuracy", _build_pnpp_c,
    ),
    "PointNet++ (s)": ModelEntry(
        "PointNet++ (s)", "segmentation", "synthetic parts", "ShapeNet",
        "mIoU", _build_pnpp_s,
    ),
    "DensePoint": ModelEntry(
        "DensePoint", "classification", "synthetic shapes", "ModelNet40",
        "overall accuracy", _build_densepoint,
    ),
    "F-PointNet": ModelEntry(
        "F-PointNet", "detection", "synthetic LiDAR scenes", "KITTI",
        "car BEV IoU", _build_fpointnet,
    ),
}


def build_model(
    name: str,
    num_classes: int,
    seed: int = 0,
    pipeline: ApproximationPipeline | None = None,
) -> Module:
    """Construct a registry model with a seeded generator."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; choices: {sorted(MODEL_REGISTRY)}")
    rng = np.random.default_rng(seed)
    return MODEL_REGISTRY[name].builder(
        num_classes, rng, pipeline or ApproximationPipeline()
    )
