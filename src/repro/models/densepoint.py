"""DensePoint classifier (Liu et al., ICCV'19), scaled down.

DensePoint's signature is *dense connectivity*: each stage's narrow
"PPool/PConv" output is concatenated with the features entering it, so
late stages see early features directly.  This produces many
search-and-aggregate stages with narrow MLPs — the reason DensePoint is
neighbor-search-bound and shows Crescent's largest gains.

Our variant keeps that structure (several narrow stages, dense feature
concatenation, shared hierarchical downsampling) at synthetic-dataset
scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ApproxSetting
from ..core.pipeline import ApproximationPipeline
from ..nn.layers import MLP, Dropout
from ..nn.module import Module
from ..nn.tensor import Tensor
from .layers import GlobalMaxPool, SetAbstraction

__all__ = ["DensePointClassifier"]


class DensePointClassifier(Module):
    """A densely-connected stack of narrow set-abstraction stages."""

    def __init__(
        self,
        num_classes: int,
        rng: np.random.Generator,
        pipeline: Optional[ApproximationPipeline] = None,
        stage_centroids: Sequence[int] = (96, 64, 32, 16),
        growth: int = 16,
        max_neighbors: int = 8,
    ):
        super().__init__()
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        self.pipeline = pipeline or ApproximationPipeline()
        self.stages: List[SetAbstraction] = []
        in_features = 0
        radius = 0.2
        for i, m in enumerate(stage_centroids):
            stage = SetAbstraction(
                m,
                radius,
                max_neighbors,
                in_features=in_features,
                mlp_widths=(growth,),
                pipeline=self.pipeline,
                rng=rng,
            )
            self.stages.append(stage)
            # Dense connectivity: the next stage consumes the concatenation
            # of this stage's output with the features that entered it.
            in_features = in_features + growth
            radius *= 1.5
        self.pool = GlobalMaxPool()
        self.dropout = Dropout(0.3, rng=np.random.default_rng(rng.integers(2**31)))
        # batch_norm off: single pooled row per cloud (see pointnetpp.py).
        self.head = MLP([in_features, 64, num_classes], rng, batch_norm=False, final_activation=False)

    def query_plan(self, points: np.ndarray, cache_key: Optional[int] = None):
        """The neighbor queries one forward pass will issue, stage order."""
        from .pointnetpp import _chain_query_plan

        return _chain_query_plan(
            [(f"stage{i}", stage) for i, stage in enumerate(self.stages)],
            points,
            cache_key,
        )

    def forward(
        self,
        points: np.ndarray,
        setting: ApproxSetting = ApproxSetting(),
        cache_key: Optional[int] = None,
    ) -> Tensor:
        current_points = np.asarray(points, dtype=np.float64)
        features: Optional[Tensor] = None
        for i, stage in enumerate(self.stages):
            key = (cache_key, f"stage{i}") if cache_key is not None else None
            new_points, new_features = stage(
                current_points, features, setting, cache_key=key
            )
            if features is None:
                dense = new_features
            else:
                # Gather the incoming features at the surviving centroids
                # (FPS indices are deterministic, so recompute them).
                from .layers import farthest_point_sampling

                fps = farthest_point_sampling(current_points, stage.num_centroids)
                carried = features.take(fps)
                dense = new_features.concat([carried], axis=-1)
            current_points = new_points
            features = dense
        pooled = self.pool(features)
        return self.head(self.dropout(pooled))

    def forward_batch(
        self,
        points: np.ndarray,
        settings=ApproxSetting(),
        cache_keys: Optional[Sequence[Optional[int]]] = None,
    ) -> Tensor:
        """Logits of shape ``(B, 1, num_classes)`` for ``(B, N, 3)`` clouds;
        row ``b`` is bit-identical to the per-sample forward (dropout RNG
        caveat as in :meth:`PointNetPPClassifier.forward_batch`)."""
        from .layers import farthest_point_sampling_batched
        from .pointnetpp import _batch_settings, _stage_keys

        pts = np.asarray(points, dtype=np.float64)
        batch = len(pts)
        settings = _batch_settings(settings, batch)
        current_points = pts
        features: Optional[Tensor] = None
        for i, stage in enumerate(self.stages):
            new_points, new_features = stage.forward_batch(
                current_points,
                features,
                settings,
                _stage_keys(cache_keys, f"stage{i}", batch),
            )
            if features is None:
                dense = new_features
            else:
                fps = farthest_point_sampling_batched(
                    current_points, stage.num_centroids
                )
                carried = features.gather_rows(fps)
                dense = new_features.concat([carried], axis=-1)
            current_points = new_points
            features = dense
        pooled = self.pool(features)
        return self.head(self.dropout(pooled))
