"""Point cloud networks: PointNet++ (c/s), DensePoint, F-PointNet."""

from .layers import (
    FeaturePropagation,
    GlobalMaxPool,
    SetAbstraction,
    farthest_point_sampling,
)
from .pointnetpp import PointNetPPClassifier, PointNetPPSegmenter
from .densepoint import DensePointClassifier
from .fpointnet import CAR_ANCHOR, BoxPrediction, FrustumPointNet, frustum_crop
from .registry import MODEL_REGISTRY, ModelEntry, build_model

__all__ = [
    "FeaturePropagation",
    "GlobalMaxPool",
    "SetAbstraction",
    "farthest_point_sampling",
    "PointNetPPClassifier",
    "PointNetPPSegmenter",
    "DensePointClassifier",
    "CAR_ANCHOR",
    "BoxPrediction",
    "FrustumPointNet",
    "frustum_crop",
    "MODEL_REGISTRY",
    "ModelEntry",
    "build_model",
]
