"""Brute-force (exhaustive) neighbor search.

Serves two roles:

1. Ground truth for the K-d tree searchers (they must agree exactly).
2. The search strategy of the Tigris/QuickNN sub-tree stage, which the
   paper compares against in Fig. 24a: those accelerators run exhaustive
   search inside each sub-tree, so their "nodes visited" per query equals
   the sub-tree population.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["brute_radius_search", "brute_knn_search", "brute_ball_query"]


def brute_radius_search(
    points: np.ndarray, query: np.ndarray, radius: float
) -> np.ndarray:
    """Ids of ``points`` within ``radius`` of ``query``, sorted by distance."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    d2 = ((points - query) ** 2).sum(axis=1)
    hits = np.nonzero(d2 <= radius * radius)[0]
    return hits[np.argsort(d2[hits], kind="stable")]


def brute_knn_search(points: np.ndarray, query: np.ndarray, k: int) -> np.ndarray:
    """Ids of the ``k`` nearest points to ``query`` (nearest first)."""
    if k <= 0:
        raise ValueError("k must be positive")
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    d2 = ((points - query) ** 2).sum(axis=1)
    k = min(k, len(points))
    idx = np.argpartition(d2, k - 1)[:k]
    return idx[np.argsort(d2[idx], kind="stable")]


def brute_ball_query(
    points: np.ndarray, queries: np.ndarray, radius: float, max_neighbors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized exhaustive ball query; same contract as
    :func:`repro.kdtree.exact.ball_query` (padded ``(M, K)`` indices plus
    true counts, nearest-node fallback for empty rows)."""
    points = np.asarray(points, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    m = len(queries)
    indices = np.zeros((m, max_neighbors), dtype=np.int64)
    counts = np.zeros(m, dtype=np.int64)
    # (M, N) pairwise squared distances; fine at the scales we simulate.
    d2 = ((queries[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    within = d2 <= radius * radius
    for i in range(m):
        hits = np.nonzero(within[i])[0]
        hits = hits[np.argsort(d2[i, hits], kind="stable")][:max_neighbors]
        if len(hits) == 0:
            hits = np.array([int(np.argmin(d2[i]))])
        counts[i] = len(hits) if within[i].any() else 0
        row = np.empty(max_neighbors, dtype=np.int64)
        row[: len(hits)] = hits
        row[len(hits) :] = hits[0]
        indices[i] = row
    return indices, counts
