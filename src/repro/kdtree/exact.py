"""Exact K-d tree searches with traversal accounting.

These searchers implement the baseline (non-approximate) neighbor search
used by the unmodified networks.  They traverse with an explicit stack —
the same structure the hardware PE walks — so the recorded statistics
(visits, pushes, pops, visit traces) map one-to-one onto the accelerator
simulation in :mod:`repro.accel`.

The point-cloud-network-facing entry point is :func:`ball_query`, the
radius-limited, K-capped neighbor search PointNet++/DensePoint/F-PointNet
layers use to build the neighbor index matrix.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from .build import KdTree
from .stats import TraversalStats

__all__ = ["radius_search", "knn_search", "ball_query"]


def radius_search(
    tree: KdTree,
    query: np.ndarray,
    radius: float,
    max_neighbors: Optional[int] = None,
    stats: Optional[TraversalStats] = None,
    record_trace: bool = False,
) -> List[int]:
    """Return point ids within ``radius`` of ``query`` (at most ``max_neighbors``).

    Traversal is depth-first with the near child visited first, matching
    the PE's stack discipline.  When ``max_neighbors`` is reached the
    traversal stops early (hardware behaviour: the result buffer is full).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    query = np.asarray(query, dtype=np.float64)
    stats = stats if stats is not None else TraversalStats()
    stats.queries += 1
    r2 = radius * radius
    results: List[int] = []
    stack = [tree.root]
    stats.stack_pushes += 1
    while stack:
        node = stack.pop()
        stats.stack_pops += 1
        stats.nodes_visited += 1
        if record_trace:
            stats.visit_trace.append(node)
        pt = tree.node_point(node)
        delta = query - pt
        if float(delta @ delta) <= r2:
            results.append(int(tree.point_id[node]))
            if max_neighbors is not None and len(results) >= max_neighbors:
                break
        dim = tree.split_dim[node]
        diff = query[dim] - pt[dim]
        l, r = tree.children(node)
        near, far = (l, r) if diff <= 0 else (r, l)
        if far >= 0:
            if abs(diff) <= radius:
                stack.append(far)
                stats.stack_pushes += 1
            else:
                stats.nodes_pruned += tree.subtree_size[far]
        if near >= 0:
            stack.append(near)
            stats.stack_pushes += 1
    stats.neighbors_found += len(results)
    return results


def knn_search(
    tree: KdTree,
    query: np.ndarray,
    k: int,
    stats: Optional[TraversalStats] = None,
    record_trace: bool = False,
) -> List[int]:
    """Return the ``k`` nearest point ids to ``query`` (nearest first).

    Uses the classic shrinking-radius traversal: the pruning bound is the
    current k-th best distance, so the search tightens as hits accumulate.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    query = np.asarray(query, dtype=np.float64)
    stats = stats if stats is not None else TraversalStats()
    stats.queries += 1
    # Max-heap of (-dist2, point_id); heap[0] is the current worst of the best-k.
    best: List[Tuple[float, int]] = []
    stack = [tree.root]
    stats.stack_pushes += 1
    while stack:
        node = stack.pop()
        stats.stack_pops += 1
        stats.nodes_visited += 1
        if record_trace:
            stats.visit_trace.append(node)
        pt = tree.node_point(node)
        delta = query - pt
        d2 = float(delta @ delta)
        if len(best) < k:
            heapq.heappush(best, (-d2, int(tree.point_id[node])))
        elif d2 < -best[0][0]:
            heapq.heapreplace(best, (-d2, int(tree.point_id[node])))
        bound2 = np.inf if len(best) < k else -best[0][0]
        dim = tree.split_dim[node]
        diff = query[dim] - pt[dim]
        l, r = tree.children(node)
        near, far = (l, r) if diff <= 0 else (r, l)
        if far >= 0:
            if diff * diff <= bound2:
                stack.append(far)
                stats.stack_pushes += 1
            else:
                stats.nodes_pruned += tree.subtree_size[far]
        if near >= 0:
            stack.append(near)
            stats.stack_pushes += 1
    ordered = sorted(best, key=lambda item: -item[0])
    stats.neighbors_found += len(ordered)
    return [pid for _, pid in ordered]


def ball_query(
    tree: KdTree,
    queries: np.ndarray,
    radius: float,
    max_neighbors: int,
    stats: Optional[TraversalStats] = None,
    record_trace: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the neighbor index matrix for a batch of queries.

    Returns ``(indices, counts)`` where ``indices`` is ``(M, K)`` int64 and
    ``counts[m]`` is the number of real neighbors of query ``m``.  Rows with
    fewer than ``K`` hits are padded by repeating the first neighbor — the
    replication convention point cloud networks use (and the convention the
    bank-conflict-elision hardware exploits; see Sec. 4.2 of the paper).
    Queries with *zero* neighbors are padded with the query's own nearest
    node point so downstream layers always see valid coordinates.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    m = len(queries)
    indices = np.zeros((m, max_neighbors), dtype=np.int64)
    counts = np.zeros(m, dtype=np.int64)
    for i in range(m):
        found = radius_search(
            tree,
            queries[i],
            radius,
            max_neighbors=max_neighbors,
            stats=stats,
            record_trace=record_trace,
        )
        counts[i] = min(len(found), max_neighbors)
        if not found:
            found = knn_search(tree, queries[i], 1)
        row = found[:max_neighbors]
        row = row + [row[0]] * (max_neighbors - len(row))
        indices[i] = row
    return indices, counts
