"""Incremental K-d index for dynamic (mutating) point clouds.

:class:`DynamicKdTree` is an overlay on the frozen :class:`~repro.kdtree
.build.KdTree` arrays for geometry that drifts frame to frame.  Instead
of rebuilding the whole tree on every insert/remove — the only option the
immutable stack offers — it maintains a small set of frozen **segments**
(each an ordinary ``KdTree`` over a subset of slots), an unindexed
**insert buffer**, and per-slot **tombstones**:

* ``insert`` appends coordinates to a stable, append-only slot space and
  parks the new slots in the buffer (answered by brute force until the
  buffer spills into a segment of its own);
* ``remove`` flips the slot's alive bit and bumps the owning segment's
  dead count — no tree surgery;
* :meth:`refresh` (called lazily before every query) rebuilds **only the
  dirty regions**: it spills an over-full buffer into a new segment,
  rebuilds segments whose dead fraction crossed the threshold (dropping
  their tombstones), and merges the smallest segments when the segment
  count grows past its cap.  Builds go through the session's builders
  (:mod:`repro.runtime.treebuild` by default).

Queries sweep each segment with the shared :func:`~repro.runtime.batched
.frontier_sweep` (skipping segments whose bounding box lies outside the
ball), brute-force the buffer, drop tombstoned hits, and pack results
with the **canonical dynamic contract** from
:mod:`repro.kdtree.dynamic_reference` — hits sorted by ``(d2, slot)``.
The contract is a pure function of the hit set, so results are
bit-identical to rebuild-from-scratch per frame no matter how the points
are segmented; the dynamic equivalence suites pin that on every layer up
through the sharded serving tier.

Dirty-region digests
--------------------
Serving keys caches by content digest, and re-hashing a whole cloud per
frame would put an O(N) hash on every mutation.  :class:`DirtyRegionDigest`
splits the slot space into fixed chunks, caches one blake2b per chunk,
and re-hashes only chunks a mutation touched; the top-level digest
combines the cached chunk digests.  It is a pure function of
``(coords[:n], alive[:n])`` — independent of segmentation, maintenance
mode, or mutation history — so a rebuilt-from-state replica (worker
recovery) reports the same digest as the original.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .build import KdTree, build_kdtree
from .dynamic_reference import canonical_pack, pair_d2

__all__ = ["DirtyRegionDigest", "DynamicKdTree", "DynamicStats"]

# Relative slack on the segment bounding-box prune: the box distance is
# a rounded lower bound on member distances, so pruning exactly at r**2
# could drop a corner point whose own d2 rounds just inside the ball.
# Admitting a segment is always safe (members are re-tested per point).
_PRUNE_SLACK = 1.0 + 1e-9


@dataclass
class DynamicStats:
    """Maintenance-work counters (the incremental-vs-rebuild evidence)."""

    inserts: int = 0
    removes: int = 0
    refreshes: int = 0
    segment_builds: int = 0
    points_indexed: int = 0  # total build work, in points


class DirtyRegionDigest:
    """Chunked content digest with dirty-region re-hash.

    Slots are hashed in fixed chunks of ``chunk_slots``; ``mark_*`` dirties
    the chunks a mutation touched and :meth:`value` re-hashes only those,
    combining cached chunk digests into the top-level hex digest.
    ``chunks_hashed`` counts chunk re-hashes, so tests can prove an update
    touching one chunk did not re-hash the cloud.
    """

    def __init__(self, chunk_slots: int = 1024):
        if chunk_slots <= 0:
            raise ValueError("chunk_slots must be positive")
        self.chunk_slots = int(chunk_slots)
        self.chunks_hashed = 0
        self.evaluations = 0
        self._hashes: List[Optional[bytes]] = []
        self._dirty: set = set()

    def mark_range(self, lo: int, hi: int) -> None:
        """Dirty every chunk overlapping slots ``[lo, hi)``."""
        if hi <= lo:
            return
        self._dirty.update(range(lo // self.chunk_slots, (hi - 1) // self.chunk_slots + 1))

    def mark_slots(self, slots: np.ndarray) -> None:
        if len(slots):
            self._dirty.update(np.unique(np.asarray(slots) // self.chunk_slots).tolist())

    def value(self, coords: np.ndarray, alive: np.ndarray, n: int) -> str:
        """Digest of ``(coords[:n], alive[:n])``, re-hashing dirty chunks only."""
        n_chunks = -(-n // self.chunk_slots)
        if len(self._hashes) < n_chunks:
            self._hashes.extend([None] * (n_chunks - len(self._hashes)))
        for c in sorted(self._dirty):
            if c < n_chunks:
                self._hashes[c] = None
        self._dirty.clear()
        for c in range(n_chunks):
            if self._hashes[c] is None:
                lo, hi = c * self.chunk_slots, min((c + 1) * self.chunk_slots, n)
                h = hashlib.blake2b(digest_size=16)
                h.update(np.ascontiguousarray(coords[lo:hi]).tobytes())
                h.update(np.ascontiguousarray(alive[lo:hi]).tobytes())
                self._hashes[c] = h.digest()
                self.chunks_hashed += 1
        top = hashlib.blake2b(digest_size=16)
        top.update(np.int64(n).tobytes())
        top.update(np.int64(self.chunk_slots).tobytes())
        for c in range(n_chunks):
            top.update(self._hashes[c])
        self.evaluations += 1
        return top.hexdigest()


@dataclass
class _Segment:
    """One frozen sub-index: a KdTree over ``slots`` (some may be dead)."""

    tree: KdTree
    slots: np.ndarray  # (n,) int64 — tree point row i holds slot slots[i]
    lo: np.ndarray  # (3,) AABB over members at build time
    hi: np.ndarray
    dead: int = 0

    @property
    def alive_count(self) -> int:
        return len(self.slots) - self.dead


class DynamicKdTree:
    """Mutable point cloud with incremental index maintenance.

    Parameters
    ----------
    points:
        Optional initial ``(N, 3)`` coordinates (indexed immediately).
    builder:
        ``"vector"`` (default) builds segments with
        :func:`repro.runtime.treebuild.vectorized_build_kdtree`,
        ``"reference"`` with the frozen per-node builder — bit-identical
        either way, the knob exists for A/B benchmarks.
    maintenance:
        ``"incremental"`` (default) keeps segments + buffer with lazy
        dirty-region rebuilds; ``"rebuild"`` rebuilds one segment from
        scratch on every refresh after a mutation — the serving-grade
        rebuild-per-frame baseline the parity suites and the smoke bench
        compare against; ``"state"`` maintains only coordinates, alive
        bits, and the digest (no index, queries rejected) — the
        dispatcher-side shadow the sharded tier keeps for recovery.
    buffer_cap:
        Inserts buffered (brute-forced per query) before spilling into a
        segment of their own.
    rebuild_fraction:
        Dead fraction past which a segment is rebuilt without its
        tombstones.
    max_segments:
        Segment-count cap; beyond it the two smallest segments merge.
    digest_chunk:
        Slots per :class:`DirtyRegionDigest` chunk.
    """

    def __init__(
        self,
        points: Optional[np.ndarray] = None,
        *,
        builder: str = "vector",
        maintenance: str = "incremental",
        buffer_cap: int = 512,
        rebuild_fraction: float = 0.25,
        max_segments: int = 4,
        digest_chunk: int = 1024,
    ):
        if builder not in ("vector", "reference"):
            raise ValueError(f"unknown builder {builder!r}")
        if maintenance not in ("incremental", "rebuild", "state"):
            raise ValueError(f"unknown maintenance mode {maintenance!r}")
        if buffer_cap <= 0 or max_segments <= 0:
            raise ValueError("buffer_cap and max_segments must be positive")
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in (0, 1]")
        self.builder = builder
        self.maintenance = maintenance
        self.buffer_cap = int(buffer_cap)
        self.rebuild_fraction = float(rebuild_fraction)
        self.max_segments = int(max_segments)
        self.stats = DynamicStats()
        self._digest = DirtyRegionDigest(digest_chunk)
        self._coords = np.empty((0, 3), dtype=np.float64)
        self._alive = np.empty(0, dtype=bool)
        self._owner = np.empty(0, dtype=np.int64)  # segment id, -1 = buffer
        self._n = 0
        self._buffer: List[int] = []
        self._segments: Dict[int, _Segment] = {}
        self._next_segment_id = 0
        self._stale = False
        if points is not None:
            pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
            if len(pts):
                self.insert(pts)
                self.refresh(flush=True)

    # -- state ---------------------------------------------------------
    def __len__(self) -> int:
        return int(self._alive[: self._n].sum())

    @property
    def num_slots(self) -> int:
        """Slots ever allocated (alive + tombstoned)."""
        return self._n

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def digest(self) -> str:
        """Content digest of ``(coords, alive)`` via dirty-region re-hash."""
        return self._digest.value(self._coords, self._alive, self._n)

    @property
    def digest_chunks_hashed(self) -> int:
        return self._digest.chunks_hashed

    def state(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(coords, alive)`` snapshot over the full slot space.

        Everything a replica needs: :meth:`from_state` reconstructs an
        equivalent index with identical slot ids and digest.
        """
        return self._coords[: self._n].copy(), self._alive[: self._n].copy()

    @classmethod
    def from_state(
        cls, coords: np.ndarray, alive: np.ndarray, **kwargs
    ) -> "DynamicKdTree":
        """Rebuild from a :meth:`state` snapshot, preserving slot ids."""
        obj = cls(None, **kwargs)
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        alive = np.asarray(alive, dtype=bool)
        if coords.shape[0] != alive.shape[0]:
            raise ValueError("coords and alive must cover the same slots")
        n = coords.shape[0]
        obj._grow(n)
        obj._coords[:n] = coords
        obj._alive[:n] = alive
        obj._n = n
        obj._digest.mark_range(0, n)
        alive_slots = np.nonzero(obj._alive[:n])[0]
        if obj.maintenance != "state" and len(alive_slots):
            obj._build_segment(alive_slots.astype(np.int64))
        return obj

    def alive_slots(self) -> np.ndarray:
        return np.nonzero(self._alive[: self._n])[0].astype(np.int64)

    def segment_trees(self) -> Dict[int, KdTree]:
        """Current segment id -> frozen KdTree map (ids are allocated
        once and never reused, so an id is a stable name for one built
        tree — the granularity DRAM layout refresh keys on)."""
        return {sid: seg.tree for sid, seg in self._segments.items()}

    def coordinates(self, slots: np.ndarray) -> np.ndarray:
        return self._coords[np.asarray(slots, dtype=np.int64)].copy()

    # -- mutation ------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = len(self._alive)
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 64)
        coords = np.empty((new_cap, 3), dtype=np.float64)
        coords[: self._n] = self._coords[: self._n]
        alive = np.zeros(new_cap, dtype=bool)
        alive[: self._n] = self._alive[: self._n]
        owner = np.full(new_cap, -1, dtype=np.int64)
        owner[: self._n] = self._owner[: self._n]
        self._coords, self._alive, self._owner = coords, alive, owner

    def insert(self, points: np.ndarray) -> np.ndarray:
        """Append points; returns their (stable, sequential) slot ids.

        Slot allocation is deterministic — ``num_slots`` up — so two
        replicas applying the same mutation stream agree on every id.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError("points must have shape (N, 3)")
        if not np.isfinite(pts).all():
            raise ValueError("points must be finite")
        k = len(pts)
        if k == 0:
            return np.empty(0, dtype=np.int64)
        self._grow(self._n + k)
        slots = np.arange(self._n, self._n + k, dtype=np.int64)
        self._coords[slots] = pts
        self._alive[slots] = True
        self._owner[slots] = -1
        self._n += k
        self._buffer.extend(slots.tolist())
        self._digest.mark_range(self._n - k, self._n)
        self.stats.inserts += k
        self._stale = True
        return slots

    def remove(self, slots: Union[Sequence[int], np.ndarray]) -> None:
        """Tombstone alive slots (rejects unknown, dead, or repeated ids)."""
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if slots.size == 0:
            return
        if np.any((slots < 0) | (slots >= self._n)):
            raise ValueError("slot id out of range")
        if len(np.unique(slots)) != len(slots):
            raise ValueError("duplicate slot id in remove batch")
        if not self._alive[slots].all():
            raise ValueError("slot already removed")
        self._alive[slots] = False
        owners = self._owner[slots]
        for sid, count in zip(*np.unique(owners[owners >= 0], return_counts=True)):
            self._segments[int(sid)].dead += int(count)
        self._digest.mark_slots(slots)
        self.stats.removes += len(slots)
        self._stale = True

    # -- maintenance ---------------------------------------------------
    def _build_tree(self, pts: np.ndarray) -> KdTree:
        if self.builder == "vector":
            # Imported lazily: treebuild imports repro.runtime which would
            # cycle back through repro.kdtree at module load.
            from ..runtime.treebuild import vectorized_build_kdtree

            return vectorized_build_kdtree(pts)
        return build_kdtree(pts)

    def _build_segment(self, slots: np.ndarray) -> int:
        pts = self._coords[slots]
        seg = _Segment(
            tree=self._build_tree(pts),
            slots=slots,
            lo=pts.min(axis=0),
            hi=pts.max(axis=0),
        )
        sid = self._next_segment_id
        self._next_segment_id += 1
        self._segments[sid] = seg
        self._owner[slots] = sid
        self.stats.segment_builds += 1
        self.stats.points_indexed += len(slots)
        return sid

    def _drop_segment(self, sid: int) -> np.ndarray:
        """Remove a segment, returning its alive slots (ascending)."""
        seg = self._segments.pop(sid)
        alive = seg.slots[self._alive[seg.slots]]
        self._owner[alive] = -1
        return alive

    def refresh(self, flush: bool = False) -> None:
        """Bring the index up to date; rebuilds only dirty regions.

        ``flush`` forces the insert buffer into a segment even below
        ``buffer_cap`` (used at construction so registration indexes the
        initial cloud immediately).
        """
        if not self._stale and not (flush and self._buffer):
            return
        self._stale = False
        self.stats.refreshes += 1
        self._buffer = [s for s in self._buffer if self._alive[s]]
        if self.maintenance == "state":
            return
        if self.maintenance == "rebuild":
            for sid in list(self._segments):
                self._drop_segment(sid)
            self._buffer = []
            alive = self.alive_slots()
            if len(alive):
                self._build_segment(alive)
            return
        pending: List[np.ndarray] = []
        # Dirty segments: everything emptied or past the dead-fraction
        # threshold is rebuilt without its tombstones (dropping it when
        # nothing is left alive).
        for sid in sorted(self._segments):
            seg = self._segments[sid]
            if seg.alive_count == 0:
                self._drop_segment(sid)
            elif seg.dead > self.rebuild_fraction * len(seg.slots):
                pending.append(self._drop_segment(sid))
        if (flush and self._buffer) or len(self._buffer) > self.buffer_cap:
            pending.append(np.asarray(self._buffer, dtype=np.int64))
            self._buffer = []
        if pending:
            slots = np.sort(np.concatenate(pending))
            self._build_segment(slots)
        # Merge smallest segments while over the cap (deterministic:
        # order by (alive_count, segment id)).
        while len(self._segments) > self.max_segments:
            order = sorted(
                self._segments, key=lambda sid: (self._segments[sid].alive_count, sid)
            )
            merged = np.sort(
                np.concatenate(
                    [self._drop_segment(order[0]), self._drop_segment(order[1])]
                )
            )
            self._build_segment(merged)

    # -- queries -------------------------------------------------------
    def _collect(
        self, queries: np.ndarray, radii: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (query, alive slot) hit pairs with canonical ``d2`` keys."""
        # Imported lazily for the same load-order reason as _build_tree.
        from ..runtime.batched import frontier_sweep

        r2 = radii * radii
        hit_q: List[np.ndarray] = []
        hit_s: List[np.ndarray] = []
        for sid in sorted(self._segments):
            seg = self._segments[sid]
            if seg.alive_count == 0:
                continue
            clamped = np.clip(queries, seg.lo, seg.hi)
            delta = queries - clamped
            box_d2 = np.einsum("ij,ij->i", delta, delta)
            sub = np.nonzero(box_d2 <= r2 * _PRUNE_SLACK)[0]
            if not len(sub):
                continue
            for level in frontier_sweep(seg.tree, queries[sub], radii[sub]):
                in_ball = level.in_ball
                if not in_ball.any():
                    continue
                slots = seg.slots[level.point_ids[in_ball]]
                alive = self._alive[slots]
                hit_q.append(sub[level.query_ids[in_ball][alive]])
                hit_s.append(slots[alive])
        if self._buffer:
            bslots = np.asarray(self._buffer, dtype=np.int64)
            delta = queries[:, None, :] - self._coords[bslots][None, :, :]
            d2 = np.einsum("mkj,mkj->mk", delta, delta)
            mq, mk = np.nonzero(d2 <= r2[:, None])
            hit_q.append(mq.astype(np.int64))
            hit_s.append(bslots[mk])
        if not hit_q:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64)
        hq = np.concatenate(hit_q)
        hs = np.concatenate(hit_s)
        return hq, hs, pair_d2(self._coords, queries, hq, hs)

    def _check_queryable(self) -> None:
        if self.maintenance == "state":
            raise RuntimeError("state-only DynamicKdTree cannot serve queries")

    def query(
        self, queries: np.ndarray, radius: float, max_neighbors: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Canonical ``(indices, counts)`` over the current alive set.

        ``indices`` holds slot ids sorted by ``(d2, slot)`` per row,
        truncated at ``max_neighbors``, nearest-repeated padding; rows
        with no hit are ``-1``-filled with ``counts == 0``.  Bit-identical
        to :func:`~repro.kdtree.dynamic_reference.scratch_dynamic_query`.
        """
        self._check_queryable()
        if radius <= 0 or not np.isfinite(radius):
            raise ValueError("radius must be positive and finite")
        if max_neighbors <= 0:
            raise ValueError("max_neighbors must be positive")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if not np.isfinite(queries).all():
            raise ValueError("queries must be finite")
        self.refresh()
        m = len(queries)
        radii = np.full(m, float(radius))
        hq, hs, d2 = self._collect(queries, radii)
        return canonical_pack(m, hq, hs, d2, np.full(m, int(max_neighbors)))

    def query_merged(
        self,
        queries: np.ndarray,
        radii: Union[float, np.ndarray],
        request_ids: np.ndarray,
        max_neighbors: Union[int, Sequence[int], np.ndarray],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Serve N concatenated requests in one pass (the serving kernel).

        Mirrors :meth:`repro.runtime.batched.BatchedBallQuery.query_merged`:
        per-row radii, grouped ``request_ids``, per-request ``K``; request
        ``r``'s pair is bit-identical to ``query(rows_r, radius_r, K_r)``
        because hits are row-independent and the pack is canonical.
        """
        self._check_queryable()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        m = len(queries)
        radii = np.asarray(radii, dtype=np.float64)
        if radii.ndim == 0:
            radii = np.full(m, float(radii))
        request_ids = np.asarray(request_ids, dtype=np.int64)
        ks = np.atleast_1d(np.asarray(max_neighbors, dtype=np.int64))
        n_req = len(ks)
        if (ks <= 0).any():
            raise ValueError("max_neighbors must be positive")
        if radii.shape != (m,):
            raise ValueError("radii must give one radius per query")
        if m and ((radii <= 0) | ~np.isfinite(radii)).any():
            raise ValueError("radius must be positive and finite")
        if not np.isfinite(queries).all():
            raise ValueError("queries must be finite")
        if request_ids.shape != (m,):
            raise ValueError("request_ids must give one request per query")
        if m and ((request_ids < 0) | (request_ids >= n_req)).any():
            raise ValueError(f"request_ids must lie in [0, {n_req})")
        if m and (np.diff(request_ids) < 0).any():
            raise ValueError("request_ids must be grouped (non-decreasing)")
        if n_req == 0:
            return []
        self.refresh()
        starts = np.searchsorted(request_ids, np.arange(n_req + 1))
        hq, hs, d2 = self._collect(queries, radii)
        k_row = ks[request_ids] if m else np.empty(0, dtype=np.int64)
        indices, counts = canonical_pack(m, hq, hs, d2, k_row)
        return [
            (
                indices[starts[r] : starts[r + 1], : int(ks[r])].copy(),
                counts[starts[r] : starts[r + 1]].copy(),
            )
            for r in range(n_req)
        ]
