"""Step-wise traversal state machines.

The functional searchers in :mod:`repro.kdtree.exact` run a whole query to
completion.  The Crescent hardware, by contrast, advances one *node visit*
per PE pipeline pass and must react to bank conflicts at the FN (fetch
node) stage.  The two classes here expose exactly that granularity:

* :class:`TopTreeDescent` — phase 1 of the split-tree search: a pure
  binary-search-tree descent from the root to a sub-tree root.  No
  backtracking (the US stage is bypassed), no elision.
* :class:`SubtreeSearch` — phase 2: stack-based radius search restricted
  to one sub-tree, with optional conflict elision (a conflicted fetch of a
  node at depth ``>= elide_depth`` drops the node and its whole subtree).

Both machines are driven by ``peek()`` (which node will be fetched next)
followed by ``advance(elide=...)`` (commit the visit, or skip it).  The
functional approximate search (:mod:`repro.core.approx_search`) and the
cycle-level engine (:mod:`repro.accel.search_engine`) drive the same
machines, which keeps the two simulations behaviourally identical by
construction.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .build import KdTree
from .stats import TraversalStats

__all__ = ["TopTreeDescent", "SubtreeSearch"]


class TopTreeDescent:
    """Descend the first ``top_height`` levels of ``tree`` for one query.

    After :attr:`done`, :attr:`assigned_root` holds the sub-tree root node
    the query was routed to (a node at depth ``top_height``), and
    :attr:`hits` holds any neighbors discovered among the top-tree nodes on
    the way down (their points are distance-tested as they stream past).

    If the descent runs off the tree early (short branch), the query is
    assigned to the last real node visited.
    """

    def __init__(
        self,
        tree: KdTree,
        query: np.ndarray,
        radius: float,
        top_height: int,
        stats: Optional[TraversalStats] = None,
    ):
        if top_height < 0:
            raise ValueError("top_height must be non-negative")
        self.tree = tree
        self.query = np.asarray(query, dtype=np.float64)
        self.radius = radius
        self.top_height = top_height
        self.stats = stats if stats is not None else TraversalStats()
        self.hits: List[int] = []
        self.assigned_root: int = -1
        self._current = tree.root if top_height > 0 else -1
        if top_height == 0:
            # Degenerate split: the whole tree is one sub-tree.
            self.assigned_root = tree.root
        self.stats.queries += 1

    @property
    def done(self) -> bool:
        return self.assigned_root >= 0

    def peek(self) -> int:
        """Node id the next fetch will read, or ``-1`` when done."""
        return -1 if self.done else self._current

    def advance(self) -> None:
        """Visit the current node and move to the near child."""
        if self.done:
            raise RuntimeError("descent already finished")
        node = self._current
        self.stats.nodes_visited += 1
        tree = self.tree
        pt = tree.node_point(node)
        delta = self.query - pt
        if float(delta @ delta) <= self.radius * self.radius:
            self.hits.append(int(tree.point_id[node]))
        dim = tree.split_dim[node]
        near = tree.left[node] if self.query[dim] <= pt[dim] else tree.right[node]
        if near < 0:
            # Short branch: fall back to the other child, else terminate here.
            other = tree.right[node] if self.query[dim] <= pt[dim] else tree.left[node]
            near = other
        if near < 0 or tree.depth[near] > self.top_height:
            # Should not happen for balanced trees with valid top_height,
            # but guard so malformed inputs terminate instead of looping.
            self.assigned_root = node
            return
        if tree.depth[near] == self.top_height:
            self.assigned_root = int(near)
        else:
            self._current = int(near)


class SubtreeSearch:
    """Stack-based radius search restricted to one sub-tree.

    Parameters
    ----------
    root:
        Sub-tree root node id; backtracking never leaves this subtree
        (Crescent's accuracy-for-streaming trade, Sec. 3.1).
    elide_depth:
        Global tree depth at or below which a *conflicted* fetch is elided
        (the paper's elision height ``h_e``).  ``None`` disables elision:
        ``advance(elide=True)`` then raises, because the caller should have
        stalled instead.
    max_neighbors:
        Stop the traversal once this many neighbors are collected (result
        buffer capacity).
    """

    def __init__(
        self,
        tree: KdTree,
        query: np.ndarray,
        radius: float,
        root: int,
        max_neighbors: Optional[int] = None,
        elide_depth: Optional[int] = None,
        stats: Optional[TraversalStats] = None,
        record_trace: bool = False,
    ):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.tree = tree
        self.query = np.asarray(query, dtype=np.float64)
        self.radius = radius
        self.r2 = radius * radius
        self.max_neighbors = max_neighbors
        self.elide_depth = elide_depth
        self.stats = stats if stats is not None else TraversalStats()
        self.record_trace = record_trace
        self.hits: List[int] = []
        self._stack: List[int] = [int(root)] if root >= 0 else []
        self.stats.stack_pushes += len(self._stack)

    @property
    def done(self) -> bool:
        full = (
            self.max_neighbors is not None and len(self.hits) >= self.max_neighbors
        )
        return full or not self._stack

    def peek(self) -> int:
        return -1 if self.done else self._stack[-1]

    def would_elide(self, node: int) -> bool:
        """True if a bank conflict on ``node`` would be elided (not stalled)."""
        return (
            self.elide_depth is not None
            and int(self.tree.depth[node]) >= self.elide_depth
        )

    def advance(self, elide: bool = False, substitute: Optional[int] = None) -> None:
        """Consume the top-of-stack node.

        ``elide=False`` performs the normal visit (distance test + child
        pushes).  A bank-conflict loser whose requested address matches the
        winner's is *served* by the broadcast read and must be advanced
        with ``elide=False`` — broadcasts are ordinary served visits, never
        elisions (they used to be funneled through ``elide=True`` with
        ``substitute == node``, which mislabeled a served fetch with
        elision semantics).  ``elide=True`` drops the node — modelling a
        conflict whose retry was suppressed — which skips its entire
        subtree.  ``elide=True`` with ``substitute`` set continues the
        traversal from ``substitute`` instead (the paper's Sec. 4.2
        future-work optimization): valid only when ``substitute`` is a
        *proper* descendant of the requested node, so termination is
        preserved; only the nodes between the two are lost.
        """
        if self.done:
            raise RuntimeError("search already finished")
        node = self._stack.pop()
        self.stats.stack_pops += 1
        tree = self.tree
        if elide:
            if not self.would_elide(node):
                raise RuntimeError(
                    f"node {node} at depth {tree.depth[node]} is above the "
                    f"elision height {self.elide_depth}; the PE must stall"
                )
            if substitute is not None:
                if substitute == node:
                    raise RuntimeError(
                        f"substitute equals the requested node {node}: a "
                        "same-address conflict is a broadcast, not an "
                        "elision — advance with elide=False"
                    )
                if not tree.is_descendant(substitute, node):
                    raise RuntimeError(
                        f"substitute {substitute} is not beneath {node}"
                    )
                self.stats.nodes_skipped += int(
                    tree.subtree_size[node] - tree.subtree_size[substitute]
                )
                self._stack.append(int(substitute))
                self.stats.stack_pushes += 1
                return
            self.stats.nodes_skipped += int(tree.subtree_size[node])
            return
        self.stats.nodes_visited += 1
        if self.record_trace:
            self.stats.visit_trace.append(node)
        pt = tree.node_point(node)
        delta = self.query - pt
        if float(delta @ delta) <= self.r2:
            self.hits.append(int(tree.point_id[node]))
            self.stats.neighbors_found += 1
            if self.max_neighbors is not None and len(self.hits) >= self.max_neighbors:
                return
        dim = tree.split_dim[node]
        diff = float(self.query[dim] - pt[dim])
        l, r = tree.children(node)
        near, far = (l, r) if diff <= 0 else (r, l)
        if far >= 0:
            if abs(diff) <= self.radius:
                self._stack.append(int(far))
                self.stats.stack_pushes += 1
            else:
                self.stats.nodes_pruned += int(tree.subtree_size[far])
        if near >= 0:
            self._stack.append(int(near))
            self.stats.stack_pushes += 1

    def run_to_completion(self, elide_all_conflicts: bool = False) -> List[int]:
        """Drive the machine without a conflict model (no elisions)."""
        while not self.done:
            self.advance(elide=False)
        return self.hits
