"""K-d tree substrate: construction, exact search, brute force, traversal machines."""

from .build import NODE_BYTES, KdTree, build_kdtree
from .stats import TraversalStats
from .exact import ball_query, knn_search, radius_search
from .brute import brute_ball_query, brute_knn_search, brute_radius_search
from .traversal import SubtreeSearch, TopTreeDescent
from .dynamic import DirtyRegionDigest, DynamicKdTree, DynamicStats
from .dynamic_reference import scratch_dynamic_query

__all__ = [
    "NODE_BYTES",
    "KdTree",
    "build_kdtree",
    "DirtyRegionDigest",
    "DynamicKdTree",
    "DynamicStats",
    "scratch_dynamic_query",
    "TraversalStats",
    "ball_query",
    "knn_search",
    "radius_search",
    "brute_ball_query",
    "brute_knn_search",
    "brute_radius_search",
    "SubtreeSearch",
    "TopTreeDescent",
]
