"""Array-based balanced K-d tree construction.

The tree follows the classic Bentley formulation the paper assumes: every
node stores one point; the splitting plane passes through that point along
the dimension of largest extent (cycling is also supported).  Nodes are
held in flat NumPy arrays — ``left``/``right`` child ids, split dimension,
and the id of the point stored at the node — which makes the tree directly
usable as the memory image the accelerator simulator streams from DRAM:
node ``i`` lives at byte address ``i * NODE_BYTES``.

The builder produces a *balanced* tree (median splits), so for ``n`` points
the height is ``ceil(log2(n + 1))``.  Balance matters to Crescent because
the top-tree height knob ``h_t`` carves the first ``h_t`` levels off this
tree; see :mod:`repro.core.split_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["KdTree", "build_kdtree", "NODE_BYTES"]

# One tree node in the accelerator's memory image: 3 float32 coordinates,
# a packed split-dimension/point-id word, and two child pointers = 24 bytes.
NODE_BYTES = 24


@dataclass
class KdTree:
    """A balanced K-d tree over an ``(N, 3)`` point array.

    Attributes
    ----------
    points:
        The original point coordinates (never reordered).
    point_id:
        ``point_id[i]`` is the index into ``points`` of the point stored at
        node ``i``.
    split_dim:
        Splitting dimension (0/1/2) of node ``i``.
    left, right:
        Child node ids, ``-1`` when absent.
    depth:
        Depth of node ``i`` (root = 0).
    subtree_size:
        Number of nodes in the subtree rooted at ``i`` (including ``i``).
    tin, tout:
        Preorder entry/exit indices (Euler intervals): ``b`` lies in the
        subtree of ``a`` iff ``tin[a] <= tin[b] < tout[a]``.  Computed
        lazily by :meth:`is_descendant`.
    root:
        Node id of the root (always 0 for non-empty trees).
    """

    points: np.ndarray
    point_id: np.ndarray
    split_dim: np.ndarray
    left: np.ndarray
    right: np.ndarray
    depth: np.ndarray
    subtree_size: np.ndarray
    root: int = 0
    tin: Optional[np.ndarray] = None
    tout: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        return len(self.point_id)

    @property
    def height(self) -> int:
        """Number of levels (a single-node tree has height 1)."""
        if self.num_nodes == 0:
            return 0
        return int(self.depth.max()) + 1

    def node_point(self, node: int) -> np.ndarray:
        """Coordinates of the point stored at ``node``."""
        return self.points[self.point_id[node]]

    def node_address(self, node: int) -> int:
        """Byte address of ``node`` in the DRAM memory image."""
        return int(node) * NODE_BYTES

    def children(self, node: int) -> Tuple[int, int]:
        return int(self.left[node]), int(self.right[node])

    def nodes_at_depth(self, d: int) -> np.ndarray:
        """All node ids at depth ``d``."""
        return np.nonzero(self.depth == d)[0]

    def subtree_nodes(self, node: int) -> np.ndarray:
        """All node ids in the subtree rooted at ``node`` (preorder)."""
        out: List[int] = []
        stack = [int(node)]
        while stack:
            cur = stack.pop()
            if cur < 0:
                continue
            out.append(cur)
            stack.append(int(self.right[cur]))
            stack.append(int(self.left[cur]))
        return np.asarray(out, dtype=np.int64)

    def _ensure_euler(self) -> None:
        if self.tin is not None:
            return
        n = self.num_nodes
        tin = np.zeros(n, dtype=np.int64)
        tout = np.zeros(n, dtype=np.int64)
        clock = 0
        stack = [(int(self.root), False)]
        while stack:
            node, leaving = stack.pop()
            if leaving:
                tout[node] = clock
                continue
            tin[node] = clock
            clock += 1
            stack.append((node, True))
            for child in (int(self.right[node]), int(self.left[node])):
                if child >= 0:
                    stack.append((child, False))
        self.tin = tin
        self.tout = tout

    def is_descendant(self, node: int, ancestor: int) -> bool:
        """True iff ``node`` lies in the subtree rooted at ``ancestor``.

        Used by the descend-on-conflict elision policy (the optimization
        the paper sketches in Sec. 4.2): a PE that lost arbitration may
        safely continue from the winner's node when that node is beneath
        the one it requested.
        """
        self._ensure_euler()
        return bool(
            self.tin[ancestor] <= self.tin[node] < self.tout[ancestor]
        )

    def validate(self) -> None:
        """Check the structural invariants; raise ``AssertionError`` if broken.

        Used by the property-based tests: every point appears at exactly one
        node, children respect the splitting plane, and depths/sizes are
        consistent.  The checks are expressed over Euler intervals — a
        child's preorder interval is exactly its descendant set, so each
        level's split planes are verified with one segmented min/max —
        which keeps validation O(N log N) instead of the per-node subtree
        walks (O(N^2) Python) that used to make full-size property tests
        unaffordable.
        """
        n = self.num_nodes
        assert sorted(self.point_id.tolist()) == list(range(n))
        nodes = np.arange(n)
        l, r = self.left, self.right
        has_l, has_r = l >= 0, r >= 0
        assert (self.depth[l[has_l]] == self.depth[nodes[has_l]] + 1).all()
        assert (self.depth[r[has_r]] == self.depth[nodes[has_r]] + 1).all()
        # Leaves pin size 1, so the recurrence pins every size bottom-up.
        expected_size = (
            1
            + np.where(has_l, self.subtree_size[np.where(has_l, l, 0)], 0)
            + np.where(has_r, self.subtree_size[np.where(has_r, r, 0)], 0)
        )
        assert (self.subtree_size == expected_size).all()

        # With sizes validated the Euler intervals are well-defined:
        # a left child enters right after its parent, a right child after
        # the whole left subtree.  (Computed locally: this must not mutate
        # the lazy tin/tout cache of a tree that fails validation.)
        tin = np.zeros(n, dtype=np.int64)
        by_depth = np.argsort(self.depth, kind="stable")
        height = int(self.depth[by_depth[-1]]) + 1
        level_starts = np.searchsorted(self.depth[by_depth], np.arange(height + 1))
        for d in range(height - 1):
            level = by_depth[level_starts[d] : level_starts[d + 1]]
            cl, cr = l[level], r[level]
            chl, chr = cl >= 0, cr >= 0
            tin[cl[chl]] = tin[level[chl]] + 1
            right_base = (
                tin[level]
                + 1
                + np.where(chl, self.subtree_size[np.where(chl, cl, 0)], 0)
            )
            tin[cr[chr]] = right_base[chr]
        tout = tin + self.subtree_size
        # Malformed wiring (e.g. a shared child) can push intervals out of
        # range; fail as an assertion, not an IndexError in reduceat.
        assert (tin >= 0).all() and (tout <= n).all()
        pre_coords = self.points[self.point_id[np.argsort(tin)]]

        def interval_extrema(children: np.ndarray):
            """Per-child (min, max) coordinates over its preorder interval.

            Children of one level have disjoint intervals; sorted by tin,
            the interleaved starts/ends feed a single reduceat per bound
            (odd slots are the gaps between intervals, discarded).
            """
            starts, ends = tin[children], tout[children]
            bounds = np.empty(2 * len(children), dtype=np.int64)
            bounds[0::2] = starts
            bounds[1::2] = ends
            if bounds[-1] == n:  # reduceat bounds must stay < n; the
                bounds = bounds[:-1]  # trailing slice runs to the end anyway
            mx = np.maximum.reduceat(pre_coords, bounds, axis=0)[0::2]
            mn = np.minimum.reduceat(pre_coords, bounds, axis=0)[0::2]
            return mn, mx

        for d in range(height - 1):
            level = by_depth[level_starts[d] : level_starts[d + 1]]
            for side, children_all in (("left", l[level]), ("right", r[level])):
                present = children_all >= 0
                parents = level[present]
                children = children_all[present]
                if not len(children):
                    continue
                by_tin = np.argsort(tin[children])
                parents, children = parents[by_tin], children[by_tin]
                mn, mx = interval_extrema(children)
                dims = self.split_dim[parents].astype(np.int64)
                vals = self.points[self.point_id[parents], dims]
                if side == "left":
                    sel = np.take_along_axis(mx, dims[:, None], axis=1)[:, 0]
                    assert (sel <= vals + 1e-12).all()
                else:
                    sel = np.take_along_axis(mn, dims[:, None], axis=1)[:, 0]
                    assert (sel >= vals - 1e-12).all()


def build_kdtree(points: np.ndarray, split_rule: str = "widest") -> KdTree:
    """Build a balanced K-d tree with median splits.

    Parameters
    ----------
    points:
        ``(N, 3)`` array, ``N >= 1``.
    split_rule:
        ``"widest"`` picks the dimension with the largest coordinate spread
        at each node (what point-cloud libraries use); ``"cycle"`` rotates
        x→y→z by depth (the textbook rule).

    Nodes are numbered in BFS (level) order: the root is node 0, all depth-1
    nodes follow, and so on.  Level order makes the top-tree of
    :mod:`repro.core.split_tree` a contiguous prefix of the memory image,
    which is what lets the hardware stream it from DRAM in one pass.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    n = len(points)
    if n == 0:
        raise ValueError("cannot build a K-d tree over zero points")
    if split_rule not in ("widest", "cycle"):
        raise ValueError(f"unknown split_rule {split_rule!r}")

    point_id = np.empty(n, dtype=np.int64)
    split_dim = np.zeros(n, dtype=np.int8)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int32)
    subtree_size = np.zeros(n, dtype=np.int64)

    # BFS construction: each work item is (candidate point ids, depth,
    # parent node id, is_left_child).  Assigning node ids in pop order
    # yields level-order numbering because the queue is FIFO.
    from collections import deque

    next_id = 0
    queue = deque()
    queue.append((np.arange(n, dtype=np.int64), 0, -1, False))
    while queue:
        ids, d, parent, is_left = queue.popleft()
        node = next_id
        next_id += 1
        sub = points[ids]
        if split_rule == "widest" and len(ids) > 1:
            dim = int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))
        elif split_rule == "widest":
            dim = 0
        else:
            dim = d % 3
        order = np.argsort(sub[:, dim], kind="stable")
        median = (len(ids) - 1) // 2
        ids_sorted = ids[order]

        point_id[node] = ids_sorted[median]
        split_dim[node] = dim
        depth[node] = d
        subtree_size[node] = len(ids)
        if parent >= 0:
            if is_left:
                left[parent] = node
            else:
                right[parent] = node
        left_ids = ids_sorted[:median]
        right_ids = ids_sorted[median + 1 :]
        if len(left_ids):
            queue.append((left_ids, d + 1, node, True))
        if len(right_ids):
            queue.append((right_ids, d + 1, node, False))

    return KdTree(
        points=points,
        point_id=point_id,
        split_dim=split_dim,
        left=left,
        right=right,
        depth=depth,
        subtree_size=subtree_size,
    )
