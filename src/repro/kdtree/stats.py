"""Traversal statistics collected by every search implementation.

The paper's evaluation is largely expressed in these counters: tree nodes
visited per query (Fig. 8, Fig. 24a), nodes skipped by conflict elision
(Fig. 9, Fig. 17), and the visit trace used to derive DRAM/SRAM access
streams (Fig. 2–5).  Keeping them in one dataclass lets the exact search,
the split-tree search, and the cycle-level engine report comparable
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["TraversalStats"]


@dataclass
class TraversalStats:
    """Counters for one search run (one query or an aggregated batch).

    Attributes
    ----------
    nodes_visited:
        Tree nodes whose point was actually fetched and distance-tested.
    nodes_skipped:
        Nodes dropped because a bank conflict was elided (the node and its
        entire subtree are never traversed).
    nodes_pruned:
        Subtrees skipped by the ordinary K-d bounding-plane test.  These are
        *algorithmic* skips, free of accuracy cost, unlike ``nodes_skipped``.
    stack_pushes / stack_pops:
        Traversal stack operations (the PE's RS/US pipeline stages).
    neighbors_found:
        Total neighbors returned.
    visit_trace:
        Node ids in visit order; consumed by the memory-trace generators.
        Collection can be disabled (``record_trace=False`` in the searchers)
        to keep large batch runs cheap.
    """

    nodes_visited: int = 0
    nodes_skipped: int = 0
    nodes_pruned: int = 0
    stack_pushes: int = 0
    stack_pops: int = 0
    neighbors_found: int = 0
    queries: int = 0
    visit_trace: List[int] = field(default_factory=list)

    def merge(self, other: "TraversalStats") -> "TraversalStats":
        """Accumulate ``other`` into this object (in place) and return self."""
        self.nodes_visited += other.nodes_visited
        self.nodes_skipped += other.nodes_skipped
        self.nodes_pruned += other.nodes_pruned
        self.stack_pushes += other.stack_pushes
        self.stack_pops += other.stack_pops
        self.neighbors_found += other.neighbors_found
        self.queries += other.queries
        self.visit_trace.extend(other.visit_trace)
        return self

    @property
    def nodes_visited_per_query(self) -> float:
        """Average nodes visited per query (0 if no queries recorded)."""
        if self.queries == 0:
            return 0.0
        return self.nodes_visited / self.queries
