"""Rebuild-from-scratch ground truth for dynamic (mutating) clouds.

This module is the parity anchor for :mod:`repro.kdtree.dynamic`: after
every frame of inserts/removes, the reference answer is obtained by
rebuilding a K-d tree from scratch over the alive points (via the frozen
per-node :func:`repro.kdtree.build.build_kdtree`) and running the frozen
per-step :func:`repro.kdtree.exact.radius_search` per query.  The
incremental overlay must match these results **bit for bit** on every
frame; the dynamic equivalence suites pin that.

Like the other reference engines it is deliberately per-step and must
stay that way (the ``reference-freeze`` repro-lint rule enforces the
import direction: :mod:`repro.kdtree.dynamic` may import the contract
helpers below, this module must never import the incremental fast path).

Canonical result contract
-------------------------
A balanced median tree's *structure* is a global function of the point
array — one insert shifts medians everywhere — so an incremental index
cannot reproduce the scratch tree's DFS visit order.  What both paths can
agree on exactly is the *neighbor set*, so dynamic queries return results
in a canonical, structure-independent order:

* a hit is any alive slot with squared distance ``d2 <= radius**2``,
  where ``d2`` is computed by :func:`pair_d2` (one shared formula, so the
  membership test and the sort keys are bit-equal across engines);
* per query, hits sort ascending by ``(d2, slot id)`` and truncate at
  that query's ``K``;
* rows with at least one hit pad the remaining columns by repeating the
  first (nearest) neighbor; rows with no hits are ``-1``-filled with
  ``counts == 0``.

Because the order is a pure function of the hit set, bit-identity between
the incremental and scratch paths is exactly neighbor-set correctness.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .build import KdTree, build_kdtree
from .exact import radius_search

__all__ = [
    "pair_d2",
    "canonical_pack",
    "rebuild_from_scratch",
    "scratch_dynamic_query",
]


def pair_d2(
    coords: np.ndarray,
    queries: np.ndarray,
    hit_q: np.ndarray,
    hit_slots: np.ndarray,
) -> np.ndarray:
    """Squared distances for (query, slot) hit pairs.

    The single distance formula every dynamic engine keys its canonical
    sort with.  It matches the ``einsum`` reduction ``frontier_sweep``
    uses for its in-ball test, so a hit admitted by the sweep sorts under
    the same ``d2`` bits here.
    """
    delta = queries[hit_q] - coords[hit_slots]
    return np.einsum("ij,ij->i", delta, delta)


def canonical_pack(
    num_queries: int,
    hit_q: np.ndarray,
    hit_slots: np.ndarray,
    d2: np.ndarray,
    k_row: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack hit pairs into the canonical ``(indices, counts)`` result.

    ``k_row`` gives each query row its own ``K``; the output width is the
    maximum.  The sort key ``(query, d2, slot)`` is unique per pair, so
    the packed result is independent of the order candidates arrived in —
    the property that makes incremental-vs-scratch bit-identity hold.
    """
    k_row = np.asarray(k_row, dtype=np.int64)
    if k_row.shape != (num_queries,):
        raise ValueError("k_row must have one K per query row")
    if np.any(k_row <= 0):
        raise ValueError("every K must be positive")
    width = int(k_row.max()) if num_queries else 0
    indices = np.full((num_queries, width), -1, dtype=np.int64)
    counts = np.zeros(num_queries, dtype=np.int64)
    hit_q = np.asarray(hit_q, dtype=np.int64)
    if hit_q.size == 0:
        return indices, counts
    hit_slots = np.asarray(hit_slots, dtype=np.int64)
    order = np.lexsort((hit_slots, d2, hit_q))
    q = hit_q[order]
    s = hit_slots[order]
    totals = np.bincount(q, minlength=num_queries)
    counts = np.minimum(totals, k_row)
    starts = np.concatenate(([0], np.cumsum(totals)[:-1]))
    pos = np.arange(len(q)) - starts[q]
    keep = pos < k_row[q]
    indices[q[keep], pos[keep]] = s[keep]
    rows = np.nonzero(counts > 0)[0]
    if rows.size:
        pad = np.arange(width)[None, :] >= counts[rows, None]
        first = indices[rows, 0]
        block = indices[rows]
        indices[rows] = np.where(pad, first[:, None], block)
    return indices, counts


def rebuild_from_scratch(
    coords: np.ndarray, alive: np.ndarray
) -> Tuple[KdTree, np.ndarray]:
    """Build a fresh frozen-reference tree over the alive slots.

    Returns the tree plus ``slot_of_row`` mapping tree point rows back to
    dynamic slot ids (the tree is built over the *compacted* alive
    coordinates, in ascending slot order).
    """
    alive = np.asarray(alive, dtype=bool)
    slot_of_row = np.nonzero(alive)[0].astype(np.int64)
    if slot_of_row.size == 0:
        raise ValueError("cannot build a tree over an empty cloud")
    tree = build_kdtree(np.asarray(coords, dtype=np.float64)[slot_of_row])
    return tree, slot_of_row


def scratch_dynamic_query(
    coords: np.ndarray,
    alive: np.ndarray,
    queries: np.ndarray,
    radii: np.ndarray,
    k_row: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-frame ground truth: rebuild, per-step search, canonical pack.

    ``radii`` and ``k_row`` carry one setting per query row (broadcast a
    scalar before calling).  Runs the frozen per-step DFS with no result
    cap so the hit set is exact, then packs canonically.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    radii = np.asarray(radii, dtype=np.float64)
    num_queries = queries.shape[0]
    alive = np.asarray(alive, dtype=bool)
    if not alive.any():
        return canonical_pack(
            num_queries,
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.float64),
            k_row,
        )
    tree, slot_of_row = rebuild_from_scratch(coords, alive)
    hit_q: List[int] = []
    hit_slots: List[int] = []
    for qi in range(num_queries):
        rows = radius_search(tree, queries[qi], float(radii[qi]), max_neighbors=None)
        for row in rows:
            hit_q.append(qi)
            hit_slots.append(int(slot_of_row[row]))
    hq = np.asarray(hit_q, dtype=np.int64)
    hs = np.asarray(hit_slots, dtype=np.int64)
    coords = np.asarray(coords, dtype=np.float64)
    d2 = pair_d2(coords, queries, hq, hs) if hq.size else np.empty(0, np.float64)
    return canonical_pack(num_queries, hq, hs, d2, k_row)
