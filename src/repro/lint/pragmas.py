"""Suppression pragmas: ``# repro: allow[rule-id] -- reason``.

A pragma suppresses findings of the named rule(s):

* **trailing** (code on the same line) — suppresses findings reported on
  that line;
* **standalone** (the line holds only the comment) — suppresses findings
  on the *next* line, for statements too long to carry a trailing
  comment.

Several ids may be listed comma-separated: ``allow[a, b]``.  The reason
after ``--`` is mandatory — a suppression without a written justification
is a :data:`~repro.lint.rules.BAD_PRAGMA` error, and a pragma that ends
up suppressing nothing is an :data:`~repro.lint.rules.UNUSED_PRAGMA`
error, so stale suppressions are cleaned up instead of accumulating.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["Pragma", "scan_pragmas"]

# Matches the whole pragma comment; group 1 = rule-id list, group 2 = the
# reason (may be absent, which scan_pragmas reports as invalid).
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[([^\]]*)\]\s*(?:--\s*(\S.*))?\s*$"
)
# Anything that *looks* like a repro pragma but does not parse — flagged
# rather than silently ignored, so a typo cannot disable a suppression.
_PRAGMA_LIKE_RE = re.compile(r"#\s*repro\s*:")

_ID_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int  # 1-based line the comment sits on
    rule_ids: Tuple[str, ...]
    reason: str
    standalone: bool  # comment-only line => applies to line + 1
    problem: str = ""  # non-empty => malformed (bad-pragma finding)
    used: bool = field(default=False, compare=False)

    @property
    def target_line(self) -> int:
        """The source line whose findings this pragma suppresses."""
        return self.line + 1 if self.standalone else self.line

    def suppresses(self, rule_id: str, line: int) -> bool:
        return not self.problem and rule_id in self.rule_ids and line == self.target_line


def scan_pragmas(source: str) -> List[Pragma]:
    """Extract every repro pragma (valid or malformed) from ``source``.

    Works on real COMMENT tokens, not raw lines, so pragma *examples*
    inside docstrings and string literals are never mistaken for live
    suppressions.  The source must tokenize — the engine only calls this
    after the AST parse has already succeeded.
    """
    pragmas: List[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        text = token.string
        lineno, col = token.start
        standalone = not token.line[:col].strip()
        match = _PRAGMA_RE.search(text)
        if match is None:
            if _PRAGMA_LIKE_RE.search(text):
                pragmas.append(
                    Pragma(
                        line=lineno,
                        rule_ids=(),
                        reason="",
                        standalone=standalone,
                        problem=(
                            "unparseable repro pragma; expected "
                            "'# repro: allow[rule-id] -- reason'"
                        ),
                    )
                )
            continue
        ids = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
        reason = (match.group(2) or "").strip()
        problem = ""
        if not ids:
            problem = "pragma lists no rule ids"
        elif any(not _ID_RE.match(rule_id) for rule_id in ids):
            problem = f"malformed rule id in pragma: {', '.join(ids)}"
        elif not reason:
            problem = "pragma has no reason; append ' -- <why this is safe>'"
        pragmas.append(
            Pragma(
                line=lineno,
                rule_ids=ids,
                reason=reason,
                standalone=standalone,
                problem=problem,
            )
        )
    return pragmas
