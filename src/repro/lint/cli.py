"""Command-line front door: ``python -m repro.lint [paths] [options]``.

Exit status is the CI contract: 0 when no error-severity finding
survives suppression, 1 otherwise (warnings — e.g. ``broad-except`` —
print but do not fail the build).  ``--format json`` emits a stable
machine-readable report (schema pinned by ``tests/test_lint_engine.py``)
for tooling; ``--list-rules`` documents every rule, its severity, and
the bug that motivated it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .engine import ERROR, lint_paths
from .rules import ALL_RULES, ENGINE_RULE_IDS, all_rule_ids

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "repro-lint: AST checks for this repo's concurrency & "
            "determinism contracts (see README 'Invariants & static "
            "analysis')."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings as human-readable lines (default) or one JSON object",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule (including engine-level checks) and exit",
    )
    return parser


def _list_rules(fmt: str) -> int:
    entries = [
        {
            "id": rule.id,
            "severity": rule.severity,
            "description": rule.description,
            "motivation": rule.motivation,
        }
        for rule in ALL_RULES
    ] + [
        {"id": rid, "severity": severity, "description": desc, "motivation": "engine"}
        for rid, severity, desc in ENGINE_RULE_IDS
    ]
    if fmt == "json":
        print(json.dumps({"version": 1, "rules": entries}, indent=2))
        return 0
    width = max(len(e["id"]) for e in entries)
    for entry in entries:
        print(f"{entry['id']:<{width}}  [{entry['severity']}]  {entry['description']}")
        if entry["motivation"] and entry["motivation"] != "engine":
            print(f"{'':<{width}}  motivated by: {entry['motivation']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules(args.format)

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        default = Path("src")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro.lint: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    report = lint_paths(paths, ALL_RULES, known_rule_ids=all_rule_ids())
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"repro.lint: {report.files_checked} file(s) checked, "
            f"{report.errors} error(s), {report.warnings} warning(s)"
        )
        print(summary)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
