"""repro-lint: the repo's concurrency & determinism contracts as a CI gate.

Six PRs of bug history distilled into machine-checked invariants.  Each
rule encodes a contract that was established by fixing a real bug and was
previously enforced only by reviewer memory:

* ``reference-freeze`` — the per-step reference engines are the ground
  truth the equivalence suites pin the vectorized engines against; they
  must never import the engines they validate (ROADMAP standing
  constraint).
* ``cache-truthiness`` — ``LruCache.get()`` results must be miss-tested
  with an unambiguous sentinel, never truthiness (the PR 2 falsy-miss
  bug: a cached ``None``/``0`` recomputed forever).
* ``shared-default-rng`` — layers must not bake a constant-seeded
  generator into ``__init__``/class bodies (the PR 5 Dropout bug:
  stacked layers drawing identical mask streams).
* ``asyncio-discipline`` — no blocking primitives inside ``async def``,
  and no ``Event.clear()``-then-``await wait()`` re-park (the PR 6
  lost-wakeup race).
* ``wall-clock-injection`` — serving/runtime code reads time through an
  injectable clock parameter, so timing-derived behavior stays
  deterministic under test.
* ``finite-input-validation`` — public serving entry points validate
  points/queries/radius before touching the arrays (a NaN row would
  poison a whole merged sweep).
* ``broad-except`` (warn-only) — new ``except Exception`` handlers get
  flagged; load-bearing ones carry a written justification pragma.

Run it::

    python -m repro.lint src/            # exit 1 on violations
    python -m repro.lint --list-rules
    python -m repro.lint src/ --format json

Suppress one finding with a trailing (or immediately preceding
standalone) pragma carrying a written reason::

    from ..runtime.lockstep import X  # repro: allow[reference-freeze] -- why

A pragma without a reason, or one that suppresses nothing, is itself an
error — suppressions cannot silently rot.
"""

from .engine import ERROR, WARNING, Finding, LintReport, ModuleContext, Rule, lint_paths
from .pragmas import Pragma, scan_pragmas
from .rules import ALL_RULES, ENGINE_RULE_IDS, all_rule_ids

__all__ = [
    "ALL_RULES",
    "ENGINE_RULE_IDS",
    "ERROR",
    "Finding",
    "LintReport",
    "ModuleContext",
    "Pragma",
    "Rule",
    "WARNING",
    "all_rule_ids",
    "lint_paths",
    "scan_pragmas",
]
