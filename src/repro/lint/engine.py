"""The rule engine: file walker, AST contexts, suppression, reporting.

:func:`lint_paths` is the one entry point: it expands files/directories
into Python sources, parses each into a :class:`ModuleContext`, runs
every rule over it, applies the suppression pragmas
(:mod:`repro.lint.pragmas`), and folds everything into a
:class:`LintReport` whose :attr:`~LintReport.errors` decide the process
exit code.  Rules are plain objects with an ``id``, a ``severity``, and a
``check(module)`` generator — adding a rule is writing one class and
registering it in :data:`repro.lint.rules.ALL_RULES`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .pragmas import Pragma, scan_pragmas

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "LintReport",
    "ModuleContext",
    "Rule",
    "iter_python_files",
    "lint_paths",
]

ERROR = "error"
WARNING = "warning"

# Findings the engine itself emits (not suppressible — a pragma must not
# be able to silence the pragma checker).
PARSE_ERROR = "parse-error"
BAD_PRAGMA = "bad-pragma"
UNUSED_PRAGMA = "unused-pragma"
UNKNOWN_RULE = "unknown-rule"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a file:line."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = ERROR

    def format(self) -> str:
        tag = "" if self.severity == ERROR else f" ({self.severity})"
        return f"{self.path}:{self.line}: [{self.rule}]{tag} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass
class ModuleContext:
    """One parsed source file, as the rules see it."""

    path: Path
    display_path: str  # the path findings are reported under
    source: str
    lines: List[str]
    tree: ast.Module
    module_name: str  # dotted name resolved by walking __init__.py parents

    _parents: Optional[Dict[int, ast.AST]] = field(default=None, repr=False)

    @property
    def parents(self) -> Dict[int, ast.AST]:
        """``id(child) -> parent`` for every node in the tree (lazy)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ancestors of ``node``, innermost first."""
        current = self.parents.get(id(node))
        while current is not None:
            yield current
            current = self.parents.get(id(current))

    def path_parts(self) -> Tuple[str, ...]:
        return self.path.parts


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id``/``description``/``severity``/``motivation`` and
    implement :meth:`check` as a generator of :class:`Finding`.
    """

    id: str = ""
    description: str = ""
    severity: str = ERROR
    # Which bug/PR established the contract (shown by --list-rules).
    motivation: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            message=message,
            severity=self.severity,
        )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == WARNING)

    @property
    def ok(self) -> bool:
        """True when nothing error-severity survived suppression."""
        return self.errors == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "errors": self.errors,
            "warnings": self.warnings,
            "findings": [f.as_dict() for f in self.findings],
        }


def module_name_for(path: Path) -> str:
    """Dotted module name, resolved by walking ``__init__.py`` parents.

    ``src/repro/core/approx_search.py`` -> ``repro.core.approx_search``
    (``src`` has no ``__init__.py`` so the walk stops there), which is
    what relative-import resolution in the import-graph rules needs.
    """
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated source list."""
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            parts = candidate.parts
            if "__pycache__" in parts:
                continue
            if any(part.startswith(".") and part not in (".", "..") for part in parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    known_rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every rule over one file; returns post-suppression findings."""
    display = str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(PARSE_ERROR, display, 1, f"cannot read file: {exc}")]
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(PARSE_ERROR, display, exc.lineno or 1, f"syntax error: {exc.msg}")
        ]

    module = ModuleContext(
        path=path,
        display_path=display,
        source=source,
        lines=lines,
        tree=tree,
        module_name=module_name_for(path),
    )

    raw: List[Finding] = []
    seen = set()
    for rule in rules:
        for finding in rule.check(module):
            key = (finding.rule, finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                raw.append(finding)

    pragmas = scan_pragmas(source)
    kept: List[Finding] = []
    for finding in raw:
        suppressed = False
        for pragma in pragmas:
            if pragma.suppresses(finding.rule, finding.line):
                pragma.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)

    known = set(known_rule_ids or ()) | {rule.id for rule in rules}
    for pragma in pragmas:
        if pragma.problem:
            kept.append(Finding(BAD_PRAGMA, display, pragma.line, pragma.problem))
            continue
        unknown = [rid for rid in pragma.rule_ids if rid not in known]
        if unknown:
            kept.append(
                Finding(
                    UNKNOWN_RULE,
                    display,
                    pragma.line,
                    f"pragma names unknown rule(s): {', '.join(unknown)}",
                )
            )
        if not pragma.used:
            kept.append(
                Finding(
                    UNUSED_PRAGMA,
                    display,
                    pragma.line,
                    "pragma suppresses nothing on its target line; "
                    "remove it (the contract it excused may have been fixed)",
                )
            )
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    known_rule_ids: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file reachable from ``paths``."""
    report = LintReport()
    for path in iter_python_files([Path(p) for p in paths]):
        report.files_checked += 1
        report.findings.extend(lint_file(path, rules, known_rule_ids))
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
