"""The rule set: this repo's bug history, encoded as AST checks.

Every rule names the PR whose bug motivated it (see CHANGES.md); the
fixtures in ``tests/test_lint_rules.py`` keep each rule honest with a
known-bad example that must fire and a known-good one that must not.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import (
    BAD_PRAGMA,
    ERROR,
    PARSE_ERROR,
    UNKNOWN_RULE,
    UNUSED_PRAGMA,
    WARNING,
    Finding,
    ModuleContext,
    Rule,
)

__all__ = ["ALL_RULES", "ENGINE_RULE_IDS", "all_rule_ids"]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_name(call: ast.Call) -> Optional[str]:
    """Dotted name of ``X`` in ``X.method(...)``; None if not that shape."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


def path_has_part(module: ModuleContext, *names: str) -> bool:
    return any(part in names for part in module.path_parts())


def walk_in_order(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first, source-order traversal (ast.walk is breadth-first)."""
    for child in ast.iter_child_nodes(node):
        yield child
        yield from walk_in_order(child)


def statement_lists(node: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every list-of-statements block under ``node`` (body/orelse/finally)."""
    for sub in ast.walk(node):
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(sub, field_name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def none_check_of_name(test: ast.AST) -> Optional[str]:
    """The name ``x`` if ``test`` is ``x is None`` / ``x is not None``."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and isinstance(test.left, ast.Name)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return test.left.id
    return None


# ----------------------------------------------------------------------
# 1. reference-freeze (ROADMAP standing constraint; PRs 1-4 parity suites)
# ----------------------------------------------------------------------

class ReferenceFreezeRule(Rule):
    id = "reference-freeze"
    description = (
        "Reference engines (kdtree/traversal.py, kdtree/exact.py, "
        "kdtree/build.py, kdtree/dynamic_reference.py, "
        "core/approx_search.py, core/split_tree.py, runtime/topphase.py, "
        "nn/reference.py) must not import the vectorized/tape/incremental "
        "engines they are the ground truth for (runtime.batched, "
        "runtime.lockstep, runtime.treebuild, kdtree.dynamic, "
        "vectorized_top_phase, nn.tape, nn.tensor)."
    )
    motivation = (
        "ROADMAP standing constraint: the per-step reference paths are what "
        "the randomized equivalence suites pin the vectorized engines "
        "against; a reference that leans on the engine under test proves "
        "nothing.  PR 8 extends the freeze to the closure-walking autograd "
        "reference that pins the tape engine's gradients bit for bit; PR 9 "
        "to the per-node tree builders that pin the level-synchronous "
        "runtime.treebuild constructors; PR 10 to the rebuild-from-scratch "
        "parity path that pins the incremental DynamicKdTree fast path."
    )

    FROZEN_SUFFIXES = (
        "kdtree/traversal.py",
        "kdtree/exact.py",
        "kdtree/build.py",
        "kdtree/dynamic_reference.py",
        "core/approx_search.py",
        "core/split_tree.py",
        "runtime/topphase.py",
        "nn/reference.py",
    )
    FORBIDDEN_MODULES = (
        "runtime.batched",
        "runtime.lockstep",
        "runtime.treebuild",
        "kdtree.dynamic",
        "nn.tape",
        "nn.tensor",
    )
    # Importing the reference_top_phase symbol from runtime.topphase is
    # legitimate; only the vectorized entry point is off limits.
    FORBIDDEN_TOPPHASE_SYMBOLS = {"vectorized_top_phase", "*"}
    FORBIDDEN_RUNTIME_SYMBOLS = {
        "batched",
        "lockstep",
        "treebuild",
        "BatchedBallQuery",
        "VectorizedLockstep",
        "vectorized_top_phase",
        "vectorized_build_kdtree",
        "VectorizedSplitTree",
        "euler_tour",
    }
    # The autograd reference must not lean on the tape engine it pins:
    # neither the submodules nor the production Tensor / tape helpers.
    FORBIDDEN_NN_SYMBOLS = {
        "tape",
        "tensor",
        "Tensor",
        "no_grad",
        "tape_length",
        "reset_tape",
        "*",
    }
    # The rebuild-from-scratch dynamic reference must not lean on the
    # incremental overlay it pins (the frozen builders/searches it *may*
    # use all live beside it in already-frozen modules).
    FORBIDDEN_KDTREE_SYMBOLS = {
        "dynamic",
        "DynamicKdTree",
        "DynamicStats",
        "DirtyRegionDigest",
        "*",
    }

    def applies(self, module: ModuleContext) -> bool:
        posix = module.path.as_posix()
        return any(posix.endswith(suffix) for suffix in self.FROZEN_SUFFIXES)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self.applies(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._forbidden_module(alias.name):
                        yield self.finding(
                            module,
                            node,
                            f"frozen reference module imports vectorized "
                            f"engine {alias.name!r}",
                        )
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve(module, node)
                if target is None:
                    continue
                if self._forbidden_module(target):
                    yield self.finding(
                        module,
                        node,
                        f"frozen reference module imports vectorized "
                        f"engine {target!r}",
                    )
                    continue
                names = {alias.name for alias in node.names}
                if target.endswith("runtime.topphase") or target == "topphase":
                    bad = names & self.FORBIDDEN_TOPPHASE_SYMBOLS
                elif target.endswith("runtime") or target == "runtime":
                    bad = names & self.FORBIDDEN_RUNTIME_SYMBOLS
                elif target.endswith("nn") or target == "nn":
                    bad = names & self.FORBIDDEN_NN_SYMBOLS
                elif target.endswith("kdtree") or target == "kdtree":
                    bad = names & self.FORBIDDEN_KDTREE_SYMBOLS
                else:
                    bad = set()
                if bad:
                    yield self.finding(
                        module,
                        node,
                        f"frozen reference module imports vectorized "
                        f"symbol(s) {', '.join(sorted(bad))} from {target!r}",
                    )

    def _forbidden_module(self, name: str) -> bool:
        return any(
            name == forbidden or name.endswith("." + forbidden)
            for forbidden in self.FORBIDDEN_MODULES
        )

    def _resolve(self, module: ModuleContext, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted target of a (possibly relative) from-import."""
        if node.level == 0:
            return node.module
        parts = module.module_name.split(".") if module.module_name else []
        # level=1 strips the module itself (leaving its package), each
        # extra level strips one more package.
        if len(parts) < node.level:
            return node.module  # unresolvable; fall back to the literal
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)


# ----------------------------------------------------------------------
# 2. cache-truthiness (PR 2: LruCache falsy-miss sentinel bug)
# ----------------------------------------------------------------------

class CacheTruthinessRule(Rule):
    id = "cache-truthiness"
    description = (
        "Never truthiness-test or or-chain an LRU cache .get() result; a "
        "legitimately cached falsy value (None, 0, empty) reads as a miss "
        "and is recomputed forever.  Use .get(key, SENTINEL) and compare "
        "against the sentinel."
    )
    motivation = (
        "CHANGES.md PR 2: cached falsy results were silently recomputed "
        "(and double-counted as misses) until LruCache.get grew the "
        "default= sentinel idiom."
    )

    _CACHE_NAME_RE = re.compile(r"cache|lru", re.IGNORECASE)
    # The SearchSession LRU fields, which don't carry "cache" in the name.
    _CACHE_ATTRS = {"results", "trees", "split_trees"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for call in self._truthiness_positions(module.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "get"):
                continue
            recv = receiver_name(call)
            if recv is None:
                continue
            last = recv.split(".")[-1]
            if self._CACHE_NAME_RE.search(last) or last in self._CACHE_ATTRS:
                yield self.finding(
                    module,
                    call,
                    f"truthiness test on {recv}.get(...) conflates a cached "
                    f"falsy value with a miss; use "
                    f".get(key, SENTINEL) and compare 'is SENTINEL'",
                )

    def _truthiness_positions(self, tree: ast.Module) -> Iterator[ast.AST]:
        """Expressions evaluated only for their truthiness."""
        roots: List[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.If, ast.While, ast.IfExp, ast.Assert)):
                roots.append(node.test)
            elif isinstance(node, ast.comprehension):
                roots.extend(node.ifs)
            elif isinstance(node, ast.BoolOp):
                # `x = cache.get(k) or default` and friends: every operand
                # of and/or is truthiness-evaluated wherever it appears.
                roots.extend(node.values)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                roots.append(node.operand)
        seen: Set[int] = set()
        for root in roots:
            if id(root) not in seen:
                seen.add(id(root))
                yield root


# ----------------------------------------------------------------------
# 3. shared-default-rng (PR 5: Dropout identical mask streams)
# ----------------------------------------------------------------------

class SharedDefaultRngRule(Rule):
    id = "shared-default-rng"
    description = (
        "Under nn/ and models/, do not construct "
        "np.random.default_rng(<constant>) in __init__ bodies, class "
        "bodies, or parameter defaults: every instance draws the identical "
        "stream.  Spawn independent streams from a SeedSequence (or take "
        "the generator as a parameter)."
    )
    motivation = (
        "CHANGES.md PR 5: default-constructed Dropout layers each built "
        "default_rng(0), so stacked layers masked the same positions every "
        "step."
    )

    def applies(self, module: ModuleContext) -> bool:
        return path_has_part(module, "nn", "models")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self.applies(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]:
                    for call in self._matching_calls(default):
                        yield self._emit(module, call, "a parameter default")
                if node.name == "__init__":
                    for call in self._matching_calls(node):
                        yield self._emit(module, call, "an __init__ body")
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue  # methods are handled (or exempt) above
                    for call in self._matching_calls(stmt):
                        yield self._emit(module, call, "a class body")

    def _emit(self, module: ModuleContext, call: ast.Call, where: str) -> Finding:
        return self.finding(
            module,
            call,
            f"constant-seeded default_rng constructed in {where}: every "
            f"instance shares one stream (spawn from a module-level "
            f"SeedSequence instead)",
        )

    def _matching_calls(self, node: ast.AST) -> Iterator[ast.Call]:
        nodes = [node] if isinstance(node, ast.Call) else []
        nodes.extend(n for n in ast.walk(node) if isinstance(n, ast.Call))
        seen: Set[int] = set()
        for call in nodes:
            if id(call) in seen:
                continue
            seen.add(id(call))
            name = dotted_name(call.func)
            if name is None or name.split(".")[-1] != "default_rng":
                continue
            if call.args and all(
                isinstance(arg, ast.Constant) for arg in call.args
            ):
                yield call


# ----------------------------------------------------------------------
# 4. asyncio-discipline (PR 6: frontend lost-wakeup + blocking primitives)
# ----------------------------------------------------------------------

class AsyncioDisciplineRule(Rule):
    id = "asyncio-discipline"
    description = (
        "Inside async def: no blocking primitives (time.sleep, "
        "Queue.get/put, un-awaited Event.wait), and no "
        "clear()-then-await-wait() re-park (a set() landing between them "
        "is a lost wakeup)."
    )
    motivation = (
        "CHANGES.md PR 6: the frontend's broadcast-Event backpressure had "
        "exactly these races — a clear()-before-wait() re-park swallowed "
        "concurrent set()s and parked the last submitters forever."
    )

    _QUEUEISH_RE = re.compile(r"queue|inbox|outbox|mailbox", re.IGNORECASE)
    _BLOCKING_QUEUE_METHODS = {"get", "put", "join"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_fn(module, node)

    # -- blocking calls -------------------------------------------------
    def _check_async_fn(
        self, module: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        awaited: Set[int] = set()
        for sub in self._own_nodes(fn):
            if isinstance(sub, ast.Await):
                for inner in ast.walk(sub):
                    awaited.add(id(inner))
        for sub in self._own_nodes(fn):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name == "time.sleep" or name == "sleep":
                yield self.finding(
                    module,
                    sub,
                    "time.sleep blocks the event loop inside async def; "
                    "use 'await asyncio.sleep(...)'",
                )
                continue
            if not isinstance(sub.func, ast.Attribute):
                continue
            attr = sub.func.attr
            recv = receiver_name(sub) or ""
            last = recv.split(".")[-1] if recv else ""
            if attr == "wait" and id(sub) not in awaited:
                yield self.finding(
                    module,
                    sub,
                    f"un-awaited {recv or '<expr>'}.wait() inside async def "
                    f"is either a blocking threading wait or a forgotten "
                    f"await",
                )
            elif (
                attr in self._BLOCKING_QUEUE_METHODS
                and last
                and self._QUEUEISH_RE.search(last)
                and id(sub) not in awaited
            ):
                yield self.finding(
                    module,
                    sub,
                    f"blocking {recv}.{attr}() inside async def stalls the "
                    f"event loop; use an asyncio queue (awaited) or run in "
                    f"an executor",
                )
        yield from self._check_lost_wakeup(module, fn)

    # -- clear()-then-await-wait() --------------------------------------
    def _check_lost_wakeup(
        self, module: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for block in statement_lists(fn):
            for first, second in zip(block, block[1:]):
                recv = self._clear_receiver(first)
                if recv is None:
                    continue
                if self._awaits_wait_on(second, recv):
                    yield self.finding(
                        module,
                        first,
                        f"{recv}.clear() immediately before awaiting "
                        f"{recv}.wait() re-parks past a concurrent set() — "
                        f"the PR 6 lost-wakeup shape; wait first, clear "
                        f"after the wakeup",
                    )

    @staticmethod
    def _clear_receiver(stmt: ast.stmt) -> Optional[str]:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "clear"
        ):
            return receiver_name(stmt.value)
        return None

    @staticmethod
    def _awaits_wait_on(stmt: ast.stmt, recv: str) -> bool:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Await):
                continue
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "wait"
                    and receiver_name(inner) == recv
                ):
                    return True
        return False

    @staticmethod
    def _own_nodes(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes of ``fn`` excluding nested function/lambda bodies.

        A nested sync def runs whenever it is *called*, not while the
        coroutine is suspended, so its blocking calls are its own
        business.
        """
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# 5. wall-clock-injection (PRs 5-6: injectable clocks keep serving
#    deterministic under test)
# ----------------------------------------------------------------------

class WallClockInjectionRule(Rule):
    id = "wall-clock-injection"
    description = (
        "Under serve/ and runtime/, never call time.time / "
        "time.perf_counter / time.monotonic directly: take an injectable "
        "clock parameter (clock=time.perf_counter as a *default* is the "
        "allowlisted idiom) or fall back only under an 'is None' check of "
        "an injectable parameter."
    )
    motivation = (
        "CHANGES.md PRs 5-6: ServiceStats latency/throughput numbers and "
        "heartbeat staleness are test-pinned only because every time "
        "source is injectable; a direct call re-introduces "
        "nondeterminism."
    )

    _CLOCK_CALLS = {"time.time", "time.perf_counter", "time.monotonic"}
    _BARE_CLOCKS = {"perf_counter", "monotonic"}

    def applies(self, module: ModuleContext) -> bool:
        return path_has_part(module, "serve", "runtime")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self.applies(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name not in self._CLOCK_CALLS and name not in self._BARE_CLOCKS:
                continue
            if self._is_none_fallback(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"direct {name}() call; thread an injectable clock "
                f"parameter through instead (default it to the time "
                f"function — references in defaults are fine)",
            )

    def _is_none_fallback(self, module: ModuleContext, call: ast.Call) -> bool:
        """``now = time.f() if now is None else now`` (or the if-stmt form).

        The one place a direct call is legitimate: the fallback arm for
        an optional injectable parameter.
        """
        for parent in module.parent_chain(call):
            if isinstance(parent, ast.IfExp) and none_check_of_name(parent.test):
                return True
            if isinstance(parent, ast.If) and none_check_of_name(parent.test):
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False


# ----------------------------------------------------------------------
# 6. finite-input-validation (PR 6: submit-time non-finite rejection)
# ----------------------------------------------------------------------

class FiniteInputValidationRule(Rule):
    id = "finite-input-validation"
    description = (
        "Public serve/ entry points taking points/queries/radius must run "
        "them through validate_points/validate_queries/validate_settings "
        "before any direct array use (forwarding whole to another entry "
        "point is fine — the callee is checked too)."
    )
    motivation = (
        "CHANGES.md PR 6: a NaN query row used to error the whole merged "
        "sweep and settle every co-queued same-cloud ticket with its "
        "exception; validation must fail the one bad caller at submit "
        "time."
    )

    _VALIDATORS: Dict[str, str] = {
        "validate_points": "points",
        "validate_queries": "queries",
        "validate_settings": "radius",
    }
    _TRACKED = ("points", "queries", "radius")

    def applies(self, module: ModuleContext) -> bool:
        return path_has_part(module, "serve")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self.applies(module):
            return
        yield from self._check_body(module, module.tree.body, public=True)

    def _check_body(
        self, module: ModuleContext, body: Sequence[ast.stmt], public: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                yield from self._check_body(
                    module, stmt.body, public and not stmt.name.startswith("_")
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    public
                    and not stmt.name.startswith("_")
                    and not stmt.name.startswith("validate")
                ):
                    yield from self._check_function(module, stmt)

    def _check_function(
        self, module: ModuleContext, fn: ast.AST
    ) -> Iterator[Finding]:
        args = fn.args
        params = {
            a.arg
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        }
        tracked = [p for p in self._TRACKED if p in params]
        if not tracked:
            return
        validated_at: Dict[str, Tuple[int, int]] = {}
        for node in walk_in_order(fn):
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                short = callee.split(".")[-1] if callee else ""
                if short in self._VALIDATORS:
                    param = self._VALIDATORS[short]
                    if param in tracked and param not in validated_at:
                        validated_at[param] = (node.lineno, node.col_offset)
        for node in walk_in_order(fn):
            if not (
                isinstance(node, ast.Name)
                and node.id in tracked
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            param = node.id
            pos = (node.lineno, node.col_offset)
            if param in validated_at and pos >= validated_at[param]:
                continue
            if self._is_forwarded(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"public serving entry point uses {param!r} before "
                f"validate_{'settings' if param == 'radius' else param}(); "
                f"a non-finite value here poisons the whole merged sweep",
            )
            tracked = [p for p in tracked if p != param]  # one report per param

    def _is_forwarded(self, module: ModuleContext, name: ast.Name) -> bool:
        """Is this use just passing the param onward (or validating it)?

        Allowed: an argument to a validator, to a bare-name local/module
        function, or to a ``self.*`` method — those callees are linted
        themselves.  Disallowed: direct array work (np.*, methods *on*
        the value, subscripts, arithmetic).
        """
        parent = module.parents.get(id(name))
        if isinstance(parent, ast.keyword):
            parent = module.parents.get(id(parent))
        if not isinstance(parent, ast.Call):
            return False
        if name is parent.func or (
            isinstance(parent.func, ast.Attribute)
            and name in ast.walk(parent.func)
        ):
            return False  # a method *on* the value is a use, not a forward
        callee = parent.func
        if isinstance(callee, ast.Name):
            return True
        chain = dotted_name(callee)
        return chain is not None and chain.split(".")[0] == "self"


# ----------------------------------------------------------------------
# 7. broad-except (warn-only stub; audit rides along in this PR)
# ----------------------------------------------------------------------

class BroadExceptRule(Rule):
    id = "broad-except"
    severity = WARNING
    description = (
        "except Exception / bare except handlers get flagged (warn-only); "
        "load-bearing ones carry '# repro: allow[broad-except] -- <why>' "
        "so the justification lives next to the catch."
    )
    motivation = (
        "Audit rider: broad capture is load-bearing in exactly four places "
        "(worker error containment, frontend caller fan-out); anywhere "
        "else it hides bugs the equivalence suites would have caught."
    )

    _BROAD = {"Exception", "BaseException"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except swallows everything including "
                    "KeyboardInterrupt; catch something narrower or justify "
                    "with a pragma",
                )
                continue
            exprs = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for expr in exprs:
                name = dotted_name(expr)
                if name and name.split(".")[-1] in self._BROAD:
                    yield self.finding(
                        module,
                        node,
                        f"broad 'except {name}' hides unrelated failures; "
                        f"narrow the catch or justify with "
                        f"'# repro: allow[broad-except] -- <why>'",
                    )
                    break


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_RULES: Tuple[Rule, ...] = (
    ReferenceFreezeRule(),
    CacheTruthinessRule(),
    SharedDefaultRngRule(),
    AsyncioDisciplineRule(),
    WallClockInjectionRule(),
    FiniteInputValidationRule(),
    BroadExceptRule(),
)

# Findings the engine emits on its own; listed so --list-rules documents
# them and pragmas naming them resolve as known (though engine findings
# are deliberately not suppressible).
ENGINE_RULE_IDS: Tuple[Tuple[str, str, str], ...] = (
    (PARSE_ERROR, ERROR, "file cannot be read or parsed"),
    (BAD_PRAGMA, ERROR, "malformed suppression pragma (missing reason, bad id)"),
    (UNUSED_PRAGMA, ERROR, "pragma that no longer suppresses anything"),
    (UNKNOWN_RULE, ERROR, "pragma naming a rule id that does not exist"),
)


def all_rule_ids() -> List[str]:
    return [rule.id for rule in ALL_RULES] + [rid for rid, _, _ in ENGINE_RULE_IDS]
