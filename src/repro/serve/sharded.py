"""The sharded multi-process serving tier: dispatcher, shards, recovery.

:class:`QueryService` + :class:`~repro.serve.AsyncQueryFrontend` coalesce
brilliantly but live in one process behind one GIL: a flood of *distinct*
clouds flushes its digest groups serially.  :class:`ShardedQueryService`
is the horizontal promotion — a dispatcher in the caller's process routes
every request **by geometry digest** to one of N long-lived serving
worker processes (:mod:`repro.serve.worker`), each owning a shard of the
registered clouds and serving its batches through its own in-process
coalescing :class:`QueryService`.  Distinct clouds land on distinct
shards and flush genuinely in parallel; same-cloud requests still land on
the same shard and still coalesce into one merged sweep, so the sharded
tier's results are bit-identical to the single-process service by
construction (the sharded parity suite pins this).

The ``register(points) -> handle`` API is the repeat-caller fast path: a
registered cloud is shipped to its shard once and pinned in the worker's
tree cache, after which submits for that cloud (by handle, or by points
whose digest matches) carry only the query batch — no geometry re-ship,
and no per-submit re-hash when the handle is used directly.

Failure recovery follows the master/worker discipline of RD-MCL's worker
suite: every worker carries a heartbeat (written by a side thread, so a
long sweep still reads alive); the dispatcher's flush loop age-checks the
heartbeat and process liveness of every shard it is waiting on, and a
dead worker is respawned in place — its shard's registered clouds are
re-shipped and its orphaned in-flight batches requeued onto the fresh
incarnation.  Mailboxes are per-incarnation (a reply that raced the kill
dies with the old outbox and the batch is simply served again —
deterministic serving makes the do-over bit-identical), so a crashed
worker can never poison a queue another shard depends on.  Per-shard
:class:`~repro.serve.ServiceStats` roll up into :class:`ShardedStats`,
which also counts respawns and requeues.
"""

from __future__ import annotations

import itertools
import queue
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..runtime.session import geometry_digest
from ..runtime.sweep import WorkerProcess
from .service import (
    QueryTicket,
    ServiceStats,
    validate_points,
    validate_queries,
    validate_settings,
)
from .worker import BEAT_INTERVAL, serving_worker_main

__all__ = ["ShardedQueryService", "ShardedStats"]


@dataclass
class ShardedStats:
    """Per-shard :class:`ServiceStats` plus tier-level recovery counters.

    The per-shard entries are dispatcher-maintained (accumulated from
    batch-reply deltas), so they survive worker respawns; aggregate
    properties mirror the :class:`ServiceStats` names so tier-level code
    can read either interchangeably.  ``serve_time`` sums *worker-side*
    serve time across shards (total serving CPU, not wall clock — shards
    serve in parallel); ``wait_time`` is dispatcher-measured
    submit-to-settle latency, so it includes shipping and queueing.
    """

    shards: List[ServiceStats] = field(default_factory=list)
    respawns: int = 0  # dead workers replaced with a fresh process
    requeued_requests: int = 0  # orphaned in-flight requests re-dispatched

    def _sum(self, attr: str) -> float:
        return sum(getattr(s, attr) for s in self.shards)

    @property
    def requests(self) -> int:
        return int(self._sum("requests"))

    @property
    def queries(self) -> int:
        return int(self._sum("queries"))

    @property
    def sweeps(self) -> int:
        return int(self._sum("sweeps"))

    @property
    def flushes(self) -> int:
        return int(self._sum("flushes"))

    @property
    def failed_requests(self) -> int:
        return int(self._sum("failed_requests"))

    @property
    def serve_time(self) -> float:
        return float(self._sum("serve_time"))

    @property
    def wait_time(self) -> float:
        return float(self._sum("wait_time"))

    @property
    def max_coalesced(self) -> int:
        return max((s.max_coalesced for s in self.shards), default=0)

    @property
    def coalesce_factor(self) -> float:
        return self.requests / self.sweeps if self.sweeps else 0.0

    @property
    def mean_wait(self) -> float:
        return self.wait_time / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Requests per second of summed worker serve time."""
        return self.requests / self.serve_time if self.serve_time else 0.0


class _PendingJob:
    __slots__ = ("job_id", "digest", "points", "queries", "ticket", "kind")

    def __init__(self, job_id, digest, points, queries, ticket, kind="static"):
        self.job_id = job_id
        self.digest = digest  # geometry digest, or the dynamic handle
        self.points = points  # None once the digest is registered
        self.queries = queries
        self.ticket = ticket
        self.kind = kind

    def payload(self) -> Tuple:
        t = self.ticket
        base = (
            self.job_id,
            self.digest,
            self.points,
            self.queries,
            t.radius,
            t.max_neighbors,
        )
        return base if self.kind == "static" else base + (self.kind,)


class ShardedQueryService:
    """Digest-sharded multi-process serving tier (see module docs).

    Parameters
    ----------
    num_workers:
        Serving worker processes (= shards).  Routing is static:
        ``shard(digest) = int(digest[:16], 16) % num_workers``.
    heartbeat_timeout:
        Seconds without a heartbeat (or other sign of life) after which a
        worker the flush is waiting on is declared dead and respawned;
        ``None`` disables staleness checks and trusts process liveness
        alone.  A SIGKILL-ed worker is caught by liveness immediately
        either way.
    poll_interval:
        Result-queue poll timeout inside :meth:`flush`; also the cadence
        of dead-worker checks while waiting.
    clock:
        Monotonic time source for the dispatcher-side latency stats
        (injectable for tests, mirroring :class:`QueryService`).
    ctx:
        ``multiprocessing`` context override (platform default otherwise).
    """

    def __init__(
        self,
        num_workers: int = 2,
        heartbeat_timeout: Optional[float] = 10.0,
        poll_interval: float = 0.02,
        beat_interval: float = BEAT_INTERVAL,
        clock: Callable[[], float] = time.perf_counter,
        ctx=None,
    ):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.num_workers = int(num_workers)
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = float(poll_interval)
        self.stats = ShardedStats(
            shards=[ServiceStats() for _ in range(self.num_workers)]
        )
        self._clock = clock
        import multiprocessing

        self._ctx = ctx if ctx is not None else multiprocessing.get_context()
        # One WorkerProcess per shard, each with its own per-incarnation
        # inbox/outbox pair (a shared result queue would hang the whole
        # tier if one worker died holding its write lock — see
        # WorkerProcess's docs).
        self._workers = [
            WorkerProcess(
                serving_worker_main,
                args=(slot, beat_interval),
                name=f"serve-shard-{slot}",
                ctx=self._ctx,
            )
            for slot in range(self.num_workers)
        ]
        self._registered: Dict[str, np.ndarray] = {}
        # Dynamic clouds: handle -> (state-only shadow replica, worker
        # maintenance mode).  The shadow applies every update before it
        # ships — validating it — and is the state source for respawn.
        self._dynamic: Dict[str, Tuple[object, str]] = {}
        self._dynamic_seq = itertools.count()
        self._pending: List[_PendingJob] = []
        self._job_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._closed = False
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        try:
            if exc_type is None:
                self.flush()
        finally:
            self.close()

    @property
    def pending(self) -> int:
        """Requests queued but not yet dispatched/served."""
        return len(self._pending)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("sharded service is closed")

    def _slot_for(self, digest: str) -> int:
        return int(digest[:16], 16) % self.num_workers

    # ------------------------------------------------------------------
    def register(self, points: np.ndarray) -> str:
        """Pin a cloud on its shard; returns its digest handle.

        The cloud ships to the owning worker once (and its K-d tree is
        built there eagerly), so subsequent submits — by handle, or by
        points hashing to the same digest — carry only queries.
        Registering the same cloud again is a no-op returning the same
        handle.
        """
        self._check_open()
        points = validate_points(points)
        digest = geometry_digest(points)
        if digest not in self._registered:
            self._registered[digest] = points
            slot = self._slot_for(digest)
            self._ensure_alive(slot)
            self._workers[slot].send(("register", digest, points))
        return digest

    def register_dynamic(
        self,
        points: Optional[np.ndarray] = None,
        maintenance: str = "incremental",
    ) -> str:
        """Register a mutable cloud on its shard; returns its handle.

        The handle is stable across mutations (initial content digest
        folded with a registration sequence number), so routing is static
        — every update and submit for this cloud lands on the same shard.
        The dispatcher keeps a **state-only shadow replica** (coordinates,
        alive bits, digest — no index): it validates updates before they
        ship and is the snapshot a respawned worker is rebuilt from.
        """
        self._check_open()
        points = validate_points(points) if points is not None else None
        from ..kdtree.dynamic import DynamicKdTree
        from ..runtime.session import dynamic_handle

        shadow = DynamicKdTree(points, maintenance="state")
        handle = dynamic_handle(shadow.digest, next(self._dynamic_seq))
        slot = self._slot_for(handle)
        self._ensure_alive(slot)
        coords, alive = shadow.state()
        self._workers[slot].send(
            ("register_dynamic", handle, coords, alive, maintenance)
        )
        self._dynamic[handle] = (shadow, maintenance)
        return handle

    def update(self, handle: str, inserts=None, removes=None) -> str:
        """Route one frame of mutations to the owning shard; returns the
        cloud's new content digest.

        Removes apply before inserts (the shared frame contract).  The
        mutations hit the dispatcher's shadow replica first — a malformed
        frame (unknown/dead slot, non-finite insert) raises *here*, in
        the caller, and never reaches the worker — then ship as an
        ``update_handle`` message, FIFO-ordered after the registration
        and before any later batch, i.e. applied between flushes.
        """
        self._check_open()
        if handle not in self._dynamic:
            raise KeyError(f"unknown dynamic handle {handle!r}")
        inserts = validate_points(inserts) if inserts is not None else None
        if removes is not None:
            removes = np.asarray(removes, dtype=np.int64)
        shadow, _ = self._dynamic[handle]
        if removes is not None:
            shadow.remove(removes)
        if inserts is not None:
            shadow.insert(inserts)
        slot = self._slot_for(handle)
        self._ensure_alive(slot)
        self._workers[slot].send(("update_handle", handle, inserts, removes))
        return shadow.digest

    def submit_dynamic(
        self,
        handle: str,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
    ) -> QueryTicket:
        """Queue one request against a registered dynamic cloud.

        Served by the owning shard against the cloud state at its flush
        (every update shipped before this submit is applied first —
        inbox FIFO), with the canonical dynamic result contract.
        """
        self._check_open()
        if handle not in self._dynamic:
            raise KeyError(f"unknown dynamic handle {handle!r}")
        return self._enqueue(handle, None, queries, radius, max_neighbors, "dynamic")

    def submit(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
    ) -> QueryTicket:
        """Queue one request by cloud; returns its ticket.

        Validation happens here, exactly as in
        :meth:`QueryService.submit` — a malformed or non-finite request
        fails its own caller instead of travelling to a worker.
        """
        self._check_open()
        points = validate_points(points)
        digest = geometry_digest(points)
        ship = None if digest in self._registered else points
        return self._enqueue(digest, ship, queries, radius, max_neighbors)

    def submit_handle(
        self,
        handle: str,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
    ) -> QueryTicket:
        """Queue one request against a :meth:`register`-ed cloud handle.

        The repeat-caller fast path: no geometry accompanies the request
        and nothing is re-hashed.
        """
        self._check_open()
        if handle not in self._registered:
            raise KeyError(f"unknown cloud handle {handle!r}; register() it first")
        return self._enqueue(handle, None, queries, radius, max_neighbors)

    def _enqueue(
        self, digest, points, queries, radius, max_neighbors, kind="static"
    ) -> QueryTicket:
        validate_settings(radius, max_neighbors)
        queries = validate_queries(queries)
        ticket = QueryTicket(float(radius), int(max_neighbors), self._clock())
        self._pending.append(
            _PendingJob(next(self._job_ids), digest, points, queries, ticket, kind)
        )
        return ticket

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Serve everything queued; returns the merged sweeps executed.

        Pending requests are grouped by shard and dispatched as one batch
        message per shard; the shards serve their batches concurrently
        while this loop demuxes replies onto tickets as they arrive.  If
        a worker dies mid-flush its shard is respawned, re-registered,
        and its orphaned batches requeued — the flush still settles every
        ticket.
        """
        self._check_open()
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        by_slot: Dict[int, List[_PendingJob]] = {}
        for job in batch:
            by_slot.setdefault(self._slot_for(job.digest), []).append(job)
        outstanding: Dict[int, Tuple[int, List[_PendingJob]]] = {}
        for slot, jobs in by_slot.items():
            self._ensure_alive(slot)
            batch_id = next(self._batch_ids)
            outstanding[batch_id] = (slot, jobs)
            self._workers[slot].send(
                ("batch", batch_id, [job.payload() for job in jobs])
            )
        executed = 0
        while outstanding:
            # Round-robin the shards we are waiting on, splitting the
            # poll budget between their (per-incarnation) outboxes; a
            # full quiet round triggers the dead-worker sweep.
            waiting = sorted({slot for slot, _ in outstanding.values()})
            progressed = False
            for slot in waiting:
                try:
                    message = self._workers[slot].receive(
                        timeout=self.poll_interval / len(waiting)
                    )
                except queue.Empty:
                    continue
                except (OSError, ValueError, RuntimeError):
                    continue  # outbox torn down under us (racing kill)
                if not message or message[0] != "result":
                    continue
                _, _, batch_id, results, delta = message
                entry = outstanding.pop(batch_id, None)
                if entry is None:
                    continue  # stale reply for an already-settled batch
                progressed = True
                executed += self._settle(entry[0], entry[1], results, delta)
            if not progressed and outstanding:
                self._recover_dead(outstanding)
        return executed

    def _settle(self, slot, jobs, results, delta) -> int:
        """Demux one batch reply onto tickets; fold into per-shard stats."""
        now = self._clock()
        shard = self.stats.shards[slot]
        jobs_by_id = {job.job_id: job for job in jobs}
        served = 0
        for job_id, indices, counts, error in results:
            job = jobs_by_id.get(job_id)
            if job is None:
                continue
            ticket = job.ticket
            if error is not None:
                ticket.error = error
                shard.failed_requests += 1
            else:
                ticket.indices = indices
                ticket.counts = counts
                ticket.served_at = now
                shard.wait_time += now - ticket.submitted_at
                shard.requests += 1
                shard.queries += len(job.queries)
                served += 1
        shard.sweeps += delta["sweeps"]
        shard.serve_time += delta["serve_time"]
        shard.max_coalesced = max(shard.max_coalesced, delta["max_coalesced"])
        if served:
            shard.flushes += 1
        return int(delta["sweeps"])

    # ------------------------------------------------------------------
    def _worker_ok(self, slot: int) -> bool:
        worker = self._workers[slot]
        if not worker.is_alive():
            return False
        if self.heartbeat_timeout is not None:
            return worker.heartbeat_age() < self.heartbeat_timeout
        return True

    def _ensure_alive(self, slot: int) -> None:
        """Respawn a shard found dead *between* flushes (no requeue needed)."""
        if not self._worker_ok(slot):
            self._respawn(slot)

    def _respawn(self, slot: int) -> None:
        self.stats.respawns += 1
        self._workers[slot].respawn()
        # Rebuild the fresh incarnation's shard state: every registered
        # cloud this shard owns is re-shipped (inbox FIFO guarantees the
        # re-registrations land before any requeued batch).  Dynamic
        # clouds ship their *current* shadow snapshot — slot space and
        # digest are pure functions of it, so the replica the worker
        # rebuilds is indistinguishable from the lost one.
        for digest, points in self._registered.items():
            if self._slot_for(digest) == slot:
                self._workers[slot].send(("register", digest, points))
        for handle, (shadow, maintenance) in self._dynamic.items():
            if self._slot_for(handle) == slot:
                coords, alive = shadow.state()
                self._workers[slot].send(
                    ("register_dynamic", handle, coords, alive, maintenance)
                )

    def _recover_dead(self, outstanding: Dict[int, Tuple[int, List[_PendingJob]]]) -> None:
        """Respawn dead shards we are waiting on; requeue their batches."""
        waiting_on = {slot for slot, _ in outstanding.values()}
        for slot in waiting_on:
            if self._worker_ok(slot):
                continue
            self._respawn(slot)
            for batch_id, (owner, jobs) in outstanding.items():
                if owner != slot:
                    continue
                self.stats.requeued_requests += len(jobs)
                self._workers[slot].send(
                    ("batch", batch_id, [job.payload() for job in jobs])
                )

    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (gracefully, then by force) and tear down.

        Pending unflushed requests are settled with an error so no caller
        blocks on a ticket that can never be served.
        """
        if self._closed:
            return
        self._closed = True
        for job in self._pending:
            job.ticket.error = RuntimeError("sharded service closed before flush")
        self._pending = []
        for worker in self._workers:
            worker.stop(timeout=timeout)
