"""The synchronous serving core: queue, coalesce, merge-sweep, demux.

:class:`QueryService` turns a stream of independent ball-query requests —
each a ``(points, queries, radius, K)`` tuple from some caller — into as
few merged frontier sweeps as the stream allows.  Requests accumulate in
an arrival-ordered queue; :meth:`QueryService.flush` groups the queue by
**geometry digest** (same cloud ⇒ same K-d tree, built or fetched once
through the shared :class:`~repro.runtime.session.SearchSession`),
concatenates each group's query batches with per-query radii and a
request-id vector, answers the whole group with one
:meth:`~repro.runtime.batched.BatchedBallQuery.query_merged` advance, and
demuxes the per-request results back onto the callers' tickets.

Coalescing is a pure batching transform: row independence of the merged
sweep makes every served result bit-identical to running the request
alone (``tests/test_serve.py`` pins this).  What changes is the cost —
one Python-level frontier advance per *group* instead of per *request* —
which is where the ≥3x serving throughput over sequential submission
comes from (``benchmarks/test_serve_perf.py``).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..runtime.batched import BatchedBallQuery
from ..runtime.session import SearchSession, geometry_digest

__all__ = [
    "QueryService",
    "QueryTicket",
    "ServiceStats",
    "validate_points",
    "validate_queries",
    "validate_settings",
]


def validate_points(points: np.ndarray) -> np.ndarray:
    """Validate one request's cloud: float64, ``(N >= 1, 3)``, finite.

    Shared by :meth:`QueryService.submit` and the sharded dispatcher's
    ``register``/``submit`` so a cloud rejected by one tier is rejected
    identically by the other.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
        raise ValueError(f"points must be (N, 3) with N >= 1, got {points.shape}")
    if not np.isfinite(points).all():
        raise ValueError("points must be finite (no NaN/inf coordinates)")
    return points


def validate_queries(queries: np.ndarray) -> np.ndarray:
    """Validate one request's query batch: float64, ``(M, 3)``, finite."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if queries.ndim != 2 or queries.shape[1] != 3:
        raise ValueError(f"queries must be (M, 3), got {queries.shape}")
    if not np.isfinite(queries).all():
        raise ValueError("queries must be finite (no NaN/inf coordinates)")
    return queries


def validate_settings(radius: float, max_neighbors: int) -> None:
    """Validate one request's ``(radius, K)`` setting."""
    if not np.isfinite(radius) or radius <= 0:
        raise ValueError("radius must be positive and finite")
    if max_neighbors <= 0:
        raise ValueError("max_neighbors must be positive")


@dataclass
class ServiceStats:
    """Serving counters, updated by every :meth:`QueryService.flush`."""

    requests: int = 0  # requests served
    queries: int = 0  # individual query points served
    sweeps: int = 0  # merged frontier sweeps executed
    flushes: int = 0  # flush() calls that served at least one request
    serve_time: float = 0.0  # wall-clock spent inside flush()
    wait_time: float = 0.0  # summed per-request submit-to-serve latency
    max_coalesced: int = 0  # most requests ever answered by one sweep
    failed_requests: int = 0  # requests settled with an error instead of a result

    @property
    def coalesce_factor(self) -> float:
        """Mean requests answered per merged sweep (1.0 = no coalescing)."""
        return self.requests / self.sweeps if self.sweeps else 0.0

    @property
    def mean_wait(self) -> float:
        """Mean submit-to-serve latency per request (seconds)."""
        return self.wait_time / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Requests served per second of serve (flush) time."""
        return self.requests / self.serve_time if self.serve_time else 0.0


class QueryTicket:
    """Handle for one submitted request, filled in by the serving flush.

    The synchronous counterpart of a future: :attr:`done` flips once a
    flush has served the request, after which :meth:`result` returns the
    ``(indices, counts)`` pair with the ``ball_query`` contract.
    """

    __slots__ = (
        "radius",
        "max_neighbors",
        "submitted_at",
        "served_at",
        "indices",
        "counts",
        "error",
    )

    def __init__(self, radius: float, max_neighbors: int, submitted_at: float):
        self.radius = radius
        self.max_neighbors = max_neighbors
        self.submitted_at = submitted_at
        self.served_at: Optional[float] = None
        self.indices: Optional[np.ndarray] = None
        self.counts: Optional[np.ndarray] = None
        self.error: Optional[Exception] = None

    @property
    def done(self) -> bool:
        """Settled — served with a result or failed with an error."""
        return self.counts is not None or self.error is not None

    @property
    def wait(self) -> float:
        """Submit-to-serve latency (seconds); raises if not served yet."""
        if self.served_at is None:
            raise RuntimeError("request not served yet")
        return self.served_at - self.submitted_at

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        if self.error is not None:
            raise self.error
        if not self.done:
            raise RuntimeError(
                "request not served yet; call QueryService.flush() first"
            )
        return self.indices, self.counts


class _Pending:
    __slots__ = ("digest", "points", "queries", "ticket")

    def __init__(self, digest, points, queries, ticket):
        # ``digest`` is the flush grouping key: a geometry digest for
        # static requests, ``("dyn", handle)`` for dynamic ones.
        self.digest = digest
        self.points = points
        self.queries = queries
        self.ticket = ticket


class QueryService:
    """Micro-batching ball-query service over a shared search session.

    Parameters
    ----------
    session:
        The :class:`SearchSession` that owns tree construction; distinct
        requests against the same cloud share one tree through it (and a
        cloud already warmed by training or sweep code is served without
        any build at all).
    clock:
        Monotonic time source for the latency/throughput stats (injectable
        so tests can pin timing-derived numbers).
    """

    def __init__(
        self,
        session: Optional[SearchSession] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.session = session if session is not None else SearchSession()
        self.stats = ServiceStats()
        self._clock = clock
        self._queue: List[_Pending] = []

    @property
    def pending(self) -> int:
        """Requests queued but not yet served."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def submit(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
    ) -> QueryTicket:
        """Queue one request; returns its ticket (served at next flush).

        Validation happens here — a bad request must fail its caller at
        submit time, not poison the merged sweep it would have joined.
        That includes non-finite coordinates and settings: a NaN query row
        would error the whole merged sweep and settle every co-queued
        same-cloud ticket with its exception.
        """
        validate_settings(radius, max_neighbors)
        points = validate_points(points)
        queries = validate_queries(queries)
        ticket = QueryTicket(float(radius), int(max_neighbors), self._clock())
        self._queue.append(
            _Pending(geometry_digest(points), points, queries, ticket)
        )
        return ticket

    def flush(self) -> int:
        """Serve everything queued; returns the merged sweeps *executed*.

        Requests are grouped in arrival order — static requests by
        geometry digest, dynamic requests by handle — and each group is
        answered by one merged advance over its concatenated queries
        (:meth:`~repro.runtime.batched.BatchedBallQuery.query_merged` for
        a frozen cloud, :meth:`~repro.kdtree.dynamic.DynamicKdTree
        .query_merged` for a mutating one), then demuxed back onto the
        tickets.  Pending updates to a dynamic cloud are applied by its
        lazy refresh here — between flushes, never mid-sweep.

        A group whose sweep fails settles its tickets with the error and
        executes nothing, so it contributes neither to the return value
        nor to ``stats.sweeps`` — its requests are counted in
        ``stats.failed_requests`` instead.  ``stats.flushes`` only counts
        calls that served at least one request.
        """
        if not self._queue:
            return 0
        batch, self._queue = self._queue, []
        t0 = self._clock()
        executed = 0
        groups: "OrderedDict[object, List[_Pending]]" = OrderedDict()
        for p in batch:
            groups.setdefault(p.digest, []).append(p)
        for key, members in groups.items():
            try:
                sizes = [len(p.queries) for p in members]
                merged_queries = np.concatenate([p.queries for p in members])
                radii = np.concatenate(
                    [np.full(n, p.ticket.radius) for p, n in zip(members, sizes)]
                )
                request_ids = np.repeat(np.arange(len(members)), sizes)
                ks = np.asarray([p.ticket.max_neighbors for p in members])
                if isinstance(key, tuple) and key[0] == "dyn":
                    engine = self.session.dynamic(key[1])
                else:
                    # The digest was computed at submit time; don't
                    # re-hash the cloud just to key the tree cache.
                    tree = self.session.tree_for(members[0].points, digest=key)
                    engine = BatchedBallQuery(tree)
                results = engine.query_merged(
                    merged_queries, radii, request_ids, ks
                )
            except Exception as exc:  # repro: allow[broad-except] -- error containment is the contract: one cloud group's failure settles its own tickets and must not take down the other groups in the flush
                # Contain the blast radius to this cloud group: its
                # tickets settle with the error (submit-time validation
                # makes this an internal failure, e.g. a malformed custom
                # tree), other groups still get served.
                for p in members:
                    p.ticket.error = exc
                self.stats.failed_requests += len(members)
                continue
            now = self._clock()
            for p, (indices, counts) in zip(members, results):
                p.ticket.indices = indices
                p.ticket.counts = counts
                p.ticket.served_at = now
                self.stats.wait_time += now - p.ticket.submitted_at
            self.stats.sweeps += 1
            self.stats.requests += len(members)
            self.stats.queries += int(sum(sizes))
            self.stats.max_coalesced = max(self.stats.max_coalesced, len(members))
            executed += 1
        if executed:
            self.stats.flushes += 1
        self.stats.serve_time += self._clock() - t0
        return executed

    def query(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Submit-and-serve convenience for sequential (uncoalesced) callers."""
        ticket = self.submit(points, queries, radius, max_neighbors)
        self.flush()
        return ticket.result()

    # -- dynamic clouds ------------------------------------------------
    def register_dynamic(
        self,
        points: Optional[np.ndarray] = None,
        maintenance: str = "incremental",
    ) -> str:
        """Register a mutable cloud; returns its stable serving handle.

        ``maintenance`` picks the index policy (``"incremental"`` — the
        default segment overlay with lazy dirty-region rebuilds — or
        ``"rebuild"``, the rebuild-from-scratch-per-frame baseline the
        parity suites pin results against; both serve bit-identical
        results by the canonical dynamic contract).
        """
        points = validate_points(points) if points is not None else None
        return self.session.register_dynamic(points, maintenance=maintenance)

    def update(self, handle: str, inserts=None, removes=None) -> str:
        """Apply one frame of mutations (removes first, then inserts);
        returns the cloud's new content digest.

        Mutations take effect at the next flush — in-flight tickets from
        a previous flush are already settled, queued tickets will observe
        the post-update cloud.
        """
        inserts = validate_points(inserts) if inserts is not None else None
        return self.session.update(handle, inserts=inserts, removes=removes)

    def submit_dynamic(
        self,
        handle: str,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
    ) -> QueryTicket:
        """Queue one request against a registered dynamic cloud.

        Results follow the canonical dynamic contract (hits ordered by
        ``(d2, slot id)``; see :mod:`repro.kdtree.dynamic_reference`),
        evaluated against the cloud state at flush time.
        """
        validate_settings(radius, max_neighbors)
        queries = validate_queries(queries)
        self.session.dynamic(handle)  # unknown handles fail their caller now
        ticket = QueryTicket(float(radius), int(max_neighbors), self._clock())
        self._queue.append(_Pending(("dyn", handle), None, queries, ticket))
        return ticket
