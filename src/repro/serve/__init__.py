"""Request-coalescing serving layer over the batched query runtime.

The first piece of the codebase that serves *concurrent independent
callers* rather than replaying figure grids.  Three layers:

- :class:`QueryService` — the synchronous core: a request queue,
  same-cloud coalescing keyed by geometry digest, one **merged frontier
  sweep** per coalesced group (:meth:`repro.runtime.BatchedBallQuery.
  query_merged`), per-request result demux, and throughput / latency /
  coalesce-factor statistics.  Results are bit-identical to serving each
  request alone, which the serving parity suite pins down.
- :class:`AsyncQueryFrontend` — the asyncio front-end: ``await
  submit(...)`` parks a request and returns its result when the
  micro-batch flusher serves it; a submission window, a max-batch cut-off,
  and a bounded pending queue (backpressure) shape the batches; ``drain``
  serves everything queued and shuts down gracefully.
- :class:`ShardedQueryService` — the multi-process tier: a dispatcher
  routes requests by geometry digest to N long-lived serving worker
  processes (each running its own coalescing ``QueryService`` over a
  long-lived session), with a ``register(points) -> handle`` API so
  repeat callers skip re-shipping and re-hashing geometry, worker
  heartbeats, dead-worker respawn, and orphaned-request requeue; results
  stay bit-identical to the single-process service.  Per-shard stats
  roll up into :class:`ShardedStats`.
- :func:`synthetic_trace` / :func:`replay_trace` /
  :func:`replay_trace_sharded` — the request-trace workload generator
  and replay harnesses behind ``python -m repro.analysis.cli serve``.
- :func:`drift_trace` / :func:`replay_drift_trace` — the mutating-cloud
  counterpart: a deterministic frame-drift stream served through
  dynamic handles (``register_dynamic`` → per-frame ``update`` →
  ``submit_dynamic``), with every frame's results pinned bit-identical
  between incremental maintenance, rebuild-from-scratch-per-frame, and
  the sharded tier.
"""

from .frontend import AsyncQueryFrontend
from .service import (
    QueryService,
    QueryTicket,
    ServiceStats,
    validate_points,
    validate_queries,
    validate_settings,
)
from .sharded import ShardedQueryService, ShardedStats
from .trace import (
    DriftFrame,
    DynamicTraceReport,
    ShardedTraceReport,
    TraceReport,
    drift_trace,
    replay_drift_trace,
    replay_trace,
    replay_trace_sharded,
    synthetic_trace,
)

__all__ = [
    "AsyncQueryFrontend",
    "DriftFrame",
    "DynamicTraceReport",
    "QueryService",
    "QueryTicket",
    "ServiceStats",
    "ShardedQueryService",
    "ShardedStats",
    "ShardedTraceReport",
    "TraceReport",
    "drift_trace",
    "replay_drift_trace",
    "replay_trace",
    "replay_trace_sharded",
    "synthetic_trace",
    "validate_points",
    "validate_queries",
    "validate_settings",
]
