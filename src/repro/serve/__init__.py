"""Request-coalescing serving layer over the batched query runtime.

The first piece of the codebase that serves *concurrent independent
callers* rather than replaying figure grids.  Three layers:

- :class:`QueryService` — the synchronous core: a request queue,
  same-cloud coalescing keyed by geometry digest, one **merged frontier
  sweep** per coalesced group (:meth:`repro.runtime.BatchedBallQuery.
  query_merged`), per-request result demux, and throughput / latency /
  coalesce-factor statistics.  Results are bit-identical to serving each
  request alone, which the serving parity suite pins down.
- :class:`AsyncQueryFrontend` — the asyncio front-end: ``await
  submit(...)`` parks a request and returns its result when the
  micro-batch flusher serves it; a submission window, a max-batch cut-off,
  and a bounded pending queue (backpressure) shape the batches; ``drain``
  serves everything queued and shuts down gracefully.
- :func:`synthetic_trace` / :func:`replay_trace` — the request-trace
  workload generator and replay harness behind ``python -m
  repro.analysis.cli serve``.
"""

from .frontend import AsyncQueryFrontend
from .service import QueryService, QueryTicket, ServiceStats
from .trace import TraceReport, replay_trace, synthetic_trace

__all__ = [
    "AsyncQueryFrontend",
    "QueryService",
    "QueryTicket",
    "ServiceStats",
    "TraceReport",
    "replay_trace",
    "synthetic_trace",
]
