"""The serving-worker process loop behind the sharded tier.

Each worker is one long-lived process (spawned through
:class:`repro.runtime.WorkerProcess`) that owns a digest-sharded slice of
the registered clouds.  Inside it lives exactly the single-process
serving stack — a :class:`~repro.serve.QueryService` over the process's
long-lived :func:`~repro.runtime.worker_session` — so every result the
sharded tier produces is, by construction, a result the single-process
service would have produced for the same requests (the sharded parity
suite pins this bit-for-bit).

Inbox protocol (tuples, first element is the kind):

``("register", digest, points)``
    Pin ``points`` in the worker's cloud registry and warm its K-d tree
    into the session, so later handle-only submits for ``digest`` ship no
    geometry.  The eager build runs through the session's vectorized
    cold path (:mod:`repro.runtime.treebuild`) — registration storms
    after a respawn re-register every pinned cloud, so this build is on
    the recovery critical path.  Fire-and-forget: the inbox is FIFO, so
    a batch enqueued after a register is always served after it.
``("register_dynamic", handle, coords, alive, maintenance)``
    Reconstruct a mutable cloud from its ``(coords, alive)`` slot-space
    snapshot (:meth:`~repro.kdtree.dynamic.DynamicKdTree.from_state` —
    slot ids and content digest are pure functions of the snapshot, so a
    respawned replica is indistinguishable from the original) and adopt
    it into the session under the dispatcher's stable ``handle``.
``("update_handle", handle, inserts, removes)``
    Apply one frame of mutations to a registered dynamic cloud (removes
    first, then inserts — the shared frame contract).  Fire-and-forget
    and FIFO-ordered like ``register``: an update enqueued before a
    batch is always applied before that batch is served, which is what
    "applied between flushes" means on a shard.  The dispatcher applies
    every update to its own shadow replica *before* shipping, so a
    malformed mutation fails the caller at dispatch and never reaches
    the worker.
``("batch", batch_id, jobs)``
    Serve ``jobs`` — each ``(job_id, digest, points_or_None, queries,
    radius, max_neighbors)``, with a 7th element ``"dynamic"`` marking
    requests against a dynamic handle — through the local coalescing
    service (one submit per job, one flush for the batch) and reply with
    one atomic ``("result", slot, batch_id, results, delta)`` message on
    this worker's own outbox (per-incarnation by design — see
    :class:`~repro.runtime.WorkerProcess` on why a shared result queue
    cannot survive a worker killed mid-``put``).  ``results`` is
    ``[(job_id, indices, counts, error), ...]`` in job order; ``delta``
    carries the sweeps/serve-time accounting for the dispatcher's
    per-shard stats roll-up.  Per-job failures (bad request, unknown
    handle, a failed cloud group) travel as the job's ``error`` — they
    never take down the batch, let alone the worker.
``("sleep", seconds)``
    Hold the loop busy.  A diagnostic/test hook: the dead-worker-recovery
    suite parks a worker here to kill it mid-flush deterministically.
``("stop",)``
    Exit the loop (graceful shutdown path of ``WorkerProcess.stop``).

Heartbeats are written by a side thread every ``beat_interval`` seconds,
so a worker grinding through a long merged sweep still reads as alive;
only a dead (or truly wedged) process goes stale.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from .service import QueryService

__all__ = ["serving_worker_main"]

# How often a healthy worker proves it is alive (heartbeat writes and
# inbox poll timeout).  Dispatcher staleness thresholds should be a
# comfortable multiple of this.
BEAT_INTERVAL = 0.05


def _serve_batch(
    service: QueryService,
    registered: Dict[str, np.ndarray],
    slot: int,
    batch_id: int,
    jobs: List[Tuple],
) -> Tuple:
    """Serve one dispatched batch; build its atomic reply message."""
    stats = service.stats
    sweeps0, serve_time0 = stats.sweeps, stats.serve_time
    tickets, failures = {}, {}
    for job_id, digest, points, queries, radius, max_neighbors, *rest in jobs:
        dynamic = bool(rest) and rest[0] == "dynamic"
        if points is None and not dynamic:
            points = registered.get(digest)
            if points is None:
                # Can only happen if the registration was lost with a dead
                # incarnation; the dispatcher re-registers on respawn, so
                # surface it as this job's failure rather than crashing.
                failures[job_id] = RuntimeError(
                    f"cloud handle {digest!r} is not registered on this worker"
                )
                continue
        try:
            if dynamic:
                tickets[job_id] = service.submit_dynamic(
                    digest, queries, radius, max_neighbors
                )
            else:
                tickets[job_id] = service.submit(
                    points, queries, radius, max_neighbors
                )
        except Exception as exc:  # repro: allow[broad-except] -- whatever submit raises must travel back as this one job's error; letting it escape would kill the worker and fail every co-batched caller
            failures[job_id] = exc
    service.flush()
    results = []
    for job in jobs:
        job_id = job[0]
        if job_id in failures:
            results.append((job_id, None, None, failures[job_id]))
        else:
            ticket = tickets[job_id]
            results.append((job_id, ticket.indices, ticket.counts, ticket.error))
    delta = {
        "sweeps": stats.sweeps - sweeps0,
        "serve_time": stats.serve_time - serve_time0,
        "max_coalesced": stats.max_coalesced,
    }
    return ("result", slot, batch_id, results, delta)


def serving_worker_main(
    inbox,
    outbox,
    heartbeat,
    slot: int,
    beat_interval: float = BEAT_INTERVAL,
    clock: Callable[[], float] = time.monotonic,
) -> None:
    """Entry point of one serving worker process (see module docs).

    ``inbox``/``outbox``/``heartbeat`` are supplied per incarnation by
    :class:`~repro.runtime.WorkerProcess`; ``slot`` is the shard index
    stamped on every reply.  ``clock`` is the beat source written into
    ``heartbeat.value`` — injectable (picklable, so a module-level fake
    works across spawn) for tests that exercise staleness handling; it
    must share a timebase with the dispatcher's ``heartbeat_age`` clock.
    """
    # Imported lazily so a fork-started worker reuses the parent's module,
    # and each process gets its own long-lived session (trees and layouts
    # pool across every batch this worker ever serves).
    from ..runtime.network import worker_session

    service = QueryService(session=worker_session())
    registered: Dict[str, np.ndarray] = {}
    stop_beating = threading.Event()

    def _beat_forever() -> None:
        while not stop_beating.wait(beat_interval):
            heartbeat.value = clock()

    beater = threading.Thread(target=_beat_forever, daemon=True)
    beater.start()
    heartbeat.value = clock()
    try:
        while True:
            try:
                message = inbox.get(timeout=beat_interval)
            except queue.Empty:
                continue
            kind = message[0]
            if kind == "stop":
                break
            if kind == "register":
                _, digest, points = message
                registered[digest] = points
                service.session.tree_for(points, digest=digest)
            elif kind == "register_dynamic":
                _, handle, coords, alive, maintenance = message
                # Imported lazily like worker_session: a fork-started
                # worker reuses the parent's loaded module.
                from ..kdtree.dynamic import DynamicKdTree

                service.session.adopt_dynamic(
                    handle,
                    DynamicKdTree.from_state(
                        coords,
                        alive,
                        builder=service.session.builder,
                        maintenance=maintenance,
                    ),
                )
            elif kind == "update_handle":
                _, handle, inserts, removes = message
                # Validated dispatcher-side against the shadow replica
                # before shipping; FIFO ordering places this after the
                # handle's registration and before any later batch.
                service.session.update(handle, inserts=inserts, removes=removes)
            elif kind == "batch":
                _, batch_id, jobs = message
                reply = _serve_batch(service, registered, slot, batch_id, jobs)
                try:
                    outbox.put(reply)
                except Exception:  # repro: allow[broad-except] -- any pickling failure (arbitrary user exception types) must trigger the sanitized resend; a lost reply reads as a dead worker upstream
                    # An unpicklable per-job error must not strand the
                    # batch (a lost reply reads as a dead worker upstream):
                    # resend with errors flattened to their repr.
                    _, _, _, results, delta = reply
                    sanitized = [
                        (jid, idx, cnt, None if err is None else RuntimeError(repr(err)))
                        for jid, idx, cnt, err in results
                    ]
                    outbox.put(("result", slot, batch_id, sanitized, delta))
            elif kind == "sleep":
                time.sleep(message[1])
            # Unknown kinds are ignored (forward compatibility).
    finally:
        stop_beating.set()
