"""Asyncio micro-batching front-end over :class:`~repro.serve.QueryService`.

Concurrent callers ``await submit(...)``; each submit parks its request in
the shared service queue and parks the caller on a future.  A single
flusher task shapes the micro-batches: when the queue goes non-empty it
waits up to ``window`` seconds for more arrivals (cut short the moment
``max_batch`` requests are queued), then serves the whole queue with one
:meth:`QueryService.flush` — same-cloud requests coalesce into merged
frontier sweeps — and resolves every waiting future with its request's
``(indices, counts)``.

``max_pending`` bounds the number of in-flight requests: submits past the
bound *await* until a flush drains space, so a burst of producers applies
backpressure instead of growing the queue without limit.  Parked
submitters wait on individual one-shot futures in arrival order, and each
flush wakes only as many as the capacity it actually freed (each woken
submitter still re-checks before appending).  The broadcast
``asyncio.Event`` this replaces had two races: one ``set()`` released
*every* parked submitter at once, and the ``clear()``-then-``wait()``
re-park could swallow a concurrent ``set()`` — a lost wakeup that left
the last submitters parked forever.  ``drain()`` (also run by ``async
with``'s exit) stops accepting new work, fails parked submitters fast,
serves everything still queued, and joins the flusher.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from .service import QueryService, QueryTicket

__all__ = ["AsyncQueryFrontend"]


class AsyncQueryFrontend:
    """Turns concurrent awaiting callers into coalesced merged sweeps.

    Parameters
    ----------
    service:
        The :class:`QueryService` to serve through (a fresh one with its
        own session by default).  Sharing a service between a frontend and
        direct synchronous callers is fine — a flush serves whatever is
        queued.
    window:
        Micro-batch submission window in seconds: how long the flusher
        waits after the first queued request for others to join its batch.
        ``0`` flushes as soon as the event loop yields to the flusher.
    max_batch:
        Queue size that cuts the window short and flushes immediately.
    max_pending:
        Bound on in-flight (submitted, unserved) requests; submits past it
        await space (backpressure).
    """

    def __init__(
        self,
        service: Optional[QueryService] = None,
        window: float = 0.001,
        max_batch: int = 64,
        max_pending: int = 256,
    ):
        if window < 0:
            raise ValueError("window must be non-negative")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_pending < max_batch:
            raise ValueError("max_pending must be at least max_batch")
        self.service = service if service is not None else QueryService()
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self._waiters: List[Tuple[QueryTicket, asyncio.Future]] = []
        self._wake: Optional[asyncio.Event] = None
        self._space_waiters: Deque[asyncio.Future] = deque()
        self._flusher: Optional[asyncio.Task] = None
        self._closing = False

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncQueryFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    async def start(self) -> None:
        """Spawn the flusher task on the running loop."""
        if self._flusher is not None:
            raise RuntimeError("frontend already started")
        self._closing = False
        self._wake = asyncio.Event()
        self._space_waiters = deque()
        self._flusher = asyncio.get_running_loop().create_task(self._run())

    async def drain(self) -> None:
        """Graceful shutdown: refuse new submits, serve the queue, join."""
        if self._flusher is None:
            return
        self._closing = True
        self._wake.set()
        self._release_space()  # wake backpressured submitters to fail fast
        await self._flusher
        self._flusher = None

    @property
    def pending(self) -> int:
        """In-flight requests (submitted, not yet served)."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    async def submit(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Queue one request and await its ``(indices, counts)`` result."""
        if self._closing:
            raise RuntimeError("frontend is draining or closed; no new requests")
        if self._flusher is None:
            raise RuntimeError(
                "frontend not started (use 'async with' or await start())"
            )
        while not self._closing and len(self._waiters) >= self.max_pending:
            # Park on a private one-shot future: a flush wakes exactly as
            # many parked submitters as the space it drained, and the loop
            # re-checks capacity after every wake (another submitter — or
            # a direct service caller — may have consumed it first).
            space = asyncio.get_running_loop().create_future()
            self._space_waiters.append(space)
            try:
                await space
            finally:
                if not space.done():  # cancelled while parked
                    try:
                        self._space_waiters.remove(space)
                    except ValueError:
                        pass
        if self._closing:
            raise RuntimeError("frontend is draining or closed; no new requests")
        ticket = self.service.submit(points, queries, radius, max_neighbors)
        future = asyncio.get_running_loop().create_future()
        self._waiters.append((ticket, future))
        if len(self._waiters) >= self.max_batch or len(self._waiters) == 1:
            # First arrival opens a micro-batch window; hitting max_batch
            # cuts the window short.  In-between arrivals just join.
            self._wake.set()
        return await future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._waiters:
                if self._closing:
                    break
                continue
            if (
                self.window > 0
                and len(self._waiters) < self.max_batch
                and not self._closing
            ):
                # The micro-batch window: sleep on the wake event so a
                # max_batch-th arrival (or drain) cuts it short.
                try:
                    await asyncio.wait_for(self._wake.wait(), self.window)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
            self._flush_now()
            self._release_space()
            if self._closing and not self._waiters:
                break

    def _release_space(self) -> None:
        """Wake parked submitters, at most one per unit of free capacity.

        Waking exactly ``max_pending - len(waiters)`` submitters (in
        arrival order) is what keeps a flush from releasing the whole
        parked herd past the bound; during drain every parked submitter
        is woken so it can observe ``_closing`` and fail fast.
        """
        free = self.max_pending - len(self._waiters)
        while self._space_waiters and (free > 0 or self._closing):
            space = self._space_waiters.popleft()
            if not space.done():
                space.set_result(None)
                free -= 1

    def _flush_now(self) -> None:
        waiters, self._waiters = self._waiters, []
        try:
            self.service.flush()
        except Exception as exc:  # repro: allow[broad-except] -- a failed flush must surface on every parked caller's future; swallowing only some exception types would leave callers awaiting forever
            for _, future in waiters:
                if not future.done():
                    future.set_exception(exc)
            return
        for ticket, future in waiters:
            if future.done():  # caller went away (cancelled)
                continue
            if ticket.error is not None:  # its cloud group failed to serve
                future.set_exception(ticket.error)
            elif ticket.done:
                future.set_result(ticket.result())
            else:  # can only happen if the shared service was mutated
                future.set_exception(RuntimeError("request was not served"))
