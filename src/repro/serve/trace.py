"""Synthetic request traces and the replay harness behind ``cli serve``.

A *trace* is a list of ``(points, queries, radius, max_neighbors)``
requests — the workload a fleet of independent callers would put on the
serving layer.  :func:`synthetic_trace` draws one deterministically: a
handful of distinct clouds, each request picking a cloud, a query batch
sampled from it, and heterogeneous ``(radius, K)`` settings, so replay
exercises exactly the coalescing the service exists for (many same-cloud
requests with different settings, interleaved across clouds).

:func:`replay_trace` drives the trace twice — all requests submitted
concurrently through the :class:`~repro.serve.AsyncQueryFrontend`, then
one at a time through a fresh sequential service — verifies the two
result streams are bit-identical, and reports the serving stats plus the
wall-clock speedup of coalescing.  :func:`replay_trace_sharded` does the
same for the multi-process tier: distinct clouds registered up front (the
handle fast path), the whole trace flushed through N worker shards, and
the result stream checked bit-identical against sequential serving.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from .frontend import AsyncQueryFrontend
from .service import QueryService, ServiceStats

__all__ = [
    "DriftFrame",
    "DynamicTraceReport",
    "ShardedTraceReport",
    "TraceReport",
    "drift_trace",
    "replay_drift_trace",
    "replay_trace",
    "replay_trace_sharded",
    "synthetic_trace",
]

Request = Tuple[np.ndarray, np.ndarray, float, int]

# The heterogeneous settings pool requests draw from: network-layer-like
# radii and neighbor caps, so merged sweeps always mix radius and K.
_RADII = (0.1, 0.15, 0.25)
_MAX_NEIGHBORS = (8, 16, 32)


def synthetic_trace(
    num_requests: int = 96,
    num_clouds: int = 3,
    cloud_size: int = 2048,
    queries_per_request: int = 64,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[Request]:
    """Draw a deterministic request trace over ``num_clouds`` point clouds.

    ``rng`` lets callers supply their own generator (e.g. one stream of a
    larger deterministic replay schedule); when omitted, a fresh
    ``default_rng(seed)`` keeps the trace a pure function of ``seed`` —
    the property sharded replay's bit-identity check depends on.
    """
    if num_requests <= 0 or num_clouds <= 0 or cloud_size <= 0:
        raise ValueError("trace dimensions must be positive")
    if queries_per_request <= 0:
        raise ValueError("queries_per_request must be positive")
    rng = np.random.default_rng(seed) if rng is None else rng
    clouds = [rng.normal(size=(cloud_size, 3)) for _ in range(num_clouds)]
    trace: List[Request] = []
    for _ in range(num_requests):
        cloud = clouds[int(rng.integers(num_clouds))]
        queries = cloud[rng.integers(0, cloud_size, size=queries_per_request)]
        trace.append(
            (
                cloud,
                queries,
                float(rng.choice(_RADII)),
                int(rng.choice(_MAX_NEIGHBORS)),
            )
        )
    return trace


@dataclass
class TraceReport:
    """What one replay measured."""

    stats: ServiceStats  # the coalescing service's counters
    requests: int
    coalesced_time: float  # wall clock, all requests through the frontend
    sequential_time: float  # wall clock, one flush per request
    results_identical: bool  # coalesced stream == sequential stream

    @property
    def speedup(self) -> float:
        return (
            self.sequential_time / self.coalesced_time
            if self.coalesced_time
            else float("inf")
        )


def replay_trace(
    trace: List[Request],
    window: float = 0.001,
    max_batch: int = 64,
    max_pending: int = 256,
    clock: Callable[[], float] = time.perf_counter,
) -> TraceReport:
    """Replay ``trace`` coalesced and sequentially; compare and report.

    ``clock`` is the wall-clock source behind the reported timings,
    injectable so tests can pin the speedup arithmetic without racing a
    real timer.
    """
    service = QueryService(clock=clock)

    async def run_coalesced():
        async with AsyncQueryFrontend(
            service, window=window, max_batch=max_batch, max_pending=max_pending
        ) as frontend:
            return await asyncio.gather(
                *[frontend.submit(*request) for request in trace]
            )

    t0 = clock()
    coalesced = asyncio.run(run_coalesced())
    coalesced_time = clock() - t0

    sequential_service = QueryService(clock=clock)
    t0 = clock()
    sequential = [sequential_service.query(*request) for request in trace]
    sequential_time = clock() - t0

    identical = all(
        np.array_equal(ci, si) and np.array_equal(cc, sc)
        for (ci, cc), (si, sc) in zip(coalesced, sequential)
    )
    return TraceReport(
        stats=service.stats,
        requests=len(trace),
        coalesced_time=coalesced_time,
        sequential_time=sequential_time,
        results_identical=identical,
    )


@dataclass
class ShardedTraceReport:
    """What one multi-process replay measured."""

    stats: "ShardedStats"  # the sharded tier's rolled-up counters
    requests: int
    num_workers: int
    sharded_time: float  # wall clock, whole trace through the sharded tier
    sequential_time: float  # wall clock, one flush per request, one process
    results_identical: bool  # sharded stream == sequential stream

    @property
    def speedup(self) -> float:
        return (
            self.sequential_time / self.sharded_time
            if self.sharded_time
            else float("inf")
        )


# Dynamic-scene settings pool: LiDAR-scale radii (the drift scenes span
# tens of meters, unlike the unit-Gaussian clouds above).
_DYN_RADII = (1.0, 1.5, 2.5)


@dataclass
class DriftFrame:
    """One frame of a mutating-cloud trace: the mutation plus the frame's
    request batches ``(queries, radius, max_neighbors)``."""

    inserts: np.ndarray
    removes: np.ndarray
    requests: List[Tuple[np.ndarray, float, int]]


def drift_trace(
    num_frames: int = 50,
    requests_per_frame: int = 2,
    queries_per_request: int = 32,
    num_points: int = 2048,
    churn: float = 0.02,
    seed: int = 0,
) -> Tuple[np.ndarray, List[DriftFrame]]:
    """Draw a deterministic mutating-cloud trace.

    Returns ``(initial_points, frames)``: the cloud to register, then per
    frame a mutation batch (slot-addressed removes + insert coordinates,
    from :class:`~repro.geometry.scenes.FrameDrift`) and the frame's
    query requests with heterogeneous ``(radius, K)`` settings.  A pure
    function of its arguments, so every service replica replays the
    identical stream — the precondition of the bit-identity pins.
    """
    from ..geometry.scenes import FrameDrift

    if num_frames <= 0 or requests_per_frame <= 0:
        raise ValueError("trace dimensions must be positive")
    drift = FrameDrift(num_points=num_points, churn=churn, seed=seed)
    settings_rng = np.random.default_rng(seed + 1)
    frames: List[DriftFrame] = []
    for _ in range(num_frames):
        mutation = drift.step()
        requests = [
            (
                drift.sample_queries(queries_per_request),
                float(settings_rng.choice(_DYN_RADII)),
                int(settings_rng.choice(_MAX_NEIGHBORS)),
            )
            for _ in range(requests_per_frame)
        ]
        frames.append(
            DriftFrame(
                inserts=mutation.inserts, removes=mutation.removes, requests=requests
            )
        )
    return drift.initial_points, frames


@dataclass
class DynamicTraceReport:
    """What one mutating-cloud replay measured."""

    frames: int
    requests: int
    incremental_time: float  # wall clock, update+serve, incremental index
    rebuild_time: float  # wall clock, update+serve, rebuild-per-frame
    results_identical: bool  # incremental stream == rebuild stream
    sharded_identical: Optional[bool]  # == sharded stream (None if not run)
    num_workers: Optional[int]
    incremental_points_indexed: int  # total build work, points
    rebuild_points_indexed: int
    incremental_waits: List[float]  # per-request submit-to-serve latency

    @property
    def speedup(self) -> float:
        return (
            self.rebuild_time / self.incremental_time
            if self.incremental_time
            else float("inf")
        )


def _replay_dynamic_frames(
    service: QueryService, handle: str, frames: List[DriftFrame], clock
) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], float, List[float]]:
    """Drive one service through the trace: update, submit, flush per frame."""
    results: List[Tuple[np.ndarray, np.ndarray]] = []
    waits: List[float] = []
    t0 = clock()
    for frame in frames:
        service.update(handle, inserts=frame.inserts, removes=frame.removes)
        tickets = [
            service.submit_dynamic(handle, queries, radius, k)
            for queries, radius, k in frame.requests
        ]
        service.flush()
        for ticket in tickets:
            results.append(ticket.result())
            waits.append(ticket.wait)
    return results, clock() - t0, waits


def _streams_identical(a, b) -> bool:
    return all(
        np.array_equal(ai, bi) and np.array_equal(ac, bc)
        for (ai, ac), (bi, bc) in zip(a, b)
    )


def replay_drift_trace(
    num_frames: int = 50,
    requests_per_frame: int = 2,
    queries_per_request: int = 32,
    num_points: int = 2048,
    churn: float = 0.02,
    seed: int = 0,
    num_workers: Optional[int] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> DynamicTraceReport:
    """Replay one mutating-cloud trace three ways and pin the results.

    The same frame stream — mutations and requests — is served by (1) a
    :class:`QueryService` with incremental index maintenance, (2) one
    with rebuild-from-scratch-per-frame maintenance, and, when
    ``num_workers`` is set, (3) a :class:`~repro.serve.sharded
    .ShardedQueryService` routing ``update_handle`` messages to the
    owning shard.  Every frame's query results must be bit-identical
    across all replicas (the canonical dynamic contract makes this exact
    neighbor-set equality); the report also carries the wall-clock and
    index-build-work comparison the incremental path justifies itself
    with.
    """
    initial, frames = drift_trace(
        num_frames=num_frames,
        requests_per_frame=requests_per_frame,
        queries_per_request=queries_per_request,
        num_points=num_points,
        churn=churn,
        seed=seed,
    )

    incremental = QueryService(clock=clock)
    inc_handle = incremental.register_dynamic(initial)
    inc_results, inc_time, inc_waits = _replay_dynamic_frames(
        incremental, inc_handle, frames, clock
    )

    rebuild = QueryService(clock=clock)
    reb_handle = rebuild.register_dynamic(initial, maintenance="rebuild")
    reb_results, reb_time, _ = _replay_dynamic_frames(
        rebuild, reb_handle, frames, clock
    )

    sharded_identical: Optional[bool] = None
    if num_workers is not None:
        from .sharded import ShardedQueryService

        with ShardedQueryService(num_workers=num_workers, clock=clock) as tier:
            handle = tier.register_dynamic(initial)
            sharded_results = []
            for frame in frames:
                tier.update(handle, inserts=frame.inserts, removes=frame.removes)
                tickets = [
                    tier.submit_dynamic(handle, queries, radius, k)
                    for queries, radius, k in frame.requests
                ]
                tier.flush()
                sharded_results.extend(t.result() for t in tickets)
        sharded_identical = _streams_identical(sharded_results, inc_results)

    return DynamicTraceReport(
        frames=num_frames,
        requests=num_frames * requests_per_frame,
        incremental_time=inc_time,
        rebuild_time=reb_time,
        results_identical=_streams_identical(inc_results, reb_results),
        sharded_identical=sharded_identical,
        num_workers=num_workers,
        incremental_points_indexed=incremental.session.dynamic(
            inc_handle
        ).stats.points_indexed,
        rebuild_points_indexed=rebuild.session.dynamic(
            reb_handle
        ).stats.points_indexed,
        incremental_waits=inc_waits,
    )


def replay_trace_sharded(
    trace: List[Request],
    num_workers: int = 2,
    clock: Callable[[], float] = time.perf_counter,
) -> ShardedTraceReport:
    """Replay ``trace`` through the sharded tier; compare against sequential.

    Every distinct cloud is :meth:`~repro.serve.ShardedQueryService.
    register`-ed first (shipping geometry and warming worker-side trees up
    front, as a repeat caller would), so the timed section measures the
    handle fast path: query shipping, parallel per-shard merged sweeps,
    and result demux.  The sequential side gets the same courtesy — a
    warm tree cache — to keep the comparison about serving, not builds.
    """
    from .sharded import ShardedQueryService

    sequential_service = QueryService(clock=clock)
    for points, *_ in trace:
        sequential_service.session.tree_for(points)
    t0 = clock()
    sequential = [sequential_service.query(*request) for request in trace]
    sequential_time = clock() - t0

    with ShardedQueryService(num_workers=num_workers, clock=clock) as service:
        handles = [service.register(points) for points, *_ in trace]
        t0 = clock()
        tickets = [
            service.submit_handle(handle, queries, radius, max_neighbors)
            for handle, (_, queries, radius, max_neighbors) in zip(handles, trace)
        ]
        service.flush()
        results = [ticket.result() for ticket in tickets]
        sharded_time = clock() - t0
        stats = service.stats

    identical = all(
        np.array_equal(gi, si) and np.array_equal(gc, sc)
        for (gi, gc), (si, sc) in zip(results, sequential)
    )
    return ShardedTraceReport(
        stats=stats,
        requests=len(trace),
        num_workers=num_workers,
        sharded_time=sharded_time,
        sequential_time=sequential_time,
        results_identical=identical,
    )
