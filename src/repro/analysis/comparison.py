"""Evaluation comparisons (Figs. 14–17, 24): Crescent vs baselines.

One shared runner executes the whole Table-1 suite on every accelerator
variant so the benches for Figs. 14, 15, 16, 17, and 24 all read from a
consistent set of results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accel.accelerator import NetworkResult, PointCloudAccelerator
from ..accel.baselines import (
    ExhaustiveSplitSearchEngine,
    gpu_network_result,
    make_mesorasi,
    tigris_gpu_network_result,
)
from ..accel.search_engine import NeighborSearchEngine
from ..accel.workloads import evaluation_hardware, evaluation_networks, workload_points
from ..core.config import ApproxSetting, CrescentHardwareConfig
from ..runtime.network import plan_for, worker_session
from ..runtime.sweep import SweepRunner

__all__ = ["SuiteResult", "run_evaluation_suite", "energy_saving_contributions"]

# The settings the paper's headline results use (Fig. 13/14): h_t = 4 and
# h_e = 12 on trees of height ~14–21; our workload trees are height 11–12,
# so the equivalent elision height sits ~3 levels below the leaves.
HEADLINE_SETTING_ANS = ApproxSetting(4, None)
HEADLINE_SETTING_BCE = ApproxSetting(4, 8)


@dataclass
class SuiteResult:
    """All variants' results for one network."""

    name: str
    mesorasi: NetworkResult
    ans: NetworkResult
    ans_bce: NetworkResult
    gpu_cycles: int
    gpu_energy: float
    tigris_gpu_cycles: int
    tigris_gpu_energy: float

    @property
    def speedup_ans(self) -> float:
        return self.mesorasi.cycles / self.ans.cycles

    @property
    def speedup_bce(self) -> float:
        return self.mesorasi.cycles / self.ans_bce.cycles

    @property
    def norm_energy_ans(self) -> float:
        return self.ans.energy.total / self.mesorasi.energy.total

    @property
    def norm_energy_bce(self) -> float:
        return self.ans_bce.energy.total / self.mesorasi.energy.total


def _suite_point(
    hw: CrescentHardwareConfig,
    name: str,
    setting_ans: ApproxSetting,
    setting_bce: ApproxSetting,
    seed: int,
) -> SuiteResult:
    """All variants' results for one network (module-level: pools pickle it).

    One :class:`~repro.runtime.SearchSession` serves every variant — the
    Mesorasi baseline, ANS, and ANS+BCE all query the same layer clouds,
    so trees are built once per layer, split-tree layouts once per
    ``h_t`` — and one sampling plan fixes the centroids for all three.
    Under :class:`~repro.runtime.SweepRunner` fan-out the session is the
    worker process's long-lived one, pooling across networks too.
    """
    session = worker_session()
    spec = evaluation_networks()[name]
    points = workload_points(name, seed=seed)
    plan = plan_for(session, spec, points, seed)
    mesorasi = make_mesorasi(hw, session=session)
    ans_acc = PointCloudAccelerator(
        hw, NeighborSearchEngine(hw, session=session),
        elide_aggregation=False, session=session,
    )
    bce_acc = PointCloudAccelerator(
        hw, NeighborSearchEngine(hw, session=session),
        elide_aggregation=True, session=session,
    )
    base = mesorasi.run_network(spec, points, ApproxSetting(0, None), seed=seed, plan=plan)
    ans = ans_acc.run_network(spec, points, setting_ans, seed=seed, plan=plan)
    bce = bce_acc.run_network(spec, points, setting_bce, seed=seed, plan=plan)
    gpu_cycles, gpu_energy = gpu_network_result(base)
    tg_cycles, tg_energy = tigris_gpu_network_result(base)
    return SuiteResult(
        name=name,
        mesorasi=base,
        ans=ans,
        ans_bce=bce,
        gpu_cycles=gpu_cycles,
        gpu_energy=gpu_energy,
        tigris_gpu_cycles=tg_cycles,
        tigris_gpu_energy=tg_energy,
    )


def run_evaluation_suite(
    hw: Optional[CrescentHardwareConfig] = None,
    setting_ans: ApproxSetting = HEADLINE_SETTING_ANS,
    setting_bce: ApproxSetting = HEADLINE_SETTING_BCE,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, SuiteResult]:
    """Run all four networks on Mesorasi, ANS, ANS+BCE, and the GPU models.

    Networks are independent sweep points: pass a
    :class:`~repro.runtime.SweepRunner` to fan them across worker
    processes (order-preserving; each worker's long-lived session pools
    trees across its jobs).  The default runs them in-process through one
    shared session.
    """
    hw = hw or evaluation_hardware()
    names = list(evaluation_networks())
    jobs = [(hw, name, setting_ans, setting_bce, seed) for name in names]
    runner = runner or SweepRunner(backend="serial")
    return {r.name: r for r in runner.starmap(_suite_point, jobs)}


def energy_saving_contributions(result: SuiteResult) -> Dict[str, float]:
    """Fig. 16: decompose the memory-energy saving into four components.

    Components (fractions of the total memory-energy saving):

    * ``dram_traffic``   — fewer DRAM bytes moved,
    * ``dram_streaming`` — remaining bytes moved at streaming (not random)
      cost,
    * ``sram_search``    — fewer tree-buffer reads (K-d in sub-tree + BCE),
    * ``sram_aggregation`` — fewer point-buffer reads (BCE replication).
    """
    base = result.mesorasi.energy.components
    ours = result.ans_bce.energy.components

    def get(components: Dict[str, float], key: str) -> float:
        return components.get(key, 0.0)

    em_rand = 25.0
    em_stream = 8.33
    base_dram_bytes = (
        get(base, "dram_streaming") / em_stream + get(base, "dram_random") / em_rand
    )
    ours_dram_bytes = (
        get(ours, "dram_streaming") / em_stream + get(ours, "dram_random") / em_rand
    )
    # Traffic reduction valued at streaming cost; conversion of the
    # remaining traffic from random to streaming valued at the cost delta.
    traffic_saving = max(base_dram_bytes - ours_dram_bytes, 0.0) * em_stream
    base_random_bytes = get(base, "dram_random") / em_rand
    ours_random_bytes = get(ours, "dram_random") / em_rand
    streaming_saving = max(base_random_bytes - ours_random_bytes, 0.0) * (
        em_rand - em_stream
    )
    sram_search_saving = max(get(base, "sram_search") - get(ours, "sram_search"), 0.0)
    sram_agg_saving = max(
        get(base, "sram_aggregation") - get(ours, "sram_aggregation"), 0.0
    )
    total = traffic_saving + streaming_saving + sram_search_saving + sram_agg_saving
    if total == 0:
        return {k: 0.0 for k in ("dram_traffic", "dram_streaming", "sram_search", "sram_aggregation")}
    return {
        "dram_traffic": traffic_saving / total,
        "dram_streaming": streaming_saving / total,
        "sram_search": sram_search_saving / total,
        "sram_aggregation": sram_agg_saving / total,
    }
