"""Plain-text table formatting for benchmark output.

Every benchmark prints the rows/series of the paper figure it reproduces;
this module keeps that output uniform and readable in CI logs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table with a title rule."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an x→y series (one figure line) as a two-column table."""
    return format_table(title, ["x", "y"], list(zip(xs, ys)))
