"""Experiment drivers behind every paper figure, plus table formatting."""

from .reporting import format_series, format_table
from .characterization import (
    aggregation_conflict_by_network,
    dram_traffic_study,
    layer_search_traces,
    nonstreaming_fraction,
    search_conflict_rate_vs_banks,
)
from .tradeoff import (
    hw_sensitivity,
    knob_performance_sweep,
    nodes_skipped_vs_elision_height,
    nodes_visited_vs_top_height,
)
from .comparison import (
    HEADLINE_SETTING_ANS,
    HEADLINE_SETTING_BCE,
    SuiteResult,
    energy_saving_contributions,
    run_evaluation_suite,
)

__all__ = [
    "format_series",
    "format_table",
    "aggregation_conflict_by_network",
    "dram_traffic_study",
    "layer_search_traces",
    "nonstreaming_fraction",
    "search_conflict_rate_vs_banks",
    "hw_sensitivity",
    "knob_performance_sweep",
    "nodes_skipped_vs_elision_height",
    "nodes_visited_vs_top_height",
    "HEADLINE_SETTING_ANS",
    "HEADLINE_SETTING_BCE",
    "SuiteResult",
    "energy_saving_contributions",
    "run_evaluation_suite",
]
