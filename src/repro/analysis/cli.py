"""Command-line experiment runner.

Regenerates the paper's figures from the terminal without pytest::

    python -m repro.analysis.cli                 # hardware-side figures
    python -m repro.analysis.cli --figures 2 14  # a subset
    python -m repro.analysis.cli --workers 4     # fan across processes
    python -m repro.analysis.cli --list          # what's available
    python -m repro.analysis.cli serve           # serving-layer trace replay
    python -m repro.analysis.cli serve --workers 4   # + sharded tier replay

Figures are independent experiments, so ``--workers N`` fans them across
``N`` worker processes through :class:`repro.runtime.SweepRunner`; output
order matches the requested figure order regardless of worker count.

``serve`` replays a synthetic concurrent-request trace through the
request-coalescing serving front-end (:mod:`repro.serve`) and reports the
coalesce factor, latency, and wall-clock speedup over serving the same
trace one request at a time.

Training-backed figures (13, 18–21, and Fig. 23's accuracy axis) live in
``benchmarks/`` because they reuse the memoized trained models there; this
CLI covers everything that runs in seconds: the motivation studies
(Figs. 2–5), the design-space sweeps (Figs. 8, 9, 22, 23's performance
axes), the evaluation suite (Figs. 14–17), and the prior-accelerator
comparison (Fig. 24).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import Callable, Dict, List

import numpy as np

from ..accel.workloads import evaluation_hardware, evaluation_networks, workload_points
from ..core.config import ApproxSetting
from ..runtime.sweep import SweepRunner
from .characterization import (
    aggregation_conflict_by_network,
    dram_traffic_study,
    nonstreaming_fraction,
    search_conflict_rate_vs_banks,
)
from .comparison import energy_saving_contributions, run_evaluation_suite
from .reporting import format_series, format_table
from .tradeoff import (
    hw_sensitivity,
    nodes_skipped_vs_elision_height,
    nodes_visited_vs_top_height,
)

__all__ = ["main"]


def fig2() -> str:
    measured = {n: nonstreaming_fraction(n) for n in evaluation_networks()}
    return format_table(
        "Fig. 2: non-continuous DRAM accesses in neighbor search (%)",
        ["network", "measured"],
        [[n, f"{v * 100:.2f}"] for n, v in measured.items()],
    )


def fig3() -> str:
    rows = []
    for name in evaluation_networks():
        r = dram_traffic_study(name)
        rows.append([name, f"{r.traffic_ratio:.1f}x", f"{r.miss_rate * 100:.1f}"])
    return format_table(
        "Fig. 3: DRAM traffic ratio / cache miss rate (%)",
        ["network", "traffic", "miss rate"], rows,
    )


def fig4() -> str:
    rates = search_conflict_rate_vs_banks((2, 4, 8, 16, 32))
    return format_series(
        "Fig. 4: search bank conflict rate vs #banks",
        list(rates.keys()), [f"{v * 100:.1f}%" for v in rates.values()],
    )


def fig5() -> str:
    measured = aggregation_conflict_by_network()
    return format_table(
        "Fig. 5: aggregation bank conflict rate (%)",
        ["network", "measured"],
        [[n, f"{v * 100:.1f}"] for n, v in measured.items()],
    )


def _pnpp_queries():
    points = workload_points("PointNet++ (c)")
    rng = np.random.default_rng(1)
    return points, points[rng.choice(len(points), 256, replace=False)]


def fig8() -> str:
    points, queries = _pnpp_queries()
    result = nodes_visited_vs_top_height(points, queries, 0.1, 16, (0, 2, 4, 6, 8))
    return format_series(
        "Fig. 8: normalized nodes visited vs top-tree height",
        list(result.keys()), list(result.values()),
    )


def fig9() -> str:
    points, queries = _pnpp_queries()
    result = nodes_skipped_vs_elision_height(
        points, queries, 0.1, 16, top_height=2, elision_heights=(3, 5, 7, 9, 11)
    )
    return format_series(
        "Fig. 9: normalized nodes skipped vs elision height",
        list(result.keys()), list(result.values()),
    )


def fig14() -> str:
    suite = run_evaluation_suite()
    rows = [
        [n, f"{r.speedup_ans:.2f}x", f"{r.speedup_bce:.2f}x",
         f"{r.norm_energy_ans:.2f}", f"{r.norm_energy_bce:.2f}"]
        for n, r in suite.items()
    ]
    geomean = statistics.geometric_mean(r.speedup_bce for r in suite.values())
    table = format_table(
        "Fig. 14: speedup / normalized energy vs Mesorasi",
        ["network", "ANS", "ANS+BCE", "E(ANS)", "E(ANS+BCE)"], rows,
    )
    return table + f"\ngeomean ANS+BCE speedup: {geomean:.2f}x"


def fig15() -> str:
    suite = run_evaluation_suite()
    rows = []
    for n, r in suite.items():
        rows.append([
            n,
            f"{r.mesorasi.search_cycles / max(r.ans_bce.search_cycles, 1):.2f}x",
            f"{r.mesorasi.aggregation_cycles / max(r.ans_bce.aggregation_cycles, 1):.2f}x",
        ])
    return format_table(
        "Fig. 15: stage speedups (ANS+BCE)",
        ["network", "neighbor search", "aggregation"], rows,
    )


def fig16() -> str:
    suite = run_evaluation_suite()
    keys = ("dram_traffic", "dram_streaming", "sram_search", "sram_aggregation")
    rows = [
        [n] + [f"{energy_saving_contributions(r)[k] * 100:.1f}" for k in keys]
        for n, r in suite.items()
    ]
    return format_table(
        "Fig. 16: memory energy saving contributions (%)",
        ["network", *keys], rows,
    )


def fig17() -> str:
    suite = run_evaluation_suite()
    rows = []
    for n, r in suite.items():
        ans_v = sum(l.search.report.traversal.nodes_visited for l in r.ans.layers)
        bce_v = sum(l.search.report.traversal.nodes_visited for l in r.ans_bce.layers)
        rows.append([n, f"{(1 - bce_v / max(ans_v, 1)) * 100:.1f}"])
    return format_table(
        "Fig. 17: node-access reduction of BCE over ANS (%)",
        ["network", "reduction"], rows,
    )


def fig22() -> str:
    spec = evaluation_networks()["PointNet++ (c)"]
    points = workload_points("PointNet++ (c)")
    cells = hw_sensitivity(
        spec, points, ApproxSetting(4, 8), (2, 4, 8), (2, 4, 8),
        base_hw=evaluation_hardware(),
    )
    rows = [
        [c.num_pes, c.num_banks, f"{c.speedup:.2f}x", f"{c.norm_energy:.2f}"]
        for c in cells
    ]
    return format_table(
        "Fig. 22: sensitivity to #PE x #banks",
        ["#PE", "#banks", "speedup", "norm energy"], rows,
    )


def fig23() -> str:
    """Performance axes of the Fig. 23 Pareto study, geomean over clouds.

    The accuracy axis needs the trained models (``benchmarks/``); the
    speedup/energy axes are pure simulation, swept here as one
    ``settings x clouds`` grid through
    :meth:`~repro.accel.PointCloudAccelerator.run_many`.
    """
    from ..accel.accelerator import PointCloudAccelerator
    from ..accel.baselines import make_mesorasi
    from ..runtime.session import SearchSession

    name = "PointNet++ (c)"
    spec = evaluation_networks()[name]
    hw = evaluation_hardware()
    clouds = [workload_points(name, seed=s) for s in (0, 1, 2)]
    settings = [
        ApproxSetting(2, None), ApproxSetting(4, None),
        ApproxSetting(4, 8), ApproxSetting(6, 8),
    ]
    # One session for the baseline and Crescent grids: each cloud's trees,
    # split-tree layouts, and sampling plans are built once for the whole
    # figure (the default-constructed engine shares the accelerator's
    # session).
    session = SearchSession()
    baselines = make_mesorasi(hw, session=session).run_many(
        spec, clouds, [ApproxSetting(0, None)]
    )[0]
    crescent = PointCloudAccelerator(hw, elide_aggregation=True, session=session)
    grid = crescent.run_many(spec, clouds, settings)
    rows = []
    for setting, row in zip(settings, grid):
        speedup = statistics.geometric_mean(
            b.cycles / r.cycles for b, r in zip(baselines, row)
        )
        energy = statistics.geometric_mean(
            r.energy.total / b.energy.total for b, r in zip(baselines, row)
        )
        rows.append(
            [f"<{setting.top_height}, {setting.elision_height}>",
             f"{speedup:.2f}x", f"{energy:.2f}"]
        )
    return format_table(
        f"Fig. 23 (perf axes): {name}, geomean over {len(clouds)} clouds",
        ["setting", "speedup", "norm energy"], rows,
    )


FIGURES: Dict[str, Callable[[], str]] = {
    "2": fig2, "3": fig3, "4": fig4, "5": fig5,
    "8": fig8, "9": fig9,
    "14": fig14, "15": fig15, "16": fig16, "17": fig17,
    "22": fig22, "23": fig23,
}


def _render_figure(fig: str) -> str:
    """Module-level sweep point (process backends need to pickle it)."""
    return FIGURES[fig]()


def _serve_main(argv: List[str]) -> int:
    """The ``serve`` subcommand: synthetic request-trace replay.

    ``--workers N`` (N >= 1) additionally replays the trace through the
    sharded multi-process tier — distinct clouds registered by digest
    handle up front, one flush fanned across N serving worker processes —
    and reports its stats and result identity next to the single-process
    coalescing numbers.
    """
    from ..serve import replay_trace, replay_trace_sharded, synthetic_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.cli serve",
        description="Replay a synthetic request trace through the "
        "coalescing serving front-end and report throughput/latency stats.",
    )
    parser.add_argument("--requests", type=int, default=96)
    parser.add_argument("--clouds", type=int, default=3,
                        help="distinct point clouds in the trace")
    parser.add_argument("--cloud-size", type=int, default=2048)
    parser.add_argument("--queries", type=int, default=64,
                        help="query points per request")
    parser.add_argument("--window-ms", type=float, default=1.0,
                        help="micro-batch submission window")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="also replay through the sharded tier with N "
                        "serving worker processes (default: skip)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.workers < 0:
        print("--workers must be non-negative", file=sys.stderr)
        return 2

    trace = synthetic_trace(
        num_requests=args.requests, num_clouds=args.clouds,
        cloud_size=args.cloud_size, queries_per_request=args.queries,
        seed=args.seed,
    )
    report = replay_trace(
        trace, window=args.window_ms / 1000.0,
        max_batch=args.max_batch, max_pending=args.max_pending,
    )
    stats = report.stats
    print(format_table(
        f"serve: {report.requests} requests over {args.clouds} clouds "
        f"({args.queries} queries each)",
        ["metric", "value"],
        [
            ["merged sweeps", str(stats.sweeps)],
            ["coalesce factor", f"{stats.coalesce_factor:.1f}x"],
            ["largest merged batch", str(stats.max_coalesced)],
            ["mean request latency", f"{stats.mean_wait * 1e3:.2f} ms"],
            ["serve throughput", f"{stats.throughput:.0f} req/s"],
            ["coalesced wall time", f"{report.coalesced_time:.3f} s"],
            ["sequential wall time", f"{report.sequential_time:.3f} s"],
            ["speedup vs sequential", f"{report.speedup:.2f}x"],
            ["results identical", str(report.results_identical)],
        ],
    ))
    ok = report.results_identical
    if args.workers > 0:
        sharded = replay_trace_sharded(trace, num_workers=args.workers)
        sstats = sharded.stats
        print()
        print(format_table(
            f"serve --workers {args.workers}: sharded multi-process tier",
            ["metric", "value"],
            [
                ["worker shards", str(sharded.num_workers)],
                ["merged sweeps", str(sstats.sweeps)],
                ["coalesce factor", f"{sstats.coalesce_factor:.1f}x"],
                ["failed requests", str(sstats.failed_requests)],
                ["worker respawns", str(sstats.respawns)],
                ["sharded wall time", f"{sharded.sharded_time:.3f} s"],
                ["sequential wall time", f"{sharded.sequential_time:.3f} s"],
                ["speedup vs sequential", f"{sharded.speedup:.2f}x"],
                ["results identical", str(sharded.results_identical)],
            ],
        ))
        ok = ok and sharded.results_identical
    return 0 if ok else 1


def main(argv: List[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.cli",
        description="Regenerate Crescent paper figures from the terminal.",
    )
    parser.add_argument(
        "--figures", nargs="*", default=sorted(FIGURES, key=int),
        help="figure numbers to run (default: all hardware-side figures)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan independent figures across N worker processes (default: 1)",
    )
    parser.add_argument("--list", action="store_true", help="list figures and exit")
    args = parser.parse_args(argv)
    if args.list:
        print("available figures:", ", ".join(sorted(FIGURES, key=int)))
        print("training-backed figures (13, 18-21, 23's accuracy axis) run "
              "via: pytest benchmarks/ --benchmark-only")
        print("serving-layer trace replay: python -m repro.analysis.cli "
              "serve --help")
        return 0
    for fig in args.figures:
        if fig not in FIGURES:
            print(f"unknown figure {fig!r}; use --list", file=sys.stderr)
            return 2
    if args.workers < 1:
        print("--workers must be a positive integer", file=sys.stderr)
        return 2
    runner = SweepRunner(num_workers=args.workers, backend="auto")
    for rendered in runner.map(_render_figure, args.figures):
        print(rendered)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
