"""Design-space and trade-off drivers (Figs. 8, 9, 22, 23).

These sweep Crescent's two knobs (``h_t``, ``h_e``) and the hardware
configuration (#PEs × #banks), reporting the series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accel.accelerator import NetworkResult, NetworkSpec, PointCloudAccelerator
from ..accel.baselines import make_mesorasi
from ..accel.search_engine import NeighborSearchEngine
from ..core.approx_search import approximate_ball_query
from ..core.config import ApproxSetting, CrescentHardwareConfig
from ..kdtree.build import build_kdtree
from ..memsim.sram import BankedSramConfig
from ..runtime.network import plan_for, worker_session
from ..runtime.session import SearchSession
from ..runtime.sweep import SweepRunner

__all__ = [
    "nodes_visited_vs_top_height",
    "nodes_skipped_vs_elision_height",
    "hw_sensitivity",
    "knob_performance_sweep",
]


def nodes_visited_vs_top_height(
    points: np.ndarray,
    queries: np.ndarray,
    radius: float,
    max_neighbors: int,
    heights: Sequence[int],
) -> Dict[int, float]:
    """Fig. 8: normalized nodes visited per query vs ``h_t``.

    Normalized to the exact search (``h_t = 0``); monotonically
    non-increasing because a taller top tree shrinks the backtracking
    scope.
    """
    tree = build_kdtree(points)
    results: Dict[int, float] = {}
    base: Optional[float] = None
    for ht in heights:
        _, _, report = approximate_ball_query(
            tree, queries, radius, max_neighbors, ApproxSetting(ht, None),
            simulate_conflicts=False,
        )
        per_query = report.traversal.nodes_visited / max(report.traversal.queries, 1)
        if base is None:
            base = per_query
        results[int(ht)] = per_query / base
    return results


def nodes_skipped_vs_elision_height(
    points: np.ndarray,
    queries: np.ndarray,
    radius: float,
    max_neighbors: int,
    top_height: int,
    elision_heights: Sequence[int],
    num_pes: int = 8,
) -> Dict[int, float]:
    """Fig. 9: normalized nodes skipped per query vs ``h_e``.

    Normalized to the most aggressive elision height swept; decreases as
    ``h_e`` grows (fewer levels are elidable).
    """
    tree = build_kdtree(points)
    skipped: Dict[int, float] = {}
    for he in elision_heights:
        _, _, report = approximate_ball_query(
            tree, queries, radius, max_neighbors,
            ApproxSetting(top_height, he), num_pes=num_pes,
        )
        skipped[int(he)] = report.traversal.nodes_skipped / max(
            report.traversal.queries, 1
        )
    peak = max(skipped.values()) or 1.0
    return {he: v / peak for he, v in skipped.items()}


@dataclass
class SensitivityCell:
    num_pes: int
    num_banks: int
    speedup: float
    norm_energy: float


def _sensitivity_cell(
    spec: NetworkSpec,
    points: np.ndarray,
    setting: ApproxSetting,
    pes: int,
    banks: int,
    base_hw: CrescentHardwareConfig,
) -> SensitivityCell:
    """One Fig. 22 grid cell (module-level: process pools pickle it).

    K-d trees and split-tree layouts are geometry-only, so every cell of
    the #PE × #banks grid shares them through the calling process's
    long-lived session (:func:`~repro.runtime.worker_session`) — the
    hardware override changes arbitration and timing, not layout.  The
    sampling plan is shared the same way.
    """
    session = worker_session()
    hw = base_hw.with_overrides(
        num_pes=pes,
        tree_buffer=BankedSramConfig(
            size_bytes=base_hw.tree_buffer.size_bytes, num_banks=banks
        ),
    )
    plan = plan_for(session, spec, points, 0)
    baseline = make_mesorasi(hw, session=session).run_network(
        spec, points, ApproxSetting(0, None), plan=plan
    )
    crescent = PointCloudAccelerator(
        hw, NeighborSearchEngine(hw, session=session),
        elide_aggregation=True, session=session,
    ).run_network(spec, points, setting, plan=plan)
    return SensitivityCell(
        num_pes=pes,
        num_banks=banks,
        speedup=baseline.cycles / crescent.cycles,
        norm_energy=crescent.energy.total / baseline.energy.total,
    )


def hw_sensitivity(
    spec: NetworkSpec,
    points: np.ndarray,
    setting: ApproxSetting,
    pes_list: Sequence[int],
    banks_list: Sequence[int],
    base_hw: CrescentHardwareConfig = CrescentHardwareConfig(),
    runner: Optional[SweepRunner] = None,
) -> List[SensitivityCell]:
    """Fig. 22: speedup and normalized energy over #PE × #banks.

    Each cell compares Crescent (ANS+BCE) against the Mesorasi baseline
    *on the same hardware configuration*, as the paper does.  Cells are
    independent sweep points: the grid goes through a
    :class:`~repro.runtime.SweepRunner` (serial by default), sharing
    trees, split-tree layouts, and centroid plans per process since none
    of them depend on the swept hardware.
    """
    points = np.asarray(points, dtype=np.float64)
    jobs = [
        (spec, points, setting, pes, banks, base_hw)
        for banks in banks_list
        for pes in pes_list
    ]
    runner = runner or SweepRunner(backend="serial")
    return runner.starmap(_sensitivity_cell, jobs)


def knob_performance_sweep(
    spec: NetworkSpec,
    points: np.ndarray,
    settings: Sequence[ApproxSetting],
    hw: CrescentHardwareConfig = CrescentHardwareConfig(),
    runner: Optional["SweepRunner"] = None,
) -> Dict[Tuple[int, Optional[int]], Tuple[float, float]]:
    """Fig. 23 support: speedup and normalized energy per ``<h_t, h_e>``.

    Returns ``{(ht, he): (speedup, norm_energy)}`` against the Mesorasi
    baseline; the accuracy axis comes from the trained models.  The
    settings grid goes through :meth:`PointCloudAccelerator.run_many`
    (one call per elision mode, since BCE flips the aggregation
    discipline), so trees and split-trees are laid out once per cloud and
    an optional ``runner`` fans the grid across worker processes.
    """
    session = SearchSession()
    baseline = make_mesorasi(hw, session=session).run_network(
        spec, points, ApproxSetting(0, None),
        plan=plan_for(session, spec, points, 0),
    )
    settings = list(settings)
    runs: Dict[Tuple[int, Optional[int]], "NetworkResult"] = {}
    for elide in (False, True):
        subset = [s for s in settings if s.uses_elision == elide]
        if not subset:
            continue
        # Default-constructed engine: it shares the accelerator's session
        # (shared in turn with the baseline), so trees *and* split-tree
        # layouts pool across the baseline and both elision-mode subsets.
        acc = PointCloudAccelerator(hw, elide_aggregation=elide, session=session)
        for setting, row in zip(subset, acc.run_many(spec, [points], subset, runner=runner)):
            runs[(setting.top_height, setting.elision_height)] = row[0]
    out: Dict[Tuple[int, Optional[int]], Tuple[float, float]] = {}
    for setting in settings:  # preserve the caller's settings order
        run = runs[(setting.top_height, setting.elision_height)]
        out[(setting.top_height, setting.elision_height)] = (
            baseline.cycles / run.cycles,
            run.energy.total / baseline.energy.total,
        )
    return out
