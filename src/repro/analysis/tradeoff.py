"""Design-space and trade-off drivers (Figs. 8, 9, 22, 23).

These sweep Crescent's two knobs (``h_t``, ``h_e``) and the hardware
configuration (#PEs × #banks), reporting the series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accel.accelerator import NetworkResult, NetworkSpec, PointCloudAccelerator
from ..accel.baselines import make_mesorasi
from ..accel.search_engine import NeighborSearchEngine
from ..core.approx_search import approximate_ball_query
from ..core.config import ApproxSetting, CrescentHardwareConfig
from ..kdtree.build import build_kdtree
from ..memsim.sram import BankedSramConfig
from ..runtime.sweep import SweepRunner

__all__ = [
    "nodes_visited_vs_top_height",
    "nodes_skipped_vs_elision_height",
    "hw_sensitivity",
    "knob_performance_sweep",
]


def nodes_visited_vs_top_height(
    points: np.ndarray,
    queries: np.ndarray,
    radius: float,
    max_neighbors: int,
    heights: Sequence[int],
) -> Dict[int, float]:
    """Fig. 8: normalized nodes visited per query vs ``h_t``.

    Normalized to the exact search (``h_t = 0``); monotonically
    non-increasing because a taller top tree shrinks the backtracking
    scope.
    """
    tree = build_kdtree(points)
    results: Dict[int, float] = {}
    base: Optional[float] = None
    for ht in heights:
        _, _, report = approximate_ball_query(
            tree, queries, radius, max_neighbors, ApproxSetting(ht, None),
            simulate_conflicts=False,
        )
        per_query = report.traversal.nodes_visited / max(report.traversal.queries, 1)
        if base is None:
            base = per_query
        results[int(ht)] = per_query / base
    return results


def nodes_skipped_vs_elision_height(
    points: np.ndarray,
    queries: np.ndarray,
    radius: float,
    max_neighbors: int,
    top_height: int,
    elision_heights: Sequence[int],
    num_pes: int = 8,
) -> Dict[int, float]:
    """Fig. 9: normalized nodes skipped per query vs ``h_e``.

    Normalized to the most aggressive elision height swept; decreases as
    ``h_e`` grows (fewer levels are elidable).
    """
    tree = build_kdtree(points)
    skipped: Dict[int, float] = {}
    for he in elision_heights:
        _, _, report = approximate_ball_query(
            tree, queries, radius, max_neighbors,
            ApproxSetting(top_height, he), num_pes=num_pes,
        )
        skipped[int(he)] = report.traversal.nodes_skipped / max(
            report.traversal.queries, 1
        )
    peak = max(skipped.values()) or 1.0
    return {he: v / peak for he, v in skipped.items()}


@dataclass
class SensitivityCell:
    num_pes: int
    num_banks: int
    speedup: float
    norm_energy: float


def hw_sensitivity(
    spec: NetworkSpec,
    points: np.ndarray,
    setting: ApproxSetting,
    pes_list: Sequence[int],
    banks_list: Sequence[int],
    base_hw: CrescentHardwareConfig = CrescentHardwareConfig(),
) -> List[SensitivityCell]:
    """Fig. 22: speedup and normalized energy over #PE × #banks.

    Each cell compares Crescent (ANS+BCE) against the Mesorasi baseline
    *on the same hardware configuration*, as the paper does.
    """
    cells: List[SensitivityCell] = []
    for banks in banks_list:
        for pes in pes_list:
            hw = base_hw.with_overrides(
                num_pes=pes,
                tree_buffer=BankedSramConfig(
                    size_bytes=base_hw.tree_buffer.size_bytes, num_banks=banks
                ),
            )
            baseline = make_mesorasi(hw).run_network(
                spec, points, ApproxSetting(0, None)
            )
            crescent = PointCloudAccelerator(
                hw, NeighborSearchEngine(hw), elide_aggregation=True
            ).run_network(spec, points, setting)
            cells.append(
                SensitivityCell(
                    num_pes=pes,
                    num_banks=banks,
                    speedup=baseline.cycles / crescent.cycles,
                    norm_energy=crescent.energy.total / baseline.energy.total,
                )
            )
    return cells


def knob_performance_sweep(
    spec: NetworkSpec,
    points: np.ndarray,
    settings: Sequence[ApproxSetting],
    hw: CrescentHardwareConfig = CrescentHardwareConfig(),
    runner: Optional["SweepRunner"] = None,
) -> Dict[Tuple[int, Optional[int]], Tuple[float, float]]:
    """Fig. 23 support: speedup and normalized energy per ``<h_t, h_e>``.

    Returns ``{(ht, he): (speedup, norm_energy)}`` against the Mesorasi
    baseline; the accuracy axis comes from the trained models.  The
    settings grid goes through :meth:`PointCloudAccelerator.run_many`
    (one call per elision mode, since BCE flips the aggregation
    discipline), so trees and split-trees are laid out once per cloud and
    an optional ``runner`` fans the grid across worker processes.
    """
    baseline = make_mesorasi(hw).run_network(spec, points, ApproxSetting(0, None))
    settings = list(settings)
    runs: Dict[Tuple[int, Optional[int]], "NetworkResult"] = {}
    for elide in (False, True):
        subset = [s for s in settings if s.uses_elision == elide]
        if not subset:
            continue
        # Default-constructed engine: it shares the accelerator's session,
        # so trees *and* split-tree layouts pool across the subset.
        acc = PointCloudAccelerator(hw, elide_aggregation=elide)
        for setting, row in zip(subset, acc.run_many(spec, [points], subset, runner=runner)):
            runs[(setting.top_height, setting.elision_height)] = row[0]
    out: Dict[Tuple[int, Optional[int]], Tuple[float, float]] = {}
    for setting in settings:  # preserve the caller's settings order
        run = runs[(setting.top_height, setting.elision_height)]
        out[(setting.top_height, setting.elision_height)] = (
            baseline.cycles / run.cycles,
            run.energy.total / baseline.energy.total,
        )
    return out
