"""Motivation-study drivers (paper Sec. 2, Figs. 2–5).

These quantify the memory irregularities of *baseline* (exact K-d tree)
neighbor search and of neighbor aggregation, using our substrates: the
K-d tree with visit tracing, the fully-associative cache, and the banked
SRAM models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..accel.workloads import evaluation_networks, workload_points
from ..core.bank_conflict import PointBufferBanking, aggregation_conflict_rate
from ..core.bank_conflict import TreeBufferBanking
from ..kdtree.build import NODE_BYTES, build_kdtree
from ..memsim.cache import FullyAssociativeCache
from ..memsim.sram import SramStats
from ..runtime.batched import BatchedBallQuery
from ..runtime.lockstep import VectorizedLockstep
from ..runtime.traced import TracedBallQuery
from ..memsim.trace import fraction_noncontiguous, interleave_round_robin
from .reporting import format_table

__all__ = [
    "layer_search_traces",
    "nonstreaming_fraction",
    "dram_traffic_study",
    "search_conflict_rate_vs_banks",
    "aggregation_conflict_by_network",
]


def _network_layer_queries(spec_name: str, seed: int = 0):
    """Yield (points, queries, radius, K) per layer of an evaluation network."""
    spec = evaluation_networks()[spec_name]
    points = workload_points(spec_name, seed=seed)
    rng = np.random.default_rng(seed)
    current = points
    for layer in spec.layers:
        queries = current[rng.choice(len(current), layer.num_queries, replace=False)]
        yield current, queries, layer.radius, layer.max_neighbors
        current = queries


def layer_search_traces(
    spec_name: str, max_queries_per_layer: int = 128, seed: int = 0
) -> List[List[int]]:
    """Per-query DRAM byte-address traces of exact neighbor search.

    Routed through the trace-capable batched engine
    (:class:`~repro.runtime.TracedBallQuery`): each layer's queries sweep
    the tree together as frontier arrays, and the per-query DFS visit
    traces — identical to running ``radius_search(...,
    record_trace=True)`` per query, which the traced equivalence suite
    pins — are recovered by rank ordering.  Node ids become byte
    addresses via the ``i * NODE_BYTES`` memory image layout.
    """
    traces: List[List[int]] = []
    for points, queries, radius, k in _network_layer_queries(spec_name, seed):
        tree = build_kdtree(points)
        result = TracedBallQuery(tree).query(
            queries[:max_queries_per_layer], radius, k
        )
        traces.extend((trace * NODE_BYTES).tolist() for trace in result.traces)
    return traces


def nonstreaming_fraction(spec_name: str, num_parallel: int = 8, seed: int = 0) -> float:
    """Fig. 2: fraction of non-continuous DRAM accesses in neighbor search.

    Per-query traces are interleaved round-robin in groups of
    ``num_parallel`` (concurrent PEs sharing the memory controller).
    """
    traces = layer_search_traces(spec_name, seed=seed)
    merged: List[np.ndarray] = []
    for start in range(0, len(traces), num_parallel):
        merged.append(interleave_round_robin(traces[start : start + num_parallel]))
    addresses = np.concatenate(merged) if merged else np.empty(0, dtype=np.int64)
    return fraction_noncontiguous(addresses, NODE_BYTES)


@dataclass
class DramTrafficResult:
    traffic_ratio: float  # actual DRAM bytes / theoretical minimum
    miss_rate: float


def dram_traffic_study(
    spec_name: str,
    cache_fraction: float = 0.01,
    num_parallel: int = 8,
    seed: int = 0,
) -> DramTrafficResult:
    """Fig. 3: DRAM traffic vs theoretical minimum + cache miss rate.

    The paper simulates a 10 MB fully-associative cache against a ~29 MB
    scene (cache ≈ 1/3 of data, misses still >85%).  We scale the cache to
    ``cache_fraction`` of the tree image to stay in the same regime for
    the smaller synthetic scenes.
    """
    traces = layer_search_traces(spec_name, seed=seed)
    merged = []
    for start in range(0, len(traces), num_parallel):
        merged.append(interleave_round_robin(traces[start : start + num_parallel]))
    addresses = np.concatenate(merged) if merged else np.empty(0, dtype=np.int64)
    if addresses.size == 0:
        # No traces (e.g. zero queries per layer): no traffic, no misses —
        # mirror nonstreaming_fraction's guard instead of crashing on
        # np.concatenate([]) / max() of an empty address stream.
        return DramTrafficResult(traffic_ratio=0.0, miss_rate=0.0)
    image_bytes = int(addresses.max()) + NODE_BYTES
    cache = FullyAssociativeCache(
        capacity_bytes=max(int(image_bytes * cache_fraction), NODE_BYTES),
        line_bytes=64,
    )
    cache.access_trace(addresses)
    # Theoretical minimum: each tree node and each query read exactly once.
    minimum = image_bytes
    ratio = cache.dram_bytes_fetched / minimum
    return DramTrafficResult(traffic_ratio=ratio, miss_rate=cache.stats.miss_rate)


def search_conflict_rate_vs_banks(
    banks_list: Sequence[int],
    num_parallel: int = 8,
    num_points: int = 2048,
    num_queries: int = 256,
    radius: float = 0.1,
    seed: int = 0,
) -> Dict[int, float]:
    """Fig. 4: tree-buffer conflict rate of K-d search vs bank count.

    Runs ``num_parallel`` concurrent exact sub-tree searches (whole tree =
    one sub-tree) in lockstep, stall-only (no elision), and reports the
    conflicted-access fraction.
    """
    pts = workload_points("PointNet++ (c)", seed=seed)[:num_points]
    tree = build_kdtree(pts)
    rng = np.random.default_rng(seed)
    queries = pts[rng.choice(len(pts), num_queries, replace=False)]
    groups = [(tree.root, np.arange(num_queries, dtype=np.int64))]
    max_hits = np.full(num_queries, 16, dtype=np.int64)
    rates: Dict[int, float] = {}
    for banks in banks_list:
        sram = SramStats()
        # Vectorized lockstep, cycle/stat-identical to driving one
        # SubtreeSearch machine per query through run_subtree_lockstep.
        engine = VectorizedLockstep(
            tree, banking=TreeBufferBanking(banks), num_pes=num_parallel
        )
        engine.run(queries, radius, groups, max_hits, sram=sram)
        rates[int(banks)] = sram.conflict_rate
    return rates


def aggregation_conflict_by_network(
    num_banks: int = 16, num_ports: int = 16, seed: int = 0
) -> Dict[str, float]:
    """Fig. 5: point-buffer conflict rate during aggregation per network."""
    banking = PointBufferBanking(num_banks)
    out: Dict[str, float] = {}
    for name in evaluation_networks():
        rates = []
        weights = []
        for points, queries, radius, k in _network_layer_queries(name, seed):
            tree = build_kdtree(points)
            # Batched engine: bit-identical indices (parity-suite-pinned),
            # no per-query Python loop — Fig. 5 needs no visit traces.
            indices, _ = BatchedBallQuery(tree).query(queries, radius, k)
            rates.append(aggregation_conflict_rate(indices, banking, num_ports))
            weights.append(indices.size)
        out[name] = float(np.average(rates, weights=weights))
    return out
