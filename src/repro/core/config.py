"""Configuration objects for the Crescent system.

Two kinds of configuration exist and are deliberately separated:

* :class:`ApproxSetting` — the *algorithmic* approximation knobs
  ``h = <h_t, h_e>`` (top-tree height and elision height) that trade
  accuracy for performance.  These are inputs to both inference and the
  approximation-aware training procedure.
* :class:`CrescentHardwareConfig` — the *microarchitecture*: buffer sizes,
  bank counts, PE count, systolic array shape.  Defaults follow Sec. 6 of
  the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..kdtree.build import NODE_BYTES
from ..memsim.dram import DramConfig
from ..memsim.energy import EnergyModel
from ..memsim.sram import BankedSramConfig

__all__ = ["ApproxSetting", "CrescentHardwareConfig", "valid_top_heights"]


@dataclass(frozen=True)
class ApproxSetting:
    """The approximation knob vector ``h = <h_t, h_e>``.

    Attributes
    ----------
    top_height:
        ``h_t`` — levels carved off the K-d tree into the top tree.  0
        disables the split (exact search, the paper's baseline).  Larger
        values speed up the search (smaller sub-trees to backtrack in) but
        lose neighbors that live across sub-tree boundaries.
    elision_height:
        ``h_e`` — the global tree depth at/below which a bank-conflicted
        tree-buffer fetch is elided rather than retried.  ``None`` disables
        elision (the ANS-only variant).  Smaller values elide more
        aggressively: faster, less accurate.
    """

    top_height: int = 0
    elision_height: int | None = None

    def __post_init__(self) -> None:
        if self.top_height < 0:
            raise ValueError("top_height must be non-negative")
        if self.elision_height is not None and self.elision_height < 0:
            raise ValueError("elision_height must be non-negative or None")

    @property
    def uses_split_tree(self) -> bool:
        return self.top_height > 0

    @property
    def uses_elision(self) -> bool:
        return self.elision_height is not None

    def scaled_to(self, tree_height: int) -> "ApproxSetting":
        """Clamp the knobs to a concrete tree height.

        The paper quotes knob values against KITTI-scale trees (height
        ~14–21); our synthetic workloads build shorter trees, so experiment
        drivers scale/clamp settings before use.
        """
        ht = min(self.top_height, max(tree_height - 1, 0))
        he = self.elision_height
        if he is not None:
            he = min(he, tree_height)
        return ApproxSetting(ht, he)


def valid_top_heights(tree_height: int, tree_buffer_nodes: int) -> Tuple[int, int]:
    """Permissible ``h_t`` range for a given tree and tree-buffer capacity.

    Implements the paper's Eq. (1)–(2): both the top tree (``2^h_t - 1``
    nodes) and any sub-tree (``2^(H - h_t + 1) - 1`` nodes) must fit in the
    tree buffer of ``S`` nodes:

    ``h_t <= log2(S + 1)``  and  ``h_t >= H + 1 - log2(S + 1)``.

    Returns ``(lo, hi)`` inclusive.  ``lo`` may exceed ``hi`` when the
    buffer is too small for the tree at any split point; callers should
    treat that as "tree must be split recursively" (out of scope, as in
    the paper).
    """
    if tree_height <= 0:
        raise ValueError("tree_height must be positive")
    if tree_buffer_nodes <= 0:
        raise ValueError("tree_buffer_nodes must be positive")
    import math

    cap = math.floor(math.log2(tree_buffer_nodes + 1))
    lo = max(0, tree_height + 1 - cap)
    hi = min(cap, tree_height)
    return lo, hi


@dataclass(frozen=True)
class CrescentHardwareConfig:
    """The accelerator organization of the paper's Sec. 6.

    Sizes: global buffer 1.5 MB; point buffer 64 KB / 16 banks; neighbor
    index buffer 12 KB / 1 bank; tree buffer 6 KB / 4 banks; query buffer
    3 KB / 1 bank; 4 search PEs with 1.5 KB result and 256 B stack buffers;
    16×16 systolic MAC array.
    """

    num_pes: int = 4
    systolic_rows: int = 16
    systolic_cols: int = 16
    global_buffer_bytes: int = 1536 * 1024
    point_buffer: BankedSramConfig = field(
        default_factory=lambda: BankedSramConfig(size_bytes=64 * 1024, num_banks=16)
    )
    tree_buffer: BankedSramConfig = field(
        default_factory=lambda: BankedSramConfig(size_bytes=6 * 1024, num_banks=4)
    )
    query_buffer: BankedSramConfig = field(
        default_factory=lambda: BankedSramConfig(size_bytes=3 * 1024, num_banks=1)
    )
    neighbor_index_buffer_bytes: int = 12 * 1024
    result_buffer_bytes: int = 1536
    stack_buffer_bytes: int = 256
    dram: DramConfig = field(default_factory=DramConfig)
    energy: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if self.systolic_rows <= 0 or self.systolic_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")

    @property
    def tree_buffer_nodes(self) -> int:
        """How many tree nodes the tree buffer can hold."""
        return self.tree_buffer.size_bytes // NODE_BYTES

    def with_overrides(self, **kwargs: object) -> "CrescentHardwareConfig":
        """Functional update (frozen dataclass convenience)."""
        from dataclasses import replace

        return replace(self, **kwargs)
