"""The end-to-end approximation pipeline used inside network layers.

:class:`ApproximationPipeline` bundles everything between raw points and
the neighbor index matrix a network layer consumes:

1. K-d tree construction over the layer's points,
2. neighbor search — exact (through the batched runtime engine), or
   Crescent's approximate search under a setting ``h = <h_t, h_e>`` with
   tree-buffer conflict simulation,
3. optional point-buffer conflict elision during aggregation (the
   replicating rewrite of the index matrix).

It is the object the approximation-aware training procedure (Sec. 5)
threads through the forward pass: sampling a new ``h`` per input is just
calling :meth:`query` with a different setting.  Since the index matrix
depends only on geometry (never on network weights), results are memoized
per ``(cache_key, setting)`` — the same economy the authors' artifact uses
to keep training affordable.  Memoization and tree construction live in a
:class:`~repro.runtime.SearchSession`: a bounded LRU whose keys fold in a
digest of the actual point/query coordinates, so reusing a ``cache_key``
with mutated geometry recomputes instead of returning a stale matrix (the
hazard the old ad-hoc dict cache had).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from ..runtime.epoch import MaterializeReport, MaterializeRequest
    from ..runtime.sweep import SweepRunner

from ..runtime.batched import BatchedBallQuery
from ..runtime.session import SearchSession
from .approx_search import approximate_ball_query
from .bank_conflict import (
    PointBufferBanking,
    TreeBufferBanking,
    apply_aggregation_elision,
)
from .config import ApproxSetting

__all__ = ["ApproximationPipeline"]


class ApproximationPipeline:
    """Produces (effective) neighbor index matrices under approximation.

    Parameters
    ----------
    tree_banking / point_banking:
        Banking configurations simulated for search and aggregation
        conflicts.  Training with one banking and inferring with another is
        how the Fig. 21 sensitivity study is run.
    num_pes:
        Concurrent search PEs in the conflict simulation.
    agg_ports:
        Concurrent aggregation requests per cycle (paper: 16).
    elide_aggregation:
        Apply the point-buffer replication rewrite (BCE in aggregation).
    session:
        The :class:`~repro.runtime.SearchSession` holding the tree and
        result caches.  Pass a shared session to pool trees/results across
        pipelines (e.g. the networks of a comparison sweep all query the
        same clouds); by default each pipeline gets its own.
    """

    def __init__(
        self,
        tree_banking: TreeBufferBanking = TreeBufferBanking(),
        point_banking: PointBufferBanking = PointBufferBanking(),
        num_pes: int = 4,
        agg_ports: int = 16,
        elide_aggregation: bool = False,
        session: Optional[SearchSession] = None,
    ):
        self.tree_banking = tree_banking
        self.point_banking = point_banking
        self.num_pes = num_pes
        self.agg_ports = agg_ports
        self.elide_aggregation = elide_aggregation
        self.session = session if session is not None else SearchSession()

    def clear_cache(self) -> None:
        self.session.results.clear()

    # ------------------------------------------------------------------
    def query(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,
        cache_key: Optional[Hashable] = None,
    ) -> np.ndarray:
        """Return the effective ``(M, K)`` neighbor index matrix.

        See :meth:`query_with_counts` for the caching contract; this is
        the network-layer entry point, which only needs the indices.
        """
        return self.query_with_counts(
            points, queries, radius, max_neighbors, setting, cache_key
        )[0]

    def query_with_counts(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,
        cache_key: Optional[Hashable] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, counts)`` — the index matrix plus true-hit counts.

        ``counts[m]`` is the number of real (pre-padding) neighbors of
        query ``m``, which accuracy studies need to separate genuine
        neighborhood loss from padding.  Both halves are memoized together,
        so a cache hit serves counts at no extra cost.

        ``cache_key`` should identify the *call site* (e.g. ``(sample_id,
        layer_name)``); the setting and banking parameters are folded into
        the memoization key automatically, and a digest of the actual
        coordinates guards against key reuse across mutated geometry.
        Pass ``None`` to disable caching (e.g. with augmentation
        transforms that change geometry every epoch).
        """
        points = np.asarray(points, dtype=np.float64)
        queries_arr = np.atleast_2d(np.asarray(queries, dtype=np.float64))

        def compute() -> Tuple[np.ndarray, np.ndarray]:
            tree = self.session.tree_for(points)
            if setting.uses_split_tree or setting.uses_elision:
                indices, counts, _ = approximate_ball_query(
                    tree,
                    queries_arr,
                    radius,
                    max_neighbors,
                    setting,
                    banking=self.tree_banking,
                    num_pes=self.num_pes,
                )
            else:
                indices, counts = BatchedBallQuery(tree).query(
                    queries_arr, radius, max_neighbors
                )
            if self.elide_aggregation:
                indices = apply_aggregation_elision(
                    indices, self.point_banking, self.agg_ports
                )
            return indices, counts

        if cache_key is None:
            return compute()
        key = self._site_key(setting, radius, max_neighbors, cache_key)
        return self.session.memoize(key, (points, queries_arr), compute)

    # ------------------------------------------------------------------
    def _site_key(
        self,
        setting: ApproxSetting,
        radius: float,
        max_neighbors: int,
        cache_key: Hashable,
    ) -> Hashable:
        """The geometry-free half of the memoization key for one call site."""
        return (
            cache_key,
            setting.top_height,
            setting.elision_height,
            self.tree_banking.num_banks,
            self.point_banking.num_banks,
            self.num_pes,
            self.agg_ports,
            self.elide_aggregation,
            radius,
            max_neighbors,
        )

    def memo_key(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,
        cache_key: Hashable,
        digest: Optional[str] = None,
    ) -> Hashable:
        """The full session-cache key a :meth:`query_with_counts` call uses.

        Batch materializers (:func:`repro.runtime.epoch.materialize_requests`)
        dedupe scheduled work with this and file worker-computed results
        under it, so the later forward-pass lookup is a guaranteed hit.
        ``digest`` short-circuits the geometry hashing when the caller has
        already digested this ``(points, queries)`` pair (a settings grid
        reuses each pair once per setting).
        """
        site = self._site_key(setting, radius, max_neighbors, cache_key)
        if digest is None:
            points = np.asarray(points, dtype=np.float64)
            queries_arr = np.atleast_2d(np.asarray(queries, dtype=np.float64))
            return self.session.memo_key(site, (points, queries_arr))
        return self.session.memo_key(site, digest=digest)

    def picklable_config(self) -> tuple:
        """The constructor arguments a worker process needs to rebuild an
        equivalent pipeline (everything except the session, which workers
        supply themselves)."""
        return (
            self.tree_banking,
            self.point_banking,
            self.num_pes,
            self.agg_ports,
            self.elide_aggregation,
        )

    def materialize(
        self,
        requests: Sequence["MaterializeRequest"],
        runner: Optional["SweepRunner"] = None,
    ) -> "MaterializeReport":
        """Batch-materialize neighbor matrices into the session cache.

        The epoch-batched counterpart of :meth:`query_with_counts`: dedupe
        the scheduled requests, skip what the session already holds, and
        compute the rest — in process, or fanned across a
        :class:`~repro.runtime.SweepRunner` process pool grouped so each
        job builds each K-d tree once.  See
        :func:`repro.runtime.epoch.materialize_requests`.
        """
        from ..runtime.epoch import materialize_requests

        return materialize_requests(self, requests, runner=runner)
