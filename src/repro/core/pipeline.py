"""The end-to-end approximation pipeline used inside network layers.

:class:`ApproximationPipeline` bundles everything between raw points and
the neighbor index matrix a network layer consumes:

1. K-d tree construction over the layer's points,
2. neighbor search — exact, or Crescent's approximate search under a
   setting ``h = <h_t, h_e>`` with tree-buffer conflict simulation,
3. optional point-buffer conflict elision during aggregation (the
   replicating rewrite of the index matrix).

It is the object the approximation-aware training procedure (Sec. 5)
threads through the forward pass: sampling a new ``h`` per input is just
calling :meth:`query` with a different setting.  Since the index matrix
depends only on geometry (never on network weights), results are memoized
per ``(cache_key, setting)`` — the same economy the authors' artifact uses
to keep training affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from ..kdtree.build import build_kdtree
from ..kdtree.exact import ball_query
from .approx_search import approximate_ball_query
from .bank_conflict import (
    PointBufferBanking,
    TreeBufferBanking,
    apply_aggregation_elision,
)
from .config import ApproxSetting

__all__ = ["ApproximationPipeline"]


class ApproximationPipeline:
    """Produces (effective) neighbor index matrices under approximation.

    Parameters
    ----------
    tree_banking / point_banking:
        Banking configurations simulated for search and aggregation
        conflicts.  Training with one banking and inferring with another is
        how the Fig. 21 sensitivity study is run.
    num_pes:
        Concurrent search PEs in the conflict simulation.
    agg_ports:
        Concurrent aggregation requests per cycle (paper: 16).
    elide_aggregation:
        Apply the point-buffer replication rewrite (BCE in aggregation).
    """

    def __init__(
        self,
        tree_banking: TreeBufferBanking = TreeBufferBanking(),
        point_banking: PointBufferBanking = PointBufferBanking(),
        num_pes: int = 4,
        agg_ports: int = 16,
        elide_aggregation: bool = False,
    ):
        self.tree_banking = tree_banking
        self.point_banking = point_banking
        self.num_pes = num_pes
        self.agg_ports = agg_ports
        self.elide_aggregation = elide_aggregation
        self._cache: Dict[Hashable, Tuple[np.ndarray, np.ndarray]] = {}

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    def query(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        radius: float,
        max_neighbors: int,
        setting: ApproxSetting,
        cache_key: Optional[Hashable] = None,
    ) -> np.ndarray:
        """Return the effective ``(M, K)`` neighbor index matrix.

        ``cache_key`` should uniquely identify the *geometry* (e.g.
        ``(sample_id, layer_name)``); the setting and banking parameters
        are folded into the memoization key automatically.  Pass ``None``
        to disable caching (e.g. with augmentation transforms that change
        geometry every epoch).
        """
        key: Optional[Hashable] = None
        if cache_key is not None:
            key = (
                cache_key,
                setting.top_height,
                setting.elision_height,
                self.tree_banking.num_banks,
                self.point_banking.num_banks,
                self.num_pes,
                self.agg_ports,
                self.elide_aggregation,
                radius,
                max_neighbors,
            )
            hit = self._cache.get(key)
            if hit is not None:
                return hit[0]

        points = np.asarray(points, dtype=np.float64)
        tree = build_kdtree(points)
        if setting.uses_split_tree or setting.uses_elision:
            indices, counts, _ = approximate_ball_query(
                tree,
                queries,
                radius,
                max_neighbors,
                setting,
                banking=self.tree_banking,
                num_pes=self.num_pes,
            )
        else:
            indices, counts = ball_query(tree, queries, radius, max_neighbors)
        if self.elide_aggregation:
            indices = apply_aggregation_elision(
                indices, self.point_banking, self.agg_ports
            )
        if key is not None:
            self._cache[key] = (indices, counts)
        return indices
