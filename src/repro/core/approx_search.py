"""Fully-streaming approximate neighbor search (paper Sec. 3 + Sec. 4).

:func:`approximate_ball_query` is the functional model of the Crescent
neighbor search engine: it produces the neighbor index matrix a network
layer consumes, under the approximation setting ``h = <h_t, h_e>``, while
collecting the statistics the evaluation reports (nodes visited/skipped,
bank conflicts, lockstep cycles, sub-tree queue occupancy).

The two serialized phases follow the hardware exactly:

1. **Top-tree phase** — every query descends the top tree (binary-search
   descent, no backtracking, points streamed past are distance-tested) and
   is appended to its sub-tree's queue.
2. **Sub-tree phase** — each sub-tree with a non-empty queue is processed
   by ``num_pes`` lockstepped PEs sharing the banked tree buffer.  A
   bank-conflicted fetch at depth ``>= h_e`` is elided: the PE skips the
   node (and hence its whole subtree) and continues with its stack.
   Conflicts above ``h_e`` stall the losing PE for a cycle.

When elision is disabled the result is bit-identical to running the exact
sub-tree-restricted search per query, and the lockstep machinery is only
engaged if the caller asks for conflict/cycle statistics.

Two interchangeable phase-2 implementations exist: the per-step reference
(:func:`run_subtree_lockstep` driving :class:`~repro.kdtree.SubtreeSearch`
machines, one Python call per node visit) and the vectorized engine
(:class:`~repro.runtime.VectorizedLockstep`, all PEs of all sub-trees as
NumPy stack arrays).  They are cycle-, stall-, stat-, and hit-identical —
pinned by the randomized equivalence suite — and ``engine=`` selects one;
the vectorized engine is the default because the reference loop made the
simulator, not the workload, the bottleneck of every figure benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kdtree.build import KdTree
from ..kdtree.exact import knn_search
from ..kdtree.stats import TraversalStats
from ..kdtree.traversal import SubtreeSearch
from ..memsim.sram import SramStats
from .bank_conflict import TreeBufferBanking
from .config import ApproxSetting
from .split_tree import SplitTree, descend_step

__all__ = ["SearchReport", "approximate_ball_query", "run_subtree_lockstep"]


@dataclass
class SearchReport:
    """Everything the evaluation wants to know about one search batch."""

    traversal: TraversalStats = field(default_factory=TraversalStats)
    tree_sram: SramStats = field(default_factory=SramStats)
    lockstep_cycles: int = 0
    stall_cycles: int = 0
    subtrees_loaded: int = 0
    queue_occupancy: Dict[int, int] = field(default_factory=dict)
    top_tree_visits: int = 0

    @property
    def nodes_visited(self) -> int:
        return self.traversal.nodes_visited

    @property
    def nodes_skipped(self) -> int:
        return self.traversal.nodes_skipped


def run_subtree_lockstep(
    machines: List[SubtreeSearch],
    local_slot: Dict[int, int],
    banking: TreeBufferBanking,
    num_pes: int,
    sram: SramStats,
    elide_policy: str = "skip",
) -> Tuple[int, int]:
    """Drive ``machines`` to completion on ``num_pes`` lockstepped PEs.

    Each cycle, every occupied PE attempts to fetch its machine's
    top-of-stack node from the banked tree buffer.  Round-robin arbitration
    (priority rotates by one PE per cycle, the standard fair arbiter) picks
    one winner per bank; losers either elide when the machine permits it,
    or stall and retry next cycle.

    ``elide_policy`` selects what an elided loser does: ``"skip"`` drops
    the requested node and its whole subtree (the paper's shipped design);
    ``"descend"`` additionally continues from the *winner's* node whenever
    that node lies beneath the requested one (the Sec. 4.2 future-work
    optimization — fewer nodes lost, same termination guarantee).

    Returns ``(cycles, stall_cycles)`` and accumulates SRAM stats.
    """
    if elide_policy not in ("skip", "descend"):
        raise ValueError(f"unknown elide_policy {elide_policy!r}")
    pending = list(reversed(machines))  # pop() from the end = FIFO order
    slots: List[Optional[SubtreeSearch]] = [None] * num_pes
    cycles = 0
    stalls = 0
    while True:
        # Refill free PE slots.
        for i in range(num_pes):
            if slots[i] is not None and slots[i].done:
                slots[i] = None
            if slots[i] is None and pending:
                candidate = pending.pop()
                if not candidate.done:
                    slots[i] = candidate
        active = [(i, m) for i, m in enumerate(slots) if m is not None and not m.done]
        if not active:
            if not pending:
                break
            continue
        cycles += 1
        nodes = np.array([m.peek() for _, m in active], dtype=np.int64)
        slot_idx = np.array([local_slot[int(n)] for n in nodes], dtype=np.int64)
        banks = banking.bank_of_slot(slot_idx)
        # Round-robin arbitration: the PE with top priority rotates each
        # cycle so no port can starve the others.
        start = cycles % len(active)
        order = list(range(start, len(active))) + list(range(start))
        served_banks: Dict[int, int] = {}
        served_node: Dict[int, int] = {}
        for j in order:
            (pe, machine), node, bank = active[j], nodes[j], banks[j]
            sram.accesses += 1
            if int(bank) not in served_banks:
                served_banks[int(bank)] = pe
                served_node[int(bank)] = int(node)
                sram.reads_served += 1
                machine.advance(elide=False)
            else:
                sram.conflicted += 1
                winner_node = served_node[int(bank)]
                if winner_node == int(node):
                    # Same address: the winner's read is broadcast and the
                    # loser's fetch is *served* — an ordinary visit in the
                    # traversal stats, never an elision.
                    sram.broadcasts += 1
                    machine.advance(elide=False)
                elif machine.would_elide(int(node)):
                    sram.elided += 1
                    if elide_policy == "descend" and machine.tree.is_descendant(
                        winner_node, int(node)
                    ):
                        machine.advance(elide=True, substitute=winner_node)
                    else:
                        machine.advance(elide=True)
                else:
                    stalls += 1  # retry next cycle
    sram.cycles += cycles
    return cycles, stalls


def approximate_ball_query(
    tree: KdTree,
    queries: np.ndarray,
    radius: float,
    max_neighbors: int,
    setting: ApproxSetting,
    banking: TreeBufferBanking = TreeBufferBanking(),
    num_pes: int = 4,
    simulate_conflicts: Optional[bool] = None,
    record_trace: bool = False,
    engine: str = "vector",
    split: Optional[SplitTree] = None,
) -> Tuple[np.ndarray, np.ndarray, SearchReport]:
    """Approximate neighbor search over a query batch.

    Same contract as :func:`repro.kdtree.ball_query` — an ``(M, K)`` padded
    index matrix plus true-hit counts — with the Crescent approximations
    applied.  ``simulate_conflicts`` defaults to "on iff the setting uses
    elision" (without elision, conflicts change timing but not results).

    ``engine`` selects the phase-2 implementation: ``"vector"`` (default)
    runs the :class:`~repro.runtime.VectorizedLockstep` engine — every
    sub-tree batch advances as NumPy stack arrays, cycle- and
    stat-identical to the reference; ``"reference"`` drives one
    :class:`~repro.kdtree.SubtreeSearch` machine per query through
    :func:`run_subtree_lockstep`, one Python step per node visit.
    ``record_trace`` needs the per-visit hook and therefore always uses
    the reference engine.  ``split`` optionally reuses an existing
    :class:`~repro.core.split_tree.SplitTree` over ``tree`` (it must match
    the scaled ``setting.top_height``), the reuse path sessions provide.

    With ``setting = ApproxSetting(0, None)`` the output is exactly the
    exact ball query (the baseline), which the tests pin down.
    """
    if max_neighbors <= 0:
        raise ValueError("max_neighbors must be positive")
    if engine not in ("vector", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    if record_trace:
        engine = "reference"  # the vectorized engine records no visit trace
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    setting = setting.scaled_to(tree.height)
    if simulate_conflicts is None:
        simulate_conflicts = setting.uses_elision
    # ``split`` may come from a session cache keyed by structural digest,
    # so it can be a different object over an identical tree — but its
    # split height must match the (scaled) setting.
    if split is not None and split.top_height != setting.top_height:
        raise ValueError(
            f"split has top_height {split.top_height}, "
            f"setting wants {setting.top_height}"
        )

    report = SearchReport()
    m = len(queries)

    # ------------------------------------------------------------------
    # Phase 1: top-tree descent (vectorized), collecting streamed-past hits.
    # A query whose branch runs out of children before ``top_height``
    # levels parks at that leaf: it is distance-tested against the leaf
    # once (the fetch that discovered the dead end), not once per
    # remaining level — re-testing inflated ``nodes_visited`` and
    # ``top_tree_visits`` (and the distance-energy term derived from
    # them).
    # ------------------------------------------------------------------
    top_hits: List[List[int]] = [[] for _ in range(m)]
    if setting.top_height > 0:
        current = np.full(m, tree.root, dtype=np.int64)
        alive = np.ones(m, dtype=bool)
        r2 = radius * radius
        visits = 0
        for _ in range(setting.top_height):
            act = np.nonzero(alive)[0]
            if len(act) == 0:
                break
            cur = current[act]
            visits += len(act)
            pts = tree.points[tree.point_id[cur]]
            d2 = ((queries[act] - pts) ** 2).sum(axis=1)
            for k in np.nonzero(d2 <= r2)[0]:
                top_hits[act[k]].append(int(tree.point_id[cur[k]]))
            nxt, parked = descend_step(tree, queries[act], cur)
            if parked.any():
                alive[act[parked]] = False
            current[act[~parked]] = nxt[~parked]
        assigned = current
        report.top_tree_visits = visits
        report.traversal.nodes_visited += visits
    else:
        assigned = np.full(m, tree.root, dtype=np.int64)
    report.traversal.queries += m

    # Queue occupancy (per sub-tree).
    uniq_roots, inverse = np.unique(assigned, return_inverse=True)
    report.queue_occupancy = {
        int(r): int((inverse == i).sum()) for i, r in enumerate(uniq_roots)
    }
    report.subtrees_loaded = len(uniq_roots)

    # ------------------------------------------------------------------
    # Phase 2: per-sub-tree search.
    # ------------------------------------------------------------------
    hits_per_query: List[List[int]] = [list(h) for h in top_hits]
    group_q_ids = [
        np.nonzero(inverse == root_pos)[0] for root_pos in range(len(uniq_roots))
    ]
    if engine == "vector":
        # repro: allow[reference-freeze] -- explicit engine routing: only the engine="vector" branch touches this import; the engine="reference" path below stays per-step and never loads the vectorized machine
        from ..runtime.lockstep import VectorizedLockstep

        vls = VectorizedLockstep(tree, banking=banking, num_pes=num_pes)
        mach_queries = (
            np.concatenate(group_q_ids) if group_q_ids else np.zeros(0, np.int64)
        )
        remaining = np.array(
            [max(max_neighbors - len(hits_per_query[qi]), 0) for qi in mach_queries],
            dtype=np.int64,
        )
        if simulate_conflicts:
            groups = [
                (int(root), q_ids) for root, q_ids in zip(uniq_roots, group_q_ids)
            ]
            outcome = vls.run(
                queries,
                radius,
                groups,
                remaining,
                elide_depth=setting.elision_height,
                traversal=report.traversal,
                sram=report.tree_sram,
            )
            report.lockstep_cycles += outcome.cycles
            report.stall_cycles += outcome.stalls
            machine_hits = outcome.hits
        else:
            roots_per_machine = np.repeat(
                uniq_roots, [len(q) for q in group_q_ids]
            ).astype(np.int64)
            machine_hits = vls.run_free(
                queries[mach_queries],
                radius,
                roots_per_machine,
                remaining,
                traversal=report.traversal,
            )
        for qi, found in zip(mach_queries, machine_hits):
            hits_per_query[qi].extend(found)
    else:
        if split is None:
            split = SplitTree(tree, setting.top_height)
        node_to_slot_cache: Dict[int, Dict[int, int]] = {}
        for root, q_ids in zip(uniq_roots, group_q_ids):
            machines: List[SubtreeSearch] = []
            for qi in q_ids:
                remaining = max_neighbors - len(hits_per_query[qi])
                machines.append(
                    SubtreeSearch(
                        tree,
                        queries[qi],
                        radius,
                        root=int(root),
                        max_neighbors=remaining if remaining > 0 else 0,
                        elide_depth=setting.elision_height,
                        stats=report.traversal,
                        record_trace=record_trace,
                    )
                )
            if simulate_conflicts:
                slot_map = node_to_slot_cache.get(int(root))
                if slot_map is None:
                    nodes = split.subtree_nodes(int(root))
                    slot_map = {int(n): i for i, n in enumerate(nodes)}
                    node_to_slot_cache[int(root)] = slot_map
                cycles, stalls = run_subtree_lockstep(
                    machines, slot_map, banking, num_pes, report.tree_sram
                )
                report.lockstep_cycles += cycles
                report.stall_cycles += stalls
            else:
                for machine in machines:
                    machine.run_to_completion()
            for qi, machine in zip(q_ids, machines):
                hits_per_query[qi].extend(machine.hits)

    # ------------------------------------------------------------------
    # Assemble the padded index matrix (the ball_query contract).
    # ------------------------------------------------------------------
    indices = np.zeros((m, max_neighbors), dtype=np.int64)
    counts = np.zeros(m, dtype=np.int64)
    for qi in range(m):
        # Order-preserving dedup: a short top-tree branch can assign a
        # query to a node it already passed, re-testing those points in
        # phase 2.
        found = list(dict.fromkeys(hits_per_query[qi]))[:max_neighbors]
        counts[qi] = len(found)
        if not found:
            found = knn_search(tree, queries[qi], 1)
        row = found + [found[0]] * (max_neighbors - len(found))
        indices[qi] = row
    return indices, counts, report
