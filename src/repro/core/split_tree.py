"""The two-level split-tree structure (paper Sec. 3.1, Fig. 6).

A :class:`SplitTree` is a view over a balanced :class:`~repro.kdtree.KdTree`
that carves the first ``h_t`` levels into a *top tree* whose leaves are the
roots of *sub-trees*.  The search then proceeds in two serialized phases:

1. every query descends the top tree (no backtracking) and is appended to
   the queue of the sub-tree it lands in;
2. each sub-tree is loaded on-chip once, and its queued queries search it
   with ordinary K-d traversal, backtracking *limited to the sub-tree*.

The class also defines Crescent's DRAM layout (Fig. 7, right panel): the
top tree first, then each sub-tree as a contiguous block, so both phases
stream from DRAM.  :meth:`dram_address_of` maps a node to that layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..kdtree.build import NODE_BYTES, KdTree

__all__ = ["SplitTree", "descend_step"]


def descend_step(
    tree: KdTree, queries: np.ndarray, current: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One level of vectorized BST descent for ``queries`` at ``current``.

    Returns ``(nxt, parked)``: the near child per query (falling back to
    the sibling on a short branch) and a mask of queries whose node has no
    children at all — *parked* queries, which every descent consumer must
    stop advancing (and fetching/testing) rather than re-visit the same
    leaf each remaining level.  Shared by the functional phase-1 descent,
    :meth:`SplitTree.route_queries`, and the engine's top-phase cycle
    model so their routing and node accounting cannot drift apart.
    """
    rows = np.arange(len(current))
    pts = tree.points[tree.point_id[current]]
    dims = tree.split_dim[current]
    go_left = queries[rows, dims] <= pts[rows, dims]
    nxt = np.where(go_left, tree.left[current], tree.right[current])
    missing = nxt < 0
    if missing.any():
        alt = np.where(go_left, tree.right[current], tree.left[current])
        nxt = np.where(missing, alt, nxt)
    return nxt.astype(np.int64), nxt < 0


class SplitTree:
    """A K-d tree partitioned into a top tree plus sub-trees.

    Parameters
    ----------
    tree:
        The underlying balanced K-d tree (level-order numbered).
    top_height:
        ``h_t``.  0 means "no split": the whole tree is a single sub-tree
        rooted at the root, and phase 1 is a no-op.  Must be less than the
        tree height.
    """

    def __init__(self, tree: KdTree, top_height: int):
        if top_height < 0:
            raise ValueError("top_height must be non-negative")
        if top_height >= tree.height:
            raise ValueError(
                f"top_height {top_height} must be < tree height {tree.height}"
            )
        self.tree = tree
        self.top_height = top_height
        # Level-order numbering ⇒ the top tree is the contiguous id prefix
        # [0, first_subtree_node).
        if top_height == 0:
            self._top_nodes = np.empty(0, dtype=np.int64)
            self.subtree_roots = np.array([tree.root], dtype=np.int64)
        else:
            self._top_nodes = np.nonzero(tree.depth < top_height)[0]
            self.subtree_roots = np.nonzero(tree.depth == top_height)[0]
        # Contiguous DRAM layout: top tree first, then each sub-tree block.
        self._address: Dict[int, int] = {}
        offset = 0
        for nid in self._top_nodes:
            self._address[int(nid)] = offset
            offset += NODE_BYTES
        self._subtree_base: Dict[int, int] = {}
        self._subtree_nodes: Dict[int, np.ndarray] = {}
        for root in self.subtree_roots:
            nodes = tree.subtree_nodes(int(root))
            self._subtree_base[int(root)] = offset
            self._subtree_nodes[int(root)] = nodes
            for nid in nodes:
                self._address[int(nid)] = offset
                offset += NODE_BYTES
        self._total_bytes = offset

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_subtrees(self) -> int:
        return len(self.subtree_roots)

    @property
    def top_nodes(self) -> np.ndarray:
        """Node ids in the top tree (empty when ``top_height == 0``)."""
        return self._top_nodes

    def subtree_nodes(self, root: int) -> np.ndarray:
        """All node ids of the sub-tree rooted at ``root`` (preorder).

        ``root`` is normally one of :attr:`subtree_roots`, but unbalanced
        short branches can route a query to a node *above* the sub-tree
        level (the descent runs out of children early); those are computed
        on demand.
        """
        nodes = self._subtree_nodes.get(int(root))
        if nodes is None:
            nodes = self.tree.subtree_nodes(int(root))
        return nodes

    def subtree_size(self, root: int) -> int:
        return int(self.tree.subtree_size[int(root)])

    def max_subtree_nodes(self) -> int:
        """Size of the largest sub-tree — what must fit in the tree buffer."""
        return max(self.subtree_size(int(r)) for r in self.subtree_roots)

    def top_tree_bytes(self) -> int:
        return len(self._top_nodes) * NODE_BYTES

    def subtree_bytes(self, root: int) -> int:
        return self.subtree_size(root) * NODE_BYTES

    @property
    def total_bytes(self) -> int:
        """Size of the whole split-tree memory image."""
        return self._total_bytes

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def dram_address_of(self, node: int) -> int:
        """Byte address of ``node`` in the split-tree DRAM image."""
        return self._address[int(node)]

    # ------------------------------------------------------------------
    # Query routing (phase 1, vectorized functional form)
    # ------------------------------------------------------------------
    def route_queries(self, queries: np.ndarray) -> np.ndarray:
        """Assign each query to a sub-tree root by pure BST descent.

        Vectorized equivalent of running
        :class:`~repro.kdtree.TopTreeDescent` for every query while
        ignoring top-tree point hits (those are handled by the searchers).
        Returns the sub-tree root node id per query.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = len(queries)
        current = np.full(n, self.tree.root, dtype=np.int64)
        if self.top_height == 0:
            return current
        for _ in range(self.top_height):
            nxt, parked = descend_step(self.tree, queries, current)
            # Parked queries (childless node before the sub-tree level)
            # stay where they are.
            current = np.where(parked, current, nxt)
        return current

    def queue_occupancy(self, queries: np.ndarray) -> Dict[int, int]:
        """Queries routed to each sub-tree (the per-sub-tree queue lengths)."""
        roots = self.route_queries(queries)
        uniq, counts = np.unique(roots, return_counts=True)
        occ = {int(r): 0 for r in self.subtree_roots}
        for r, c in zip(uniq, counts):
            occ[int(r)] = int(c)
        return occ
