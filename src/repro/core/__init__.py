"""Crescent core: split-tree approximate search, bank-conflict elision, configs."""

from .config import ApproxSetting, CrescentHardwareConfig, valid_top_heights
from .split_tree import SplitTree
from .bank_conflict import (
    PointBufferBanking,
    TreeBufferBanking,
    aggregation_conflict_rate,
    apply_aggregation_elision,
    point_buffer_stall_stats,
)
from .approx_search import SearchReport, approximate_ball_query, run_subtree_lockstep
from .pipeline import ApproximationPipeline

__all__ = [
    "ApproxSetting",
    "CrescentHardwareConfig",
    "valid_top_heights",
    "SplitTree",
    "PointBufferBanking",
    "TreeBufferBanking",
    "aggregation_conflict_rate",
    "apply_aggregation_elision",
    "point_buffer_stall_stats",
    "ApproximationPipeline",
    "SearchReport",
    "approximate_ball_query",
    "run_subtree_lockstep",
]
