"""Bank-conflict modeling and selective elision (paper Sec. 4).

Two on-chip buffers suffer input-dependent conflicts:

* the **tree buffer** during neighbor search — handled inside the lockstep
  search simulation (:mod:`repro.core.approx_search`), which uses
  :class:`TreeBufferBanking` from this module to map nodes to banks;
* the **point buffer** during neighbor aggregation — handled here by
  :func:`apply_aggregation_elision`, which rewrites the neighbor index
  matrix exactly the way the elision hardware does: a conflicted fetch
  observes the winner's data, i.e. the loser's neighbor is replaced by the
  winner's neighbor (hardware-implicit replication, Sec. 4.2).

Both models are deterministic given the banking configuration, which is
what lets training replay inference-time behaviour (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..memsim.sram import BankedSramConfig, SramStats

__all__ = [
    "TreeBufferBanking",
    "PointBufferBanking",
    "apply_aggregation_elision",
    "aggregation_conflict_rate",
]


@dataclass(frozen=True)
class TreeBufferBanking:
    """Node-to-bank mapping for the tree buffer.

    Tree nodes are record-interleaved: the buffer word is wide enough for a
    whole node record, and consecutive nodes (in the on-chip layout order)
    land in consecutive banks.  During the top-tree phase the layout order
    is the level-order node id; during a sub-tree phase it is the node's
    preorder position within the loaded sub-tree.
    """

    num_banks: int = 4

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")

    def bank_of_slot(self, slot: np.ndarray) -> np.ndarray:
        """Bank of a buffer slot index (node position in the loaded tree)."""
        return np.asarray(slot, dtype=np.int64) % self.num_banks


@dataclass(frozen=True)
class PointBufferBanking:
    """Point-to-bank mapping for the aggregation point buffer.

    Points are record-interleaved by point id — each bank's word holds one
    whole point record (the "wide words" layout conventional DNN
    accelerators use), so ``bank = point_id mod num_banks``.
    """

    num_banks: int = 16

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")

    def bank_of_point(self, point_id: np.ndarray) -> np.ndarray:
        return np.asarray(point_id, dtype=np.int64) % self.num_banks


def _first_occurrence_winner(banks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """For each row of ``banks`` (G, P): loser mask and winner column index.

    ``lost[g, j]`` is True when some column ``k < j`` requested the same
    bank; ``winner[g, j]`` is that first column (or ``j`` itself if it won).
    """
    g, p = banks.shape
    same = banks[:, :, None] == banks[:, None, :]  # (G, P, P): [g, j, k]
    earlier = np.triu(np.ones((p, p), dtype=bool), k=1).T  # k < j
    same_earlier = same & earlier[None, :, :]
    lost = same_earlier.any(axis=2)
    winner = np.where(lost, np.argmax(same_earlier, axis=2), np.arange(p)[None, :])
    return lost, winner


def apply_aggregation_elision(
    indices: np.ndarray,
    banking: PointBufferBanking,
    num_ports: int = 16,
    stats: Optional[SramStats] = None,
) -> np.ndarray:
    """Rewrite a neighbor index matrix under point-buffer conflict elision.

    ``indices`` is the ``(M, K)`` matrix from the neighbor search.  Each
    query's ``K`` neighbors are fetched in groups of ``num_ports``
    concurrent requests; within a group, a request that loses bank
    arbitration receives the winner's point instead — replicating one of
    the query's own neighbors, which is safe because all requests in a
    group belong to the same query (Sec. 4.2).

    Returns the *effective* index matrix the MLP actually consumes.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2:
        raise ValueError("indices must be (M, K)")
    if num_ports <= 0:
        raise ValueError("num_ports must be positive")
    m, k = indices.shape
    out = indices.copy()
    for start in range(0, k, num_ports):
        chunk = out[:, start : start + num_ports]
        banks = banking.bank_of_point(chunk)
        lost, winner = _first_occurrence_winner(banks)
        rows = np.arange(m)[:, None]
        replaced = chunk[rows, winner]
        out[:, start : start + num_ports] = np.where(lost, replaced, chunk)
        if stats is not None:
            stats.accesses += chunk.size
            stats.conflicted += int(lost.sum())
            stats.elided += int(lost.sum())
            # One read per winning request; losers reuse the winner's data.
            stats.reads_served += chunk.size - int(lost.sum())
            stats.cycles += m  # one cycle per group of concurrent requests
    return out


def aggregation_conflict_rate(
    indices: np.ndarray,
    banking: PointBufferBanking,
    num_ports: int = 16,
) -> float:
    """Fraction of aggregation SRAM accesses that are bank-conflicted.

    This is the paper's Fig. 5 metric (measured there at 38–57% with 16
    banks and 16 concurrent requests).  No elision is applied — it measures
    the baseline conflict pressure.
    """
    stats = SramStats()
    apply_aggregation_elision(indices, banking, num_ports, stats=stats)
    return stats.conflict_rate
