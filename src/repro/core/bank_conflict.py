"""Bank-conflict modeling and selective elision (paper Sec. 4).

Two on-chip buffers suffer input-dependent conflicts:

* the **tree buffer** during neighbor search — handled inside the lockstep
  search simulation (:mod:`repro.core.approx_search`), which uses
  :class:`TreeBufferBanking` from this module to map nodes to banks;
* the **point buffer** during neighbor aggregation — handled here by
  :func:`apply_aggregation_elision`, which rewrites the neighbor index
  matrix exactly the way the elision hardware does: a conflicted fetch
  observes the winner's data, i.e. the loser's neighbor is replaced by the
  winner's neighbor (hardware-implicit replication, Sec. 4.2).  Requests
  for the *same point id* are not conflicts at all: the winner's read is
  broadcast to them (mirroring the tree buffer's same-address discipline),
  so duplicate ids — guaranteed by ``ball_query``'s repeat-first-neighbor
  padding — serialize nothing and replicate nothing.

Both models are deterministic given the banking configuration, which is
what lets training replay inference-time behaviour (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..memsim.sram import BankedSramConfig, SramStats

__all__ = [
    "TreeBufferBanking",
    "PointBufferBanking",
    "apply_aggregation_elision",
    "point_buffer_stall_stats",
    "aggregation_conflict_rate",
]


@dataclass(frozen=True)
class TreeBufferBanking:
    """Node-to-bank mapping for the tree buffer.

    Tree nodes are record-interleaved: the buffer word is wide enough for a
    whole node record, and consecutive nodes (in the on-chip layout order)
    land in consecutive banks.  During the top-tree phase the layout order
    is the level-order node id; during a sub-tree phase it is the node's
    preorder position within the loaded sub-tree.
    """

    num_banks: int = 4

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")

    def bank_of_slot(self, slot: np.ndarray) -> np.ndarray:
        """Bank of a buffer slot index (node position in the loaded tree)."""
        return np.asarray(slot, dtype=np.int64) % self.num_banks


@dataclass(frozen=True)
class PointBufferBanking:
    """Point-to-bank mapping for the aggregation point buffer.

    Points are record-interleaved by point id — each bank's word holds one
    whole point record (the "wide words" layout conventional DNN
    accelerators use), so ``bank = point_id mod num_banks``.
    """

    num_banks: int = 16

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")

    def bank_of_point(self, point_id: np.ndarray) -> np.ndarray:
        return np.asarray(point_id, dtype=np.int64) % self.num_banks


def _first_occurrence_winner(
    chunk: np.ndarray, banks: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Arbitrate one ``(G, P)`` group of point-buffer requests.

    ``lost[g, j]`` is True when some column ``k < j`` requested the same
    bank; ``winner[g, j]`` is that first column — the bank's arbitration
    winner — or ``j`` itself if it won.  ``bcast[g, j]`` marks the losers
    whose point id equals the winner's: the winner's read is broadcast to
    them (the wide-word layout puts a whole point record on one bank
    word), so they are *served*, not conflicted — a duplicate id never
    serializes, costs no extra read energy, and keeps its own data.
    """
    g, p = banks.shape
    same = banks[:, :, None] == banks[:, None, :]  # (G, P, P): [g, j, k]
    earlier = np.triu(np.ones((p, p), dtype=bool), k=1).T  # k < j
    same_earlier = same & earlier[None, :, :]
    lost = same_earlier.any(axis=2)
    winner = np.where(lost, np.argmax(same_earlier, axis=2), np.arange(p)[None, :])
    bcast = lost & (np.take_along_axis(chunk, winner, axis=1) == chunk)
    return lost, winner, bcast


def apply_aggregation_elision(
    indices: np.ndarray,
    banking: PointBufferBanking,
    num_ports: int = 16,
    stats: Optional[SramStats] = None,
) -> np.ndarray:
    """Rewrite a neighbor index matrix under point-buffer conflict elision.

    ``indices`` is the ``(M, K)`` matrix from the neighbor search.  Each
    query's ``K`` neighbors are fetched in groups of ``num_ports``
    concurrent requests; within a group, a request that loses bank
    arbitration to a *different* point id receives the winner's point
    instead — replicating one of the query's own neighbors, which is safe
    because all requests in a group belong to the same query (Sec. 4.2).
    A loser requesting the *same* point id as the winner is served by the
    winner's broadcast read: it keeps its own neighbor, is ledgered in
    ``SramStats.broadcasts`` (never ``conflicted``/``elided``), and costs
    no extra read energy — ``ball_query``'s repeat-first-neighbor padding
    makes such duplicates routine on short rows.

    Returns the *effective* index matrix the MLP actually consumes.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2:
        raise ValueError("indices must be (M, K)")
    if num_ports <= 0:
        raise ValueError("num_ports must be positive")
    m, k = indices.shape
    out = indices.copy()
    for start in range(0, k, num_ports):
        chunk = out[:, start : start + num_ports]
        banks = banking.bank_of_point(chunk)
        lost, winner, bcast = _first_occurrence_winner(chunk, banks)
        rows = np.arange(m)[:, None]
        replaced = chunk[rows, winner]
        # Replacing a broadcast port is a no-op (winner's id == its own),
        # so one where() covers both service outcomes.
        out[:, start : start + num_ports] = np.where(lost, replaced, chunk)
        if stats is not None:
            elided = int(lost.sum()) - int(bcast.sum())
            stats.accesses += chunk.size
            stats.conflicted += elided
            stats.elided += elided
            stats.broadcasts += int(bcast.sum())
            # One read per winning request; losers reuse the winner's data.
            stats.reads_served += chunk.size - int(lost.sum())
            stats.cycles += m  # one cycle per group of concurrent requests
    return out


def point_buffer_stall_stats(
    indices: np.ndarray,
    banking: PointBufferBanking,
    num_ports: int = 16,
    stats: Optional[SramStats] = None,
) -> int:
    """Account a stall-and-retry (baseline, no elision) aggregation pass.

    A group of ``num_ports`` concurrent requests serializes to the worst
    per-bank count of *distinct* point ids: each distinct id is read once
    (its duplicates are broadcast-served off that read, whichever retry
    cycle it lands on — the retry model's counterpart of the elide path's
    winner-only broadcast), and every distinct id after a bank's first is
    a stalled retry.  Returns the total cycles and accumulates the ledger
    into ``stats``; the index matrix itself is untouched — stalling
    changes timing, never data.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2:
        raise ValueError("indices must be (M, K)")
    if num_ports <= 0:
        raise ValueError("num_ports must be positive")
    m, k = indices.shape
    nb = banking.num_banks
    cycles = 0
    for start in range(0, k, num_ports):
        chunk = indices[:, start : start + num_ports]
        if chunk.size == 0:
            continue
        lo = int(chunk.min())
        span = int(chunk.max()) - lo + 1
        keys = np.arange(m, dtype=np.int64)[:, None] * span + (chunk - lo)
        uniq = np.unique(keys)  # distinct (row, id) pairs
        uniq_banks = banking.bank_of_point(uniq % span + lo)
        per_bank = np.bincount(
            (uniq // span) * nb + uniq_banks, minlength=m * nb
        ).reshape(m, nb)  # (M, nb): distinct ids per bank per group
        group_cycles = int(per_bank.max(axis=1).sum())
        cycles += group_cycles
        if stats is not None:
            stats.accesses += chunk.size
            stats.reads_served += len(uniq)  # energy-bearing reads only
            stats.broadcasts += chunk.size - len(uniq)
            stats.conflicted += len(uniq) - int((per_bank > 0).sum())
            stats.cycles += group_cycles
    return cycles


def aggregation_conflict_rate(
    indices: np.ndarray,
    banking: PointBufferBanking,
    num_ports: int = 16,
) -> float:
    """Fraction of aggregation SRAM accesses that are bank-conflicted.

    This is the paper's Fig. 5 metric (measured there at 38–57% with 16
    banks and 16 concurrent requests).  No elision is applied — the rate
    comes from :func:`point_buffer_stall_stats`, the same ledger the
    baseline stall-mode :class:`~repro.accel.AggregationUnit` keeps, so
    the reported pressure is exactly what baseline hardware serializes.
    Same-address requests are served by broadcast, not serialization, so
    an all-duplicate row (a fully padded short row) reports a conflict
    rate of exactly 0.
    """
    stats = SramStats()
    point_buffer_stall_stats(indices, banking, num_ports, stats=stats)
    return stats.conflict_rate
