"""Memory-system simulator: DRAM, banked SRAM, cache, energy accounting."""

from .trace import continuous_mask, fraction_noncontiguous, interleave_round_robin
from .dram import DramConfig, DramModel, DramUsage
from .cache import CacheStats, FullyAssociativeCache
from .sram import BankedSram, BankedSramConfig, SramStats, crossbar_area_relative
from .energy import EnergyBreakdown, EnergyModel

__all__ = [
    "continuous_mask",
    "fraction_noncontiguous",
    "interleave_round_robin",
    "DramConfig",
    "DramModel",
    "DramUsage",
    "CacheStats",
    "FullyAssociativeCache",
    "BankedSram",
    "BankedSramConfig",
    "SramStats",
    "crossbar_area_relative",
    "EnergyBreakdown",
    "EnergyModel",
]
