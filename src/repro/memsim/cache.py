"""Fully-associative LRU cache simulator.

Used only by the motivation study (the paper's Fig. 3): an intentionally
*unrealistic* fully-associative cache in front of DRAM still suffers >85%
miss rates on neighbor search, and the resulting DRAM traffic is ~10× the
theoretical minimum.  The simulator is a straightforward LRU over cache
lines, implemented with an ordered dict so lookups stay O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "FullyAssociativeCache"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return 0.0 if self.accesses == 0 else self.misses / self.accesses


class FullyAssociativeCache:
    """A fully-associative, LRU-replacement cache of byte-addressed lines."""

    def __init__(self, capacity_bytes: int, line_bytes: int = 64):
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ValueError("capacity_bytes and line_bytes must be positive")
        if capacity_bytes < line_bytes:
            raise ValueError("cache smaller than one line")
        self.line_bytes = line_bytes
        self.num_lines = capacity_bytes // line_bytes
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self.num_lines * self.line_bytes

    def reset(self) -> None:
        self._lines.clear()
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; return True on hit."""
        line = int(address) // self.line_bytes
        if line in self._lines:
            self._lines.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._lines[line] = None
        if len(self._lines) > self.num_lines:
            self._lines.popitem(last=False)
        return False

    def access_trace(self, addresses: np.ndarray) -> CacheStats:
        """Run a whole trace; returns the cumulative stats for convenience."""
        for addr in np.asarray(addresses, dtype=np.int64):
            self.access(int(addr))
        return self.stats

    @property
    def dram_bytes_fetched(self) -> int:
        """Bytes transferred from DRAM (one line per miss)."""
        return self.stats.misses * self.line_bytes
