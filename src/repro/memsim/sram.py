"""Banked SRAM model with conflict detection and selective elision.

This is the hardware structure of the paper's Fig. 10: a multi-port,
multi-bank scratchpad whose arbitration logic detects when concurrent
requests map to the same bank.  Three service disciplines are modeled:

* **stall** (baseline): conflicting requests serialize; a group of ``c``
  requests to one bank takes ``c`` cycles and ``c - 1`` of them are counted
  as conflicted.
* **elide-replicate** (feature-computation mode): the winner's data is
  forwarded to the losers (the AND gate lowering the Conflict signal), so
  the group takes 1 cycle and losers consume no SRAM read energy.
* **elide-drop** (neighbor-search mode): losers are dropped entirely; the
  PE skips the node and continues with its stack.

Bank selection is low-order interleaved on the word address, as in the
paper's example.  Winners are chosen by fixed port priority (lowest port
index), matching a plain priority arbiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["BankedSramConfig", "SramStats", "BankedSram", "crossbar_area_relative"]


@dataclass(frozen=True)
class BankedSramConfig:
    """Geometry of one banked buffer."""

    size_bytes: int = 64 * 1024
    num_banks: int = 16
    word_bytes: int = 4
    e_access_per_byte: float = 1.0  # pJ/byte, the paper's SRAM unit cost

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.num_banks <= 0 or self.word_bytes <= 0:
            raise ValueError("size, banks, and word size must be positive")
        if self.num_banks & (self.num_banks - 1):
            raise ValueError("num_banks must be a power of two (low-order interleave)")

    @property
    def bank_bytes(self) -> int:
        return self.size_bytes // self.num_banks


@dataclass
class SramStats:
    """Accumulated activity of one banked buffer.

    ``conflicted`` counts accesses that lost bank arbitration.  The tree
    buffer counts every loser — including same-address losers, which its
    ``broadcasts``/``elided`` counters then classify — so there
    ``conflicted == broadcasts + elided + stalled_retries``.  The point
    buffer's wide-word layout detects same-address requests before
    arbitration: broadcast-served ports never conflict at all, leaving
    ``conflicted == elided + stalled_retries`` with ``broadcasts``
    disjoint — which is what lets the Fig. 5 conflict rate ignore
    ``ball_query``'s repeat-first-neighbor padding.  In every discipline
    ``reads_served`` stays "actual bank reads" — energy-bearing fetches
    only, so broadcast-served ports do not inflate it (or the SRAM energy
    derived from it).
    """

    accesses: int = 0
    conflicted: int = 0
    elided: int = 0
    broadcasts: int = 0  # losers served by the winner's same-address read
    reads_served: int = 0  # actual bank reads (energy-bearing)
    cycles: int = 0

    @property
    def conflict_rate(self) -> float:
        return 0.0 if self.accesses == 0 else self.conflicted / self.accesses

    def merge(self, other: "SramStats") -> "SramStats":
        self.accesses += other.accesses
        self.conflicted += other.conflicted
        self.elided += other.elided
        self.broadcasts += other.broadcasts
        self.reads_served += other.reads_served
        self.cycles += other.cycles
        return self


class BankedSram:
    """Arbitration-level model of one banked scratchpad."""

    def __init__(self, config: BankedSramConfig = BankedSramConfig()):
        self.config = config
        self.stats = SramStats()

    def reset(self) -> None:
        self.stats = SramStats()

    def bank_of(self, addresses: np.ndarray) -> np.ndarray:
        """Low-order interleaved bank index of each byte address."""
        addresses = np.asarray(addresses, dtype=np.int64)
        return (addresses // self.config.word_bytes) % self.config.num_banks

    def arbitrate(
        self, addresses: np.ndarray, elide: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Arbitrate one cycle's worth of concurrent requests.

        Parameters
        ----------
        addresses:
            1-D array of byte addresses, one per requesting port.
        elide:
            Optional boolean array: ``elide[i]`` means request ``i`` may be
            elided if it loses arbitration.  ``None`` means no elision
            (pure stall mode).

        Returns
        -------
        (winner_of, lost, cycles):
            ``winner_of[i]`` is the index of the request whose data request
            ``i`` observes (itself if it won or retried to completion);
            ``lost[i]`` is True when the request initially conflicted;
            ``cycles`` is the number of SRAM cycles the group needed.

        Conflicted-but-not-elidable requests retry until served (their
        retries are folded into ``cycles``); elidable losers never retry.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = len(addresses)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 0
        if elide is not None:
            elide = np.asarray(elide, dtype=bool)
            if elide.shape != (n,):
                raise ValueError("elide mask must match addresses")
        banks = self.bank_of(addresses)
        winner_of = np.arange(n, dtype=np.int64)
        lost = np.zeros(n, dtype=bool)
        reads = 0
        cycles = 0
        # Fixed-priority arbitration, bank by bank.
        for bank in np.unique(banks):
            members = np.nonzero(banks == bank)[0]
            winner = members[0]
            losers = members[1:]
            reads += 1
            lost[losers] = True
            if elide is None:
                # All losers retry, one per cycle.
                cycles = max(cycles, len(members))
                reads += len(losers)
            else:
                elided_losers = losers[elide[losers]]
                retrying = losers[~elide[losers]]
                winner_of[elided_losers] = winner
                reads += len(retrying)
                cycles = max(cycles, 1 + len(retrying))
                self.stats.elided += len(elided_losers)
        self.stats.accesses += n
        self.stats.conflicted += int(lost.sum())
        self.stats.reads_served += reads
        self.stats.cycles += cycles
        return winner_of, lost, cycles

    def conflict_groups_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized loser detection for many independent cycles at once.

        ``addresses`` is ``(G, P)``: G groups of P concurrent requests.
        Returns a boolean ``(G, P)`` mask of requests that lose arbitration
        (a bank already requested by a lower-indexed port in the same
        group).  Used by the training-time bank-conflict model, where
        thousands of aggregation groups are simulated per forward pass.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.ndim != 2:
            raise ValueError("expected (G, P) address matrix")
        banks = self.bank_of(addresses)
        g, p = banks.shape
        # lost[i, j] = any(banks[i, :j] == banks[i, j])
        same = banks[:, :, None] == banks[:, None, :]  # (G, P, P)
        earlier = np.tril(np.ones((p, p), dtype=bool), k=-1)  # j > k
        lost = (same & earlier[None, :, :]).any(axis=2)
        self.stats.accesses += g * p
        self.stats.conflicted += int(lost.sum())
        return lost


def crossbar_area_relative(num_banks: int, num_ports: int = 2) -> float:
    """Relative crossbar area cost, quadratic in the bank count.

    The paper reports (from an Arm memory compiler study) that at 32 banks
    the crossbar is ~2× the memory arrays.  Normalizing a quadratic model
    to that datum gives ``area = 2 * (banks / 32)^2 * (ports / 2)`` in units
    of "memory array area".
    """
    if num_banks <= 0 or num_ports <= 0:
        raise ValueError("banks and ports must be positive")
    return 2.0 * (num_banks / 32.0) ** 2 * (num_ports / 2.0)
