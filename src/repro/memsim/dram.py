"""DRAM timing/energy model.

Modeled after the paper's setup: Micron 16 Gb LPDDR3-1600, 4 channels.
We keep the model at the row-buffer level — the granularity that actually
separates Crescent from the baselines:

* A *streaming* access hits the open row (or opens a new row that the
  whole burst then uses); cost ≈ column access + burst transfer.
* A *random* access forces a precharge + activate before the column
  access.

The paper reports the resulting energy ratio of random : streaming DRAM
access as about 3 : 1, and random DRAM : SRAM as 25 : 1; the default
constants reproduce those ratios (see :mod:`repro.memsim.energy`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DramConfig", "DramModel", "DramUsage"]


@dataclass(frozen=True)
class DramConfig:
    """Physical organization and per-event costs.

    Cycle costs are expressed in accelerator clock cycles (the paper's
    simulator is parameterized the same way).  Energy is per byte, in
    picojoules, chosen to reproduce the published 3:1 random:streaming and
    25:1 random:SRAM ratios.
    """

    row_bytes: int = 2048
    burst_bytes: int = 64
    channels: int = 4
    # Timing (cycles).
    t_row_activate: int = 28  # precharge + activate on a row miss
    t_column: int = 8  # column access on an open row
    t_burst: int = 4  # data transfer per burst
    # Energy (pJ/byte).
    e_streaming_per_byte: float = 8.33
    e_random_per_byte: float = 25.0

    def __post_init__(self) -> None:
        if self.row_bytes <= 0 or self.burst_bytes <= 0 or self.channels <= 0:
            raise ValueError("row_bytes, burst_bytes, channels must be positive")
        if self.burst_bytes > self.row_bytes:
            raise ValueError("burst must not exceed a row")


@dataclass
class DramUsage:
    """Accumulated DRAM activity for one simulation."""

    streaming_bytes: int = 0
    random_bytes: int = 0
    streaming_accesses: int = 0
    random_accesses: int = 0
    cycles: int = 0

    @property
    def total_bytes(self) -> int:
        return self.streaming_bytes + self.random_bytes

    def merge(self, other: "DramUsage") -> "DramUsage":
        self.streaming_bytes += other.streaming_bytes
        self.random_bytes += other.random_bytes
        self.streaming_accesses += other.streaming_accesses
        self.random_accesses += other.random_accesses
        self.cycles += other.cycles
        return self


class DramModel:
    """Classifies an address trace into row hits/misses and accumulates cost."""

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        self.usage = DramUsage()

    def reset(self) -> None:
        self.usage = DramUsage()

    def stream(self, num_bytes: int) -> DramUsage:
        """Account a purely sequential transfer of ``num_bytes``.

        Used for DMA transfers (tree images, query batches, weight tensors):
        every burst after the first in each row is a row hit.  Returns the
        incremental usage (also accumulated on :attr:`usage`).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        cfg = self.config
        bursts = -(-num_bytes // cfg.burst_bytes)  # ceil division
        rows = -(-num_bytes // cfg.row_bytes) if num_bytes else 0
        cycles = rows * cfg.t_row_activate + bursts * (cfg.t_column + cfg.t_burst)
        cycles = -(-cycles // cfg.channels)  # channel-level parallelism
        inc = DramUsage(
            streaming_bytes=num_bytes,
            streaming_accesses=bursts,
            cycles=cycles,
        )
        self.usage.merge(inc)
        return inc

    def access_trace(self, addresses: np.ndarray, access_bytes: int) -> DramUsage:
        """Account an arbitrary address trace (row-buffer hit/miss model).

        An access is *streaming* when it falls in the same DRAM row as the
        previous access; otherwise it pays the activate penalty.  This is
        what the irregular tree traversals of the baseline search generate.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        cfg = self.config
        if len(addresses) == 0:
            return DramUsage()
        rows = addresses // cfg.row_bytes
        same_row = np.zeros(len(addresses), dtype=bool)
        same_row[1:] = rows[1:] == rows[:-1]
        hits = int(same_row.sum())
        misses = len(addresses) - hits
        cycles = misses * (cfg.t_row_activate + cfg.t_column + cfg.t_burst)
        cycles += hits * (cfg.t_column + cfg.t_burst)
        cycles = -(-cycles // cfg.channels)
        inc = DramUsage(
            streaming_bytes=hits * access_bytes,
            random_bytes=misses * access_bytes,
            streaming_accesses=hits,
            random_accesses=misses,
            cycles=cycles,
        )
        self.usage.merge(inc)
        return inc
