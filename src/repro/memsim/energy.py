"""Energy accounting shared by the accelerator models.

The paper's energy methodology reduces to per-event costs taken from the
Micron power calculator and post-synthesis RTL power: the published ratios
are random-DRAM : streaming-DRAM ≈ 3 : 1 and random-DRAM : SRAM ≈ 25 : 1.
We adopt the SRAM access as the unit (1 pJ/byte) and express everything
else relative to it, plus small constants for datapath work (MAC ops,
distance computations) so compute never dominates memory — matching the
paper's observation that memory bottlenecks these workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass
class EnergyBreakdown:
    """Per-component energy tallies (picojoules)."""

    components: Dict[str, float] = field(default_factory=dict)

    def add(self, component: str, picojoules: float) -> None:
        if picojoules < 0:
            raise ValueError("energy must be non-negative")
        self.components[component] = self.components.get(component, 0.0) + picojoules

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def merge(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        for k, v in other.components.items():
            self.add(k, v)
        return self

    def fraction(self, component: str) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.components.get(component, 0.0) / total


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants (pJ).

    ``dram_random_per_byte / dram_streaming_per_byte ≈ 3`` and
    ``dram_random_per_byte / sram_per_byte ≈ 25`` reproduce the paper's
    calibration.  Datapath constants are nominal 16 nm values; only the
    ratios matter for the reported (normalized) results.
    """

    sram_per_byte: float = 1.0
    dram_streaming_per_byte: float = 8.33
    dram_random_per_byte: float = 25.0
    mac_op: float = 0.5  # one 8/16-bit MAC in the systolic array
    distance_op: float = 1.5  # one 3-D distance computation in a search PE
    stack_op: float = 0.2  # one traversal-stack push/pop

    def sram(self, num_bytes: float) -> float:
        return self.sram_per_byte * num_bytes

    def dram_streaming(self, num_bytes: float) -> float:
        return self.dram_streaming_per_byte * num_bytes

    def dram_random(self, num_bytes: float) -> float:
        return self.dram_random_per_byte * num_bytes

    def macs(self, count: float) -> float:
        return self.mac_op * count

    def distances(self, count: float) -> float:
        return self.distance_op * count

    def stack_ops(self, count: float) -> float:
        return self.stack_op * count
