"""Memory access traces and stream-continuity analysis.

A trace is just a sequence of byte addresses with a fixed access size.
The paper's motivation study (Fig. 2) classifies each DRAM access as
*continuous* (it extends the stream of its predecessor) or not; this module
provides that classification plus helpers to interleave per-PE traces the
way concurrent hardware queries interleave their requests at the memory
controller.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "interleave_round_robin",
    "fraction_noncontiguous",
    "continuous_mask",
]


def interleave_round_robin(traces: Sequence[Sequence[int]]) -> np.ndarray:
    """Merge per-query traces the way parallel PEs interleave DRAM requests.

    Round-robin across the queries models independent PEs issuing one
    request per cycle; when a query's trace is exhausted the remaining
    queries keep rotating.  Returns a single int64 address array.
    """
    arrays = [np.asarray(t, dtype=np.int64) for t in traces if len(t) > 0]
    if not arrays:
        return np.empty(0, dtype=np.int64)
    total = sum(len(a) for a in arrays)
    out = np.empty(total, dtype=np.int64)
    positions = [0] * len(arrays)
    alive = list(range(len(arrays)))
    k = 0
    while alive:
        next_alive: List[int] = []
        for idx in alive:
            arr = arrays[idx]
            pos = positions[idx]
            out[k] = arr[pos]
            k += 1
            positions[idx] = pos + 1
            if positions[idx] < len(arr):
                next_alive.append(idx)
        alive = next_alive
    return out


def continuous_mask(addresses: np.ndarray, access_bytes: int) -> np.ndarray:
    """Boolean mask: access ``i`` continues the stream of access ``i-1``.

    The first access of a trace is, by definition, not a continuation.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if access_bytes <= 0:
        raise ValueError("access_bytes must be positive")
    mask = np.zeros(len(addresses), dtype=bool)
    if len(addresses) > 1:
        mask[1:] = addresses[1:] == addresses[:-1] + access_bytes
    return mask


def fraction_noncontiguous(addresses: np.ndarray, access_bytes: int) -> float:
    """Fraction of accesses that do *not* continue the previous access.

    This is the metric of the paper's Fig. 2 (≈99.9% for K-d tree search
    traces interleaved across parallel queries).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if len(addresses) == 0:
        return 0.0
    return 1.0 - continuous_mask(addresses, access_bytes).mean()
