"""Property-based tests of the approximation stack's global invariants.

These hold for *any* knob setting, banking configuration, and input — the
contracts the accuracy of the whole reproduction rests on:

1. soundness — approximate search never reports a point outside the query
   radius;
2. subset — approximate results are a subset of the exact results;
3. monotone work — a taller top tree never increases per-query node
   visits; a lower elision height never decreases skips;
4. aggregation elision closure — the rewritten index matrix only contains
   ids that were already among the query's neighbors;
5. determinism — everything is a pure function of its inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ApproxSetting,
    PointBufferBanking,
    TreeBufferBanking,
    apply_aggregation_elision,
    approximate_ball_query,
)
from repro.kdtree import ball_query, build_kdtree

SETTINGS = dict(max_examples=25, deadline=None)


def _problem(seed, n=80, m=8):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    return pts, rng.normal(size=(m, 3)), build_kdtree(pts)


@settings(**SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    ht=st.integers(min_value=0, max_value=6),
    he=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
    banks=st.sampled_from([1, 2, 4, 8]),
    pes=st.integers(min_value=1, max_value=8),
)
def test_soundness_and_subset_under_any_setting(seed, ht, he, banks, pes):
    pts, queries, tree = _problem(seed)
    idx, cnt, _ = approximate_ball_query(
        tree, queries, 0.6, 8, ApproxSetting(ht, he),
        banking=TreeBufferBanking(banks), num_pes=pes,
    )
    exact_idx, exact_cnt = ball_query(tree, queries, 0.6, 8)
    for i in range(len(queries)):
        mine = set(idx[i, : cnt[i]].tolist())
        # Soundness: every reported neighbor is within the radius.
        for p in mine:
            assert np.linalg.norm(pts[p] - queries[i]) <= 0.6 + 1e-9
        # Subset: approximation only loses neighbors, never invents them.
        full = set(
            int(p)
            for p in np.nonzero(
                ((pts - queries[i]) ** 2).sum(axis=1) <= 0.36 + 1e-12
            )[0]
        )
        assert mine <= full


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_monotone_visits_in_top_height(seed):
    pts, queries, tree = _problem(seed, n=120, m=12)
    visits = []
    for ht in (0, 2, 4):
        _, _, report = approximate_ball_query(
            tree, queries, 0.6, 16, ApproxSetting(ht, None),
            simulate_conflicts=False,
        )
        visits.append(report.traversal.nodes_visited)
    assert visits[0] >= visits[1] >= visits[2]


@settings(**SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    banks=st.sampled_from([2, 4, 8, 16]),
    ports=st.sampled_from([4, 8, 16]),
)
def test_aggregation_elision_closure(seed, banks, ports):
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, 256, size=(16, 16))
    out = apply_aggregation_elision(indices, PointBufferBanking(banks), ports)
    for i in range(len(indices)):
        assert set(out[i].tolist()) <= set(indices[i].tolist())


@settings(**SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    ht=st.integers(min_value=0, max_value=5),
    he=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
)
def test_determinism(seed, ht, he):
    pts, queries, tree = _problem(seed)
    a = approximate_ball_query(tree, queries, 0.5, 8, ApproxSetting(ht, he))
    b = approximate_ball_query(tree, queries, 0.5, 8, ApproxSetting(ht, he))
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])
    assert a[2].traversal.nodes_visited == b[2].traversal.nodes_visited
