"""Parity suite: the batched engine must be bit-identical to the reference.

:class:`repro.runtime.BatchedBallQuery` exists purely for speed; this
suite is what lets every other part of the system (pipeline, training,
figure drivers) route through it without re-validating results.  Three
layers of checking:

1. **Bit-identity to the per-query searcher** — identical ``(indices,
   counts)`` matrices, padding included, across randomized point counts,
   radii, K, and both tree split rules.
2. **Agreement with the brute-force oracle** — the *true* neighbor sets
   (the first ``counts`` entries) must match the exhaustive search
   whenever no truncation occurred; under truncation the engines may keep
   different K-subsets (DFS order vs distance order), but every kept id
   must still be a genuine in-radius point.
3. **Degenerate inputs** — duplicate points, empty neighborhoods,
   single-point clouds, queries far outside the cloud, coincident clouds.
"""

import numpy as np
import pytest

from repro.kdtree import ball_query, brute_radius_search, build_kdtree
from repro.runtime import BatchedBallQuery, batched_ball_query


def assert_bit_identical(tree, queries, radius, k):
    want_idx, want_cnt = ball_query(tree, queries, radius, k)
    got_idx, got_cnt = batched_ball_query(tree, queries, radius, k)
    np.testing.assert_array_equal(got_idx, want_idx)
    np.testing.assert_array_equal(got_cnt, want_cnt)
    return got_idx, got_cnt


class TestBitIdentity:
    @pytest.mark.parametrize("n,m", [(2, 1), (17, 5), (64, 64), (257, 100), (1024, 256)])
    @pytest.mark.parametrize("radius,k", [(0.15, 4), (0.4, 16), (1.5, 8)])
    def test_random_clouds(self, rng, n, m, radius, k):
        pts = rng.normal(size=(n, 3))
        queries = rng.normal(size=(m, 3)) * 0.9
        assert_bit_identical(build_kdtree(pts), queries, radius, k)

    @pytest.mark.parametrize("split_rule", ["widest", "cycle"])
    def test_both_split_rules(self, rng, split_rule):
        pts = rng.normal(size=(200, 3))
        tree = build_kdtree(pts, split_rule=split_rule)
        assert_bit_identical(tree, pts[:50], 0.35, 8)

    def test_queries_on_points(self, rng):
        # Query exactly on stored points: distance-0 hits, boundary diffs.
        pts = rng.uniform(-1, 1, size=(300, 3))
        assert_bit_identical(build_kdtree(pts), pts[::3], 0.25, 8)

    def test_many_seeds(self, test_seed):
        # Sweep independent draws so one lucky geometry can't hide a bug.
        for offset in range(10):
            rng = np.random.default_rng(test_seed + offset)
            n = int(rng.integers(1, 400))
            m = int(rng.integers(1, 80))
            radius = float(rng.uniform(0.05, 1.2))
            k = int(rng.integers(1, 24))
            pts = rng.normal(size=(n, 3)) * rng.uniform(0.3, 2.0)
            queries = rng.normal(size=(m, 3))
            assert_bit_identical(build_kdtree(pts), queries, radius, k)

    def test_grid_cloud_with_ties(self):
        # Lattice geometry maximizes equal coordinates and equal distances,
        # stressing the <=/>= boundary conventions.
        axis = np.linspace(-1, 1, 5)
        pts = np.stack(np.meshgrid(axis, axis, axis), axis=-1).reshape(-1, 3)
        tree = build_kdtree(pts)
        assert_bit_identical(tree, pts[::7], 0.51, 6)
        assert_bit_identical(tree, pts[::7], 0.5, 6)  # radius exactly on spacing


class TestBruteOracle:
    def test_true_neighbor_sets_match_oracle(self, rng):
        pts = rng.normal(size=(400, 3))
        queries = rng.normal(size=(64, 3)) * 0.8
        radius, k = 0.4, 64  # K large enough that nothing truncates
        tree = build_kdtree(pts)
        idx, cnt = batched_ball_query(tree, queries, radius, k)
        for i, q in enumerate(queries):
            oracle = set(brute_radius_search(pts, q, radius).tolist())
            assert cnt[i] == len(oracle)
            assert set(idx[i, : cnt[i]].tolist()) == oracle

    def test_truncated_rows_keep_only_genuine_neighbors(self, rng):
        pts = rng.normal(size=(500, 3)) * 0.3  # dense: rows overflow K
        queries = pts[rng.choice(500, 40, replace=False)]
        radius, k = 0.5, 4
        tree = build_kdtree(pts)
        idx, cnt = batched_ball_query(tree, queries, radius, k)
        assert (cnt == k).any()  # the scenario actually exercises truncation
        for i, q in enumerate(queries):
            oracle = set(brute_radius_search(pts, q, radius).tolist())
            assert cnt[i] == min(len(oracle), k)
            assert set(idx[i, : cnt[i]].tolist()) <= oracle


class TestDegenerateInputs:
    def test_single_point_cloud(self):
        tree = build_kdtree(np.array([[0.5, -0.25, 1.0]]))
        queries = np.array([[0.5, -0.25, 1.0], [10.0, 10.0, 10.0]])
        idx, cnt = assert_bit_identical(tree, queries, 0.1, 3)
        assert cnt.tolist() == [1, 0]
        assert (idx == 0).all()  # hit row padded, empty row falls back

    def test_duplicate_points(self, rng):
        base = rng.normal(size=(12, 3))
        pts = np.repeat(base, 25, axis=0)  # 300 points, 12 sites
        tree = build_kdtree(pts)
        idx, cnt = assert_bit_identical(tree, base, 1e-9, 8)
        assert (cnt == 8).all()  # 25 coincident points overflow K=8

    def test_all_points_identical(self):
        pts = np.tile([[1.0, 2.0, 3.0]], (40, 1))
        tree = build_kdtree(pts)
        queries = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        idx, cnt = assert_bit_identical(tree, queries, 0.5, 6)
        assert cnt.tolist() == [6, 0]

    def test_empty_neighborhoods_everywhere(self, rng):
        pts = rng.normal(size=(128, 3))
        queries = rng.normal(size=(16, 3)) + 50.0  # far outside the cloud
        idx, cnt = assert_bit_identical(build_kdtree(pts), queries, 0.2, 5)
        assert (cnt == 0).all()
        # Fallback rows repeat one valid nearest-node id across all K slots.
        assert (idx == idx[:, :1]).all()
        assert ((0 <= idx) & (idx < 128)).all()

    def test_single_query_1d_shape(self, rng):
        pts = rng.normal(size=(64, 3))
        tree = build_kdtree(pts)
        idx, cnt = batched_ball_query(tree, pts[3], 0.5, 4)  # (3,) query
        want_idx, want_cnt = ball_query(tree, pts[3], 0.5, 4)
        np.testing.assert_array_equal(idx, want_idx)
        np.testing.assert_array_equal(cnt, want_cnt)
        assert idx.shape == (1, 4)

    def test_zero_queries(self, rng):
        pts = rng.normal(size=(32, 3))
        idx, cnt = batched_ball_query(
            build_kdtree(pts), np.empty((0, 3)), 0.5, 4
        )
        assert idx.shape == (0, 4) and cnt.shape == (0,)

    def test_k_one(self, rng):
        pts = rng.normal(size=(150, 3))
        assert_bit_identical(build_kdtree(pts), pts[:30], 0.3, 1)

    def test_density_guard_fallback_stays_identical(self, rng, monkeypatch):
        # Force the O(total-hits) memory guard to trip: the engine must
        # hand off to the per-query searcher, not change results.
        from repro.runtime import batched as batched_mod

        monkeypatch.setattr(batched_mod, "_MAX_BUFFERED_HITS", 10)
        pts = rng.normal(size=(200, 3)) * 0.2  # dense cloud, huge radius
        tree = build_kdtree(pts)
        assert_bit_identical(tree, pts[:30], 2.0, 8)

    def test_invalid_arguments(self, rng):
        tree = build_kdtree(rng.normal(size=(8, 3)))
        engine = BatchedBallQuery(tree)
        with pytest.raises(ValueError):
            engine.query(np.zeros((1, 3)), -1.0, 4)
        with pytest.raises(ValueError):
            engine.query(np.zeros((1, 3)), 0.5, 0)
