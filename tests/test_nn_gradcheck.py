"""Per-primitive finite-difference verification via nn.gradcheck.

Every primitive registered in ``nn.tensor`` has a case here — broadcasting
shapes, gather indices (repeated), batched gather, and max-reduction ties
included — so a new primitive cannot land without VJP verification.
"""

import numpy as np
import pytest

from repro.nn import Tensor, gradcheck
from repro.nn.gradcheck import numerical_gradient

RNG = np.random.default_rng(42)


class TestElementwisePrimitives:
    def test_add_broadcast(self):
        assert gradcheck(
            lambda a, b: (a + b).sum(), RNG.normal(size=(3, 4)), RNG.normal(size=(4,))
        )

    def test_radd_scalar(self):
        assert gradcheck(lambda a: (3.5 + a).sum(), RNG.normal(size=(2, 3)))

    def test_neg(self):
        assert gradcheck(lambda a: (-a).sum(), RNG.normal(size=(5,)))

    def test_sub_broadcast(self):
        assert gradcheck(
            lambda a, b: (a - b).sum(), RNG.normal(size=(3, 1)), RNG.normal(size=(3, 4))
        )

    def test_rsub_scalar(self):
        assert gradcheck(lambda a: (2.0 - a).sum(), RNG.normal(size=(4,)))

    def test_mul_broadcast(self):
        assert gradcheck(
            lambda a, b: (a * b).sum(),
            RNG.normal(size=(2, 3, 4)),
            RNG.normal(size=(3, 1)),
        )

    def test_div(self):
        assert gradcheck(
            lambda a, b: (a / b).sum(),
            RNG.normal(size=(3, 4)),
            RNG.uniform(0.5, 2.0, size=(4,)),
        )

    def test_rdiv_scalar(self):
        assert gradcheck(
            lambda a: (1.0 / a).sum(), RNG.uniform(0.5, 2.0, size=(4,))
        )

    def test_pow(self):
        assert gradcheck(lambda a: (a**3).sum(), RNG.uniform(0.5, 2.0, size=(5,)))

    def test_exp(self):
        assert gradcheck(lambda a: a.exp().sum(), RNG.normal(size=(4,)))

    def test_log(self):
        assert gradcheck(lambda a: a.log().sum(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_relu_away_from_kink(self):
        x = RNG.normal(size=(10,))
        x[np.abs(x) < 1e-2] = 0.5
        assert gradcheck(lambda a: (a.relu() * 2.0).sum(), x)

    def test_tanh(self):
        assert gradcheck(lambda a: a.tanh().sum(), RNG.normal(size=(6,)))

    def test_sigmoid(self):
        assert gradcheck(lambda a: a.sigmoid().sum(), RNG.normal(size=(6,)))


class TestMatmulPrimitive:
    def test_matmul_both_sides(self):
        assert gradcheck(
            lambda a, b: (a @ b).sum(), RNG.normal(size=(3, 4)), RNG.normal(size=(4, 2))
        )

    def test_matmul_batched(self):
        assert gradcheck(
            lambda a, b: ((a @ b) ** 2).sum(),
            RNG.normal(size=(2, 3, 4)),
            RNG.normal(size=(4, 5)),
        )


class TestReductionPrimitives:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True)])
    def test_sum(self, axis, keepdims):
        assert gradcheck(
            lambda a: (a.sum(axis=axis, keepdims=keepdims) ** 2).sum(),
            RNG.normal(size=(3, 4)),
        )

    def test_sum_multi_axis(self):
        assert gradcheck(
            lambda a: (a.sum(axis=(0, 2)) ** 2).sum(), RNG.normal(size=(2, 3, 4))
        )

    def test_mean(self):
        assert gradcheck(
            lambda a: (a.mean(axis=1) ** 2).sum(), RNG.normal(size=(3, 4))
        )

    def test_max_distinct(self):
        # Distinct values: finite differences are valid everywhere.
        x = np.arange(12.0).reshape(3, 4) * 0.37
        assert gradcheck(lambda a: (a.max(axis=1) * 2.0).sum(), x)

    def test_max_keepdims(self):
        x = RNG.permutation(np.arange(8.0)).reshape(2, 4)
        assert gradcheck(lambda a: (a.max(axis=0, keepdims=True) ** 2).sum(), x)

    def test_max_tie_subgradient_is_one_sided(self):
        # Finite differences straddle the tie, so gradcheck doesn't apply;
        # pin the chosen subgradient analytically: all mass on the first
        # argmax, total mass preserved.
        x = Tensor(np.full((2, 3), 7.0), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_array_equal(x.grad, [[1, 0, 0], [1, 0, 0]])


class TestShapePrimitives:
    def test_reshape(self):
        assert gradcheck(lambda a: (a.reshape(6) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_transpose(self):
        assert gradcheck(
            lambda a: (a.transpose(2, 0, 1) ** 2).sum(), RNG.normal(size=(2, 3, 4))
        )

    def test_take_repeated_indices(self):
        idx = np.array([[0, 0], [4, 0]])
        assert gradcheck(lambda a: (a.take(idx) ** 2).sum(), RNG.normal(size=(5, 3)))

    def test_gather_rows_batched(self):
        idx = RNG.integers(0, 6, size=(2, 4))
        assert gradcheck(
            lambda a: (a.gather_rows(idx) ** 2).sum(), RNG.normal(size=(2, 6, 3))
        )

    def test_concat(self):
        assert gradcheck(
            lambda a, b: (a.concat([b], axis=1) ** 2).sum(),
            RNG.normal(size=(2, 3)),
            RNG.normal(size=(2, 2)),
        )


class TestUtilityContract:
    def test_mismatch_raises_with_argnum(self):
        def bad(a):
            # Forward uses a, but we corrupt the comparison by building a
            # function whose numerical gradient differs: f depends on |a|
            # non-smoothly at 0 — evaluate at a kink.
            return (a.relu()).sum()

        x = np.zeros(3)  # exactly at the kink: FD gives 0.5, autograd 0.0
        with pytest.raises(AssertionError, match="argnum 0"):
            gradcheck(bad, x)

    def test_numerical_gradient_shape(self):
        g = numerical_gradient(
            lambda a, b: float((a * b).sum()),
            [np.ones((2, 2)), np.full((2, 2), 3.0)],
            argnum=0,
        )
        np.testing.assert_allclose(g, 3.0)

    def test_non_scalar_output_rejected(self):
        with pytest.raises(ValueError):
            gradcheck(lambda a: a * 2.0, np.ones(3))
