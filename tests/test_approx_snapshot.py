"""Regression snapshots for the approximate search path.

Golden-file test: neighbor recall per ``(h_t, h_e)`` setting on a fixed
seeded workload, pinned to ``tests/golden/approx_recall.json``.  Accuracy
figures (13, 18, 19) ultimately rest on these recall numbers, so a
refactor of :mod:`repro.core.approx_search` that shifts them — changed
descent tie-breaking, different elision arbitration, a reordered dedup —
fails here immediately instead of surfacing as a mysteriously drifted
figure three layers up.

To regenerate after an *intentional* behavior change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src pytest tests/test_approx_snapshot.py

and commit the diff with the justification.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import ApproxSetting, TreeBufferBanking
from repro.core.approx_search import approximate_ball_query
from repro.kdtree import ball_query, build_kdtree

GOLDEN_PATH = Path(__file__).parent / "golden" / "approx_recall.json"

# Workload constants are part of the snapshot contract — changing any of
# them requires regenerating the golden file.
SNAPSHOT_SEED = 1337
N_POINTS = 256
N_QUERIES = 64
RADIUS = 0.45
MAX_NEIGHBORS = 16
SETTINGS = [
    (0, None),
    (2, None),
    (4, None),
    (6, None),
    (2, 4),
    (2, 6),
    (4, 4),
    (4, 6),
]


def _workload():
    rng = np.random.default_rng(SNAPSHOT_SEED)
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.choice(N_POINTS, N_QUERIES, replace=False)]
    return pts, queries


def _setting_key(ht, he):
    return f"ht={ht},he={he}"


def compute_recalls():
    """Mean per-query neighbor recall of the approximate search vs exact."""
    pts, queries = _workload()
    tree = build_kdtree(pts)
    exact_idx, exact_cnt = ball_query(tree, queries, RADIUS, MAX_NEIGHBORS)
    out = {}
    for ht, he in SETTINGS:
        approx_idx, approx_cnt, _ = approximate_ball_query(
            tree, queries, RADIUS, MAX_NEIGHBORS,
            ApproxSetting(ht, he), banking=TreeBufferBanking(4), num_pes=4,
        )
        recalls = []
        for i in range(N_QUERIES):
            truth = set(exact_idx[i, : exact_cnt[i]].tolist())
            if not truth:
                continue
            kept = set(approx_idx[i, : approx_cnt[i]].tolist())
            recalls.append(len(kept & truth) / len(truth))
        out[_setting_key(ht, he)] = round(float(np.mean(recalls)), 12)
    return out


def test_recall_snapshot_matches_golden_file():
    recalls = compute_recalls()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(recalls, indent=2) + "\n")
        pytest.skip(f"golden file regenerated at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert set(recalls) == set(golden), "settings grid changed — regenerate golden"
    for key, value in golden.items():
        assert recalls[key] == pytest.approx(value, abs=1e-9), (
            f"recall drifted for {key}: golden {value}, got {recalls[key]}; "
            "if intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
        )


def test_snapshot_internal_consistency():
    """Sanity structure the snapshot itself must always satisfy."""
    recalls = compute_recalls()
    assert recalls[_setting_key(0, None)] == pytest.approx(1.0)  # exact baseline
    # A taller top tree can only lose more cross-boundary neighbors.
    assert recalls[_setting_key(2, None)] >= recalls[_setting_key(4, None)] - 1e-9
    assert recalls[_setting_key(4, None)] >= recalls[_setting_key(6, None)] - 1e-9
    # Elision on top of ANS can only lose more than ANS alone.
    for ht in (2, 4):
        assert recalls[_setting_key(ht, 4)] <= recalls[_setting_key(ht, None)] + 1e-9
    assert all(0.0 <= v <= 1.0 for v in recalls.values())
