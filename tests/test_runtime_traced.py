"""Trace-equivalence suite: the traced batched engine must reproduce the
per-query reference searcher *including* its side channel.

:class:`repro.runtime.TracedBallQuery` exists so the Sec. 2 motivation
studies (Figs. 2–5) can retire their per-query Python loop; that is only
sound if the batched sweep reproduces, for every query,

1. the **visit trace** of ``radius_search(..., record_trace=True)`` —
   DFS preorder, near child first, truncated at the node contributing
   the K-th hit (the reference's early stop);
2. every **TraversalStats counter** of the early-stopped traversal
   (visited, pushes, pops, pruned, neighbors found), including the
   abandoned-stack asymmetry (pushes issued before the break are counted
   even though their nodes are never popped);
3. the ``(indices, counts)`` matrix of :func:`ball_query`, padding
   included.

Randomized across radii, K, tree shapes, and the degenerate geometries
that stress early stopping and empty neighborhoods — the same pinning
discipline ``tests/test_runtime_lockstep.py`` applies to the lockstep
engine.
"""

import numpy as np
import pytest

from repro.kdtree import ball_query, build_kdtree
from repro.kdtree.exact import radius_search
from repro.kdtree.stats import TraversalStats
from repro.runtime import TracedBallQuery, traced_ball_query

STAT_FIELDS = (
    "nodes_visited",
    "nodes_pruned",
    "stack_pushes",
    "stack_pops",
    "neighbors_found",
    "queries",
)


def reference_traces(tree, queries, radius, k):
    """One reference ``radius_search`` per query, trace recorded."""
    out = []
    for q in np.atleast_2d(queries):
        stats = TraversalStats()
        radius_search(
            tree, q, radius, max_neighbors=k, stats=stats, record_trace=True
        )
        out.append(stats)
    return out


def assert_trace_identical(tree, queries, radius, k):
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    result = TracedBallQuery(tree).query(queries, radius, k)
    want = reference_traces(tree, queries, radius, k)
    assert len(result.stats) == len(result.traces) == len(want)
    for i, ref in enumerate(want):
        got = result.stats[i]
        for field in STAT_FIELDS:
            assert getattr(got, field) == getattr(ref, field), (
                f"query {i}: {field} {getattr(got, field)} != {getattr(ref, field)}"
            )
        assert got.visit_trace == ref.visit_trace, f"query {i}: trace"
        assert result.traces[i].tolist() == ref.visit_trace, f"query {i}: trace array"
    # The result matrix keeps ball_query's exact contract too.
    want_idx, want_cnt = ball_query(tree, queries, radius, k)
    np.testing.assert_array_equal(result.indices, want_idx)
    np.testing.assert_array_equal(result.counts, want_cnt)
    return result


class TestTraceEquivalence:
    @pytest.mark.parametrize("n,m", [(2, 1), (17, 5), (64, 64), (257, 100), (600, 128)])
    @pytest.mark.parametrize("radius,k", [(0.15, 4), (0.4, 16), (1.5, 8)])
    def test_random_clouds(self, rng, n, m, radius, k):
        pts = rng.normal(size=(n, 3))
        queries = rng.normal(size=(m, 3)) * 0.9
        assert_trace_identical(build_kdtree(pts), queries, radius, k)

    @pytest.mark.parametrize("split_rule", ["widest", "cycle"])
    def test_both_split_rules(self, rng, split_rule):
        pts = rng.normal(size=(200, 3))
        tree = build_kdtree(pts, split_rule=split_rule)
        assert_trace_identical(tree, pts[:50], 0.35, 8)

    def test_many_seeds(self, test_seed):
        for offset in range(10):
            rng = np.random.default_rng(test_seed + offset)
            n = int(rng.integers(1, 400))
            m = int(rng.integers(1, 80))
            radius = float(rng.uniform(0.05, 1.2))
            k = int(rng.integers(1, 24))
            pts = rng.normal(size=(n, 3)) * rng.uniform(0.3, 2.0)
            queries = rng.normal(size=(m, 3))
            assert_trace_identical(build_kdtree(pts), queries, radius, k)

    def test_early_stop_mid_subtree(self, rng):
        # Dense cloud + small K: most traversals break with live stack
        # entries abandoned, the case where trace truncation and the
        # push-counting asymmetry actually matter.
        pts = rng.normal(size=(500, 3)) * 0.3
        queries = pts[rng.choice(500, 64, replace=False)]
        result = assert_trace_identical(build_kdtree(pts), queries, 0.5, 4)
        assert (result.counts == 4).any()  # truncation genuinely exercised
        # Early-stopped traversals leave pushes unpopped.
        assert any(
            s.stack_pushes > s.stack_pops for s in result.stats
        ), "scenario never abandoned a stack"

    def test_zero_neighbor_rows(self, rng):
        pts = rng.normal(size=(128, 3))
        queries = rng.normal(size=(16, 3)) + 50.0  # far outside the cloud
        result = assert_trace_identical(build_kdtree(pts), queries, 0.2, 5)
        assert (result.counts == 0).all()
        # Full (never-early-stopped) traversals: every push was popped.
        assert all(s.stack_pushes == s.stack_pops for s in result.stats)

    def test_k_one_stops_at_first_hit(self, rng):
        pts = rng.normal(size=(300, 3))
        assert_trace_identical(build_kdtree(pts), pts[:40], 0.4, 1)

    def test_grid_cloud_with_ties(self):
        axis = np.linspace(-1, 1, 5)
        pts = np.stack(np.meshgrid(axis, axis, axis), axis=-1).reshape(-1, 3)
        tree = build_kdtree(pts)
        assert_trace_identical(tree, pts[::7], 0.51, 6)
        assert_trace_identical(tree, pts[::7], 0.5, 6)

    def test_duplicate_points(self, rng):
        base = rng.normal(size=(12, 3))
        pts = np.repeat(base, 25, axis=0)
        assert_trace_identical(build_kdtree(pts), base, 1e-9, 8)

    def test_single_point_cloud(self):
        tree = build_kdtree(np.array([[0.5, -0.25, 1.0]]))
        queries = np.array([[0.5, -0.25, 1.0], [10.0, 10.0, 10.0]])
        result = assert_trace_identical(tree, queries, 0.1, 3)
        assert [t.tolist() for t in result.traces] == [[0], [0]]

    def test_single_query_1d_shape(self, rng):
        pts = rng.normal(size=(64, 3))
        result = traced_ball_query(build_kdtree(pts), pts[3], 0.5, 4)
        assert result.indices.shape == (1, 4)
        assert len(result.traces) == len(result.stats) == 1

    def test_zero_queries(self, rng):
        result = traced_ball_query(
            build_kdtree(rng.normal(size=(32, 3))), np.empty((0, 3)), 0.5, 4
        )
        assert result.indices.shape == (0, 4)
        assert result.traces == [] and result.stats == []

    def test_memory_guard_fallback_stays_identical(self, rng, monkeypatch):
        from repro.runtime import traced as traced_mod

        monkeypatch.setattr(traced_mod, "_MAX_BUFFERED_VISITS", 10)
        pts = rng.normal(size=(200, 3)) * 0.2
        assert_trace_identical(build_kdtree(pts), pts[:30], 2.0, 8)

    def test_merged_stats_match_shared_stats_object(self, rng):
        # ball_query with one shared stats object accumulates per-query
        # stats in query order; merged_stats() must reproduce that.
        pts = rng.normal(size=(150, 3))
        queries = rng.normal(size=(20, 3)) * 0.8
        tree = build_kdtree(pts)
        shared = TraversalStats()
        ball_query(tree, queries, 0.4, 6, stats=shared, record_trace=True)
        merged = TracedBallQuery(tree).query(queries, 0.4, 6).merged_stats()
        for field in STAT_FIELDS:
            assert getattr(merged, field) == getattr(shared, field), field
        assert merged.visit_trace == shared.visit_trace

    def test_invalid_arguments(self, rng):
        engine = TracedBallQuery(build_kdtree(rng.normal(size=(8, 3))))
        with pytest.raises(ValueError):
            engine.query(np.zeros((1, 3)), -1.0, 4)
        with pytest.raises(ValueError):
            engine.query(np.zeros((1, 3)), 0.5, 0)


class TestDriverOutputsUnchanged:
    """Figs. 2–3 inputs: the routed driver must emit the traces the
    per-query loop emitted (pinning the acceptance criterion directly)."""

    def test_layer_search_traces_identical_to_per_query_loop(self):
        from repro.analysis import layer_search_traces
        from repro.analysis.characterization import _network_layer_queries

        spec = "PointNet++ (c)"
        got = layer_search_traces(spec, max_queries_per_layer=24)
        want = []
        for points, queries, radius, k in _network_layer_queries(spec, seed=0):
            tree = build_kdtree(points)
            for stats in reference_traces(tree, queries[:24], radius, k):
                want.append([tree.node_address(n) for n in stats.visit_trace])
        assert got == want
