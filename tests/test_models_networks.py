"""Tests for the four evaluation networks."""

import numpy as np
import pytest

from repro.core import ApproxSetting
from repro.geometry import generate_scene, sample_shape
from repro.models import (
    MODEL_REGISTRY,
    DensePointClassifier,
    FrustumPointNet,
    PointNetPPClassifier,
    PointNetPPSegmenter,
    build_model,
    frustum_crop,
)


def cloud_points(n=128, seed=0):
    return sample_shape("torus", np.random.default_rng(seed), num_points=n).points


class TestClassifier:
    def test_logit_shape(self):
        model = PointNetPPClassifier(8, np.random.default_rng(0))
        logits = model(cloud_points())
        assert logits.shape == (1, 8)

    def test_backward_reaches_all_parameters(self):
        model = PointNetPPClassifier(8, np.random.default_rng(0))
        logits = model(cloud_points())
        logits.sum().backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads)

    def test_approximation_setting_changes_logits(self):
        model = PointNetPPClassifier(8, np.random.default_rng(0))
        model.eval()
        pts = cloud_points(seed=1)
        exact = model(pts, ApproxSetting(0, None))
        approx = model(pts, ApproxSetting(4, 2))
        assert not np.allclose(exact.data, approx.data)

    def test_rejects_bad_classes(self):
        with pytest.raises(ValueError):
            PointNetPPClassifier(0, np.random.default_rng(0))


class TestSegmenter:
    def test_per_point_logits(self):
        model = PointNetPPSegmenter(9, np.random.default_rng(0))
        pts = cloud_points(96)
        logits = model(pts)
        assert logits.shape == (96, 9)

    def test_backward(self):
        model = PointNetPPSegmenter(5, np.random.default_rng(0))
        model(cloud_points(96)).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestDensePoint:
    def test_logits_and_dense_connectivity(self):
        model = DensePointClassifier(8, np.random.default_rng(0))
        logits = model(cloud_points(160))
        assert logits.shape == (1, 8)

    def test_backward(self):
        model = DensePointClassifier(8, np.random.default_rng(0))
        model(cloud_points(160)).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestFrustum:
    def scene(self):
        return generate_scene(np.random.default_rng(0), num_points=1024, num_cars=2)

    def test_crop_fixed_size(self):
        scene = self.scene()
        crop = frustum_crop(scene.cloud.points, scene.boxes[0].center[:2], max_points=128)
        assert crop.shape == (128, 3)

    def test_crop_is_directional(self):
        scene = self.scene()
        crop = frustum_crop(
            scene.cloud.points, scene.boxes[0].center[:2],
            half_angle=0.2, max_points=128,
        )
        target = np.arctan2(scene.boxes[0].center[1], scene.boxes[0].center[0])
        bearings = np.arctan2(crop[:, 1], crop[:, 0])
        assert np.abs(np.angle(np.exp(1j * (bearings - target)))).max() <= 0.2 + 1e-9

    def test_prediction_decodes_to_box(self):
        scene = self.scene()
        model = FrustumPointNet(np.random.default_rng(0))
        crop = frustum_crop(scene.cloud.points, scene.boxes[0].center[:2], max_points=128)
        pred = model(crop)
        assert pred.segmentation_logits.shape == (128, 2)
        assert pred.box_params.shape == (1, 8)
        box = pred.decode(crop)
        assert np.isfinite(box.center).all()
        assert (box.size > 0).all()

    def test_backward(self):
        scene = self.scene()
        model = FrustumPointNet(np.random.default_rng(0))
        crop = frustum_crop(scene.cloud.points, scene.boxes[0].center[:2], max_points=96)
        pred = model(crop)
        (pred.segmentation_logits.sum() + pred.box_params.sum()).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestRegistry:
    def test_table1_rows(self):
        assert set(MODEL_REGISTRY) == {
            "PointNet++ (c)", "PointNet++ (s)", "DensePoint", "F-PointNet"
        }
        tasks = {e.task for e in MODEL_REGISTRY.values()}
        assert tasks == {"classification", "segmentation", "detection"}

    def test_build_model(self):
        model = build_model("PointNet++ (c)", num_classes=8, seed=1)
        assert model(cloud_points()).shape == (1, 8)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("PointNet", 8)

    def test_paper_dataset_mapping(self):
        assert MODEL_REGISTRY["F-PointNet"].paper_dataset == "KITTI"
        assert MODEL_REGISTRY["PointNet++ (s)"].metric == "mIoU"
