"""Tests for the CLI experiment runner."""

import pytest

from repro.analysis.cli import FIGURES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "available figures" in out

    def test_unknown_figure(self, capsys):
        assert main(["--figures", "99"]) == 2

    def test_single_figure_runs(self, capsys):
        assert main(["--figures", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out

    def test_every_figure_has_a_driver(self):
        for fig, fn in FIGURES.items():
            assert callable(fn), fig
