"""Edge-case and robustness tests for the training stack."""

import numpy as np
import pytest

from repro.core import ApproxSetting, ApproximationPipeline
from repro.geometry import ShapeClassificationDataset, generate_scene
from repro.models import FrustumPointNet, PointNetPPClassifier, frustum_crop
from repro.models.fpointnet import CAR_ANCHOR
from repro.nn import no_grad
from repro.training import ClassificationTrainer, FixedSetting
from repro.training.trainer import DetectionTrainer


class TestEvaluationDeterminism:
    def test_evaluate_is_repeatable(self):
        ds = ShapeClassificationDataset(size=8, num_points=96, rotate=False)
        model = PointNetPPClassifier(ds.num_classes, np.random.default_rng(0))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()))
        a = trainer.evaluate(ds, ApproxSetting(2, 3))
        b = trainer.evaluate(ds, ApproxSetting(2, 3))
        assert a == b

    def test_evaluate_restores_training_mode(self):
        ds = ShapeClassificationDataset(size=4, num_points=96, rotate=False)
        model = PointNetPPClassifier(ds.num_classes, np.random.default_rng(0))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()))
        trainer.evaluate(ds, ApproxSetting())
        assert model.training  # trainer flips back for the next epoch


class TestTrainingStateIsolation:
    def test_training_does_not_mutate_dataset(self):
        ds = ShapeClassificationDataset(size=4, num_points=96, rotate=False)
        before = ds[0][0].points.copy()
        model = PointNetPPClassifier(ds.num_classes, np.random.default_rng(0))
        ClassificationTrainer(model, FixedSetting(ApproxSetting())).train(ds, 1)
        assert np.array_equal(ds[0][0].points, before)

    def test_state_dict_roundtrip_preserves_predictions(self):
        ds = ShapeClassificationDataset(size=8, num_points=96, rotate=False)
        model = PointNetPPClassifier(ds.num_classes, np.random.default_rng(0))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()))
        trainer.train(ds, 1)
        state = model.state_dict()
        clone = PointNetPPClassifier(ds.num_classes, np.random.default_rng(99))
        clone.load_state_dict(state)
        clone.eval()
        model.eval()
        cloud, _ = ds[0]
        with no_grad():
            assert np.allclose(
                model(cloud.points).data, clone(cloud.points).data
            )


class TestFrustumEdgeCases:
    def test_crop_with_no_points_in_frustum_falls_back(self):
        # Proposal pointing away from every point: crop must still return
        # a valid fixed-size sample.
        pts = np.array([[10.0, 0.0, 0.0]] * 5)
        crop = frustum_crop(pts, np.array([-10.0, 0.0]), half_angle=0.05,
                            max_points=8)
        assert crop.shape == (8, 3)

    def test_decode_with_empty_segmentation(self):
        scene = generate_scene(np.random.default_rng(0), num_points=512, num_cars=1)
        model = FrustumPointNet(np.random.default_rng(0))
        crop = frustum_crop(scene.cloud.points, scene.boxes[0].center[:2],
                            max_points=64)
        pred = model(crop)
        # Force an all-background segmentation and decode anyway.
        pred.segmentation_logits.data[:, 0] = 10.0
        pred.segmentation_logits.data[:, 1] = -10.0
        box = pred.decode(crop)
        assert np.isfinite(box.center).all()

    def test_box_size_clipped_to_sane_range(self):
        scene = generate_scene(np.random.default_rng(1), num_points=512, num_cars=1)
        model = FrustumPointNet(np.random.default_rng(1))
        crop = frustum_crop(scene.cloud.points, scene.boxes[0].center[:2],
                            max_points=64)
        pred = model(crop)
        pred.box_params.data[0, 3:6] = 100.0  # absurd log-size residuals
        box = pred.decode(crop)
        assert (box.size <= CAR_ANCHOR * np.exp(1.5) + 1e-9).all()

    def test_detection_box_target_round_trip(self):
        scene = generate_scene(np.random.default_rng(2), num_points=1024, num_cars=1)
        box = scene.boxes[0]
        crop = frustum_crop(scene.cloud.points, box.center[:2], max_points=128)
        labels = box.contains(crop).astype(np.int64)
        target = DetectionTrainer._box_target(crop, labels, box)
        # Decoding the target parameters must recover the ground truth box.
        inside = crop[labels.astype(bool)]
        base = inside.mean(axis=0) if len(inside) else crop.mean(axis=0)
        assert np.allclose(base + target[:3], box.center)
        assert np.allclose(CAR_ANCHOR * np.exp(target[3:6]), box.size)
        assert np.isclose(np.arctan2(target[6], target[7]), box.yaw)
