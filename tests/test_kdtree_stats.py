"""Tests for TraversalStats accounting."""

from repro.kdtree import TraversalStats


class TestTraversalStats:
    def test_defaults_zero(self):
        s = TraversalStats()
        assert s.nodes_visited == 0
        assert s.visit_trace == []
        assert s.nodes_visited_per_query == 0.0

    def test_merge_accumulates(self):
        a = TraversalStats(nodes_visited=3, queries=1, visit_trace=[1, 2, 3])
        b = TraversalStats(nodes_visited=2, queries=1, visit_trace=[4, 5])
        a.merge(b)
        assert a.nodes_visited == 5
        assert a.queries == 2
        assert a.visit_trace == [1, 2, 3, 4, 5]

    def test_merge_returns_self(self):
        a = TraversalStats()
        assert a.merge(TraversalStats()) is a

    def test_per_query_average(self):
        s = TraversalStats(nodes_visited=10, queries=4)
        assert s.nodes_visited_per_query == 2.5

    def test_independent_instances(self):
        a = TraversalStats()
        b = TraversalStats()
        a.visit_trace.append(1)
        assert b.visit_trace == []  # no shared default list
