"""Micro-benchmark: the batched engine must beat the per-query loop.

Acceptance floor from the runtime issue: ≥3× on a 4096-point cloud (the
measured margin is typically >10×, so the assertion has real headroom
against noisy CI machines).  Marked ``slow``: the per-query reference loop
itself is the expensive part.
"""

import time

import numpy as np
import pytest

from repro.kdtree import ball_query, build_kdtree
from repro.runtime import BatchedBallQuery

pytestmark = pytest.mark.slow

N_POINTS = 4096
N_QUERIES = 4096
RADIUS = 0.1
MAX_NEIGHBORS = 16
MIN_SPEEDUP = 3.0


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_batched_beats_per_query_loop_on_4k_cloud(rng):
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)[:N_QUERIES]]
    tree = build_kdtree(pts)
    engine = BatchedBallQuery(tree)
    engine.query(queries[:8], RADIUS, MAX_NEIGHBORS)  # warm-up

    loop_time, (loop_idx, loop_cnt) = _best_of(
        1, lambda: ball_query(tree, queries, RADIUS, MAX_NEIGHBORS)
    )
    batched_time, (batched_idx, batched_cnt) = _best_of(
        3, lambda: engine.query(queries, RADIUS, MAX_NEIGHBORS)
    )

    # Same results, much less time.
    np.testing.assert_array_equal(batched_idx, loop_idx)
    np.testing.assert_array_equal(batched_cnt, loop_cnt)
    speedup = loop_time / batched_time
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x faster "
        f"({loop_time:.3f}s loop vs {batched_time:.3f}s batched)"
    )
