"""Micro-benchmarks: the vectorized engines must beat their Python loops.

Acceptance floors from the runtime issues, all on a 4096-point cloud:
≥3× for the batched exact query vs the per-query searcher, ≥5× for the
vectorized lockstep engine vs the per-step ``run_subtree_lockstep``
reference, ≥5× for the vectorized top phase vs the per-group descent
loop, and ≥5× for the traced batched engine vs the per-query
``record_trace=True`` loop the motivation studies used to run (measured
margins are typically well above all four, so the assertions have real
headroom against noisy machines).  Also benches the epoch-batched
training materialization fan-out.  Marked ``slow``: the Python reference
loops themselves are the expensive part.
"""

import os
import time

import numpy as np
import pytest

from repro.core import ApproxSetting, TreeBufferBanking
from repro.core.pipeline import ApproximationPipeline
from repro.core.split_tree import SplitTree
from repro.kdtree import ball_query, build_kdtree
from repro.kdtree.exact import radius_search
from repro.kdtree.stats import TraversalStats
from repro.memsim import SramStats
from repro.models.layers import farthest_point_sampling
from repro.runtime import (
    BatchedBallQuery,
    MaterializeRequest,
    SearchSession,
    SweepRunner,
    TracedBallQuery,
    VectorizedLockstep,
    reference_top_phase,
    vectorized_top_phase,
)
from repro.serve import QueryService

pytestmark = pytest.mark.slow

N_POINTS = 4096
N_QUERIES = 4096
RADIUS = 0.1
MAX_NEIGHBORS = 16
MIN_SPEEDUP = 3.0

# Lockstep bench: proportional split for a height-13 tree (the paper's
# h_t = 4 on height-8 trees carves half the levels; 4096 points build
# height 13, hence h_t = 6), gentle elision three levels above the
# leaves, and the Fig. 22 high-parallelism hardware point (8 PEs x 8
# banks) where the per-step Python reference is most expensive.
LOCKSTEP_RADIUS = 0.25
LOCKSTEP_TOP_HEIGHT = 6
LOCKSTEP_ELISION = 10
LOCKSTEP_PES = 8
LOCKSTEP_BANKS = 8
LOCKSTEP_MIN_SPEEDUP = 5.0
TOPPHASE_MIN_SPEEDUP = 5.0
TRACED_MIN_SPEEDUP = 5.0
EPOCH_FANOUT_MIN_SPEEDUP = 1.2
# Small per-request batches are the serving regime coalescing exists for:
# per-request sweep overhead dominates, so merging pays the most there.
SERVE_REQUESTS = 128
SERVE_QUERIES_PER_REQUEST = 8
SERVE_MIN_SPEEDUP = 3.0


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_batched_beats_per_query_loop_on_4k_cloud(rng):
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)[:N_QUERIES]]
    tree = build_kdtree(pts)
    engine = BatchedBallQuery(tree)
    engine.query(queries[:8], RADIUS, MAX_NEIGHBORS)  # warm-up

    loop_time, (loop_idx, loop_cnt) = _best_of(
        1, lambda: ball_query(tree, queries, RADIUS, MAX_NEIGHBORS)
    )
    batched_time, (batched_idx, batched_cnt) = _best_of(
        3, lambda: engine.query(queries, RADIUS, MAX_NEIGHBORS)
    )

    # Same results, much less time.
    np.testing.assert_array_equal(batched_idx, loop_idx)
    np.testing.assert_array_equal(batched_cnt, loop_cnt)
    speedup = loop_time / batched_time
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x faster "
        f"({loop_time:.3f}s loop vs {batched_time:.3f}s batched)"
    )


def test_vectorized_lockstep_beats_reference_loop_on_4k_cloud(
    rng, lockstep_groups_builder, reference_lockstep_driver
):
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)]
    tree = build_kdtree(pts)
    groups, split = lockstep_groups_builder(tree, queries, LOCKSTEP_TOP_HEIGHT)
    banking = TreeBufferBanking(LOCKSTEP_BANKS)
    mach_queries = np.concatenate([q for _, q in groups])
    max_hits = np.full(len(mach_queries), MAX_NEIGHBORS, dtype=np.int64)

    def reference():
        cycles, stalls, hits, _, sram = reference_lockstep_driver(
            tree, queries, split, groups, LOCKSTEP_RADIUS, MAX_NEIGHBORS,
            LOCKSTEP_ELISION, LOCKSTEP_PES, banking,
        )
        return cycles, stalls, hits, sram

    def vectorized():
        sram = SramStats()
        engine = VectorizedLockstep(
            tree, banking=banking, num_pes=LOCKSTEP_PES
        )
        outcome = engine.run(
            queries, LOCKSTEP_RADIUS, groups, max_hits,
            elide_depth=LOCKSTEP_ELISION, sram=sram,
        )
        hits = {int(q): h for q, h in zip(mach_queries, outcome.hits)}
        return outcome.cycles, outcome.stalls, hits, sram

    vectorized()  # warm-up
    ref_time, ref = _best_of(1, reference)
    vec_time, vec = _best_of(3, vectorized)

    # Identical simulation, much less time.
    assert vec[0] == ref[0]  # cycles
    assert vec[1] == ref[1]  # stalls
    assert vec[2] == ref[2]  # every machine's hits
    for field in ("accesses", "conflicted", "elided", "broadcasts",
                  "reads_served", "cycles"):
        assert getattr(vec[3], field) == getattr(ref[3], field), field
    speedup = ref_time / vec_time
    assert speedup >= LOCKSTEP_MIN_SPEEDUP, (
        f"vectorized lockstep only {speedup:.2f}x faster "
        f"({ref_time:.3f}s reference vs {vec_time:.3f}s vectorized)"
    )


def test_vectorized_top_phase_beats_group_loop_on_4k_cloud(rng):
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)]
    split = SplitTree(build_kdtree(pts), LOCKSTEP_TOP_HEIGHT)
    banking = TreeBufferBanking(LOCKSTEP_BANKS)

    vectorized_top_phase(split, queries, LOCKSTEP_PES, banking, 4)  # warm-up
    ref_time, ref = _best_of(
        1, lambda: reference_top_phase(split, queries, LOCKSTEP_PES, banking, 4)
    )
    vec_time, vec = _best_of(
        3, lambda: vectorized_top_phase(split, queries, LOCKSTEP_PES, banking, 4)
    )

    assert vec == ref  # (cycles, stalls) identical
    speedup = ref_time / vec_time
    assert speedup >= TOPPHASE_MIN_SPEEDUP, (
        f"vectorized top phase only {speedup:.2f}x faster "
        f"({ref_time:.3f}s loop vs {vec_time:.3f}s vectorized)"
    )


def test_traced_engine_beats_per_query_trace_loop_on_4k_cloud(rng):
    # The full-size layer_search_traces shape: every query of a 4096-point
    # cloud traced with stats, the workload Figs. 2-3 collect per layer.
    pts = rng.normal(size=(N_POINTS, 3))
    queries = pts[rng.permutation(N_POINTS)]
    tree = build_kdtree(pts)
    radius, k = 0.25, MAX_NEIGHBORS
    engine = TracedBallQuery(tree)
    engine.query(queries[:8], radius, k)  # warm-up

    def reference():
        out = []
        for q in queries:
            stats = TraversalStats()
            radius_search(
                tree, q, radius, max_neighbors=k, stats=stats, record_trace=True
            )
            out.append(stats.visit_trace)
        return out

    ref_time, ref_traces = _best_of(1, reference)
    traced_time, result = _best_of(3, lambda: engine.query(queries, radius, k))

    # Identical traces, much less time.
    assert [t.tolist() for t in result.traces] == ref_traces
    speedup = ref_time / traced_time
    assert speedup >= TRACED_MIN_SPEEDUP, (
        f"traced engine only {speedup:.2f}x faster "
        f"({ref_time:.3f}s loop vs {traced_time:.3f}s traced)"
    )


def test_coalesced_serving_beats_sequential_on_4k_cloud(rng):
    # The full-size serving trace: a fleet of same-cloud callers with
    # heterogeneous (radius, K) settings, coalesced into one merged
    # frontier sweep versus served one request at a time.
    pts = rng.normal(size=(N_POINTS, 3))
    radii = (0.1, 0.15, 0.25)
    neighbor_caps = (8, 16, 32)
    trace = [
        (
            pts,
            pts[rng.integers(0, N_POINTS, size=SERVE_QUERIES_PER_REQUEST)],
            radii[i % len(radii)],
            neighbor_caps[i % len(neighbor_caps)],
        )
        for i in range(SERVE_REQUESTS)
    ]
    session = SearchSession()
    session.tree_for(pts)  # both sides serve against a warm tree

    def coalesced():
        service = QueryService(session=session)
        tickets = [service.submit(*request) for request in trace]
        service.flush()
        return [ticket.result() for ticket in tickets], service.stats

    def sequential():
        service = QueryService(session=session)
        return [service.query(*request) for request in trace]

    coalesced()  # warm-up
    sequential_time, sequential_results = _best_of(1, sequential)
    coalesced_time, (coalesced_results, stats) = _best_of(3, coalesced)

    for (ci, cc), (si, sc) in zip(coalesced_results, sequential_results):
        np.testing.assert_array_equal(ci, si)
        np.testing.assert_array_equal(cc, sc)
    assert stats.sweeps == 1  # the whole trace merged into one sweep
    speedup = sequential_time / coalesced_time
    assert speedup >= SERVE_MIN_SPEEDUP, (
        f"coalesced serving only {speedup:.2f}x faster "
        f"({sequential_time:.3f}s sequential vs {coalesced_time:.3f}s coalesced)"
    )


def test_epoch_materialization_fanout_beats_serial(rng):
    # One epoch's worth of approximate neighbor materialization (the
    # conflict-simulated search is the expensive part of Sec. 5 training):
    # the process fan-out must beat computing the same groups serially,
    # and must fill the session with identical entries.
    clouds = [rng.normal(size=(1024, 3)) for _ in range(8)]
    settings = [ApproxSetting(4, 8), ApproxSetting(3, None)]
    requests = []
    for ci, cloud in enumerate(clouds):
        queries = cloud[farthest_point_sampling(cloud, 128)]
        for setting in settings:
            requests.append(
                MaterializeRequest(
                    points=cloud, queries=queries, radius=0.3, max_neighbors=16,
                    setting=setting, cache_key=(ci, "sa1"),
                )
            )

    serial = ApproximationPipeline()
    t0 = time.perf_counter()
    report = serial.materialize(requests)
    serial_time = time.perf_counter() - t0
    assert report.computed == len(requests)

    fanned = ApproximationPipeline()
    runner = SweepRunner(num_workers=4, backend="process")
    t0 = time.perf_counter()
    fanned.materialize(requests, runner=runner)
    fanout_time = time.perf_counter() - t0

    # Identical cache contents regardless of where the work ran.
    a, b = serial.session.results._data, fanned.session.results._data
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key][0], b[key][0])
        np.testing.assert_array_equal(a[key][1], b[key][1])

    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-CPU machine: process fan-out cannot be faster")
    speedup = serial_time / fanout_time
    assert speedup >= EPOCH_FANOUT_MIN_SPEEDUP, (
        f"epoch materialization fan-out only {speedup:.2f}x faster "
        f"({serial_time:.3f}s serial vs {fanout_time:.3f}s fanned)"
    )
