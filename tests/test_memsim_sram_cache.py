"""Unit tests for the banked SRAM and the LRU cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    BankedSram,
    BankedSramConfig,
    FullyAssociativeCache,
    crossbar_area_relative,
)


def sram(num_banks=4, word_bytes=4):
    return BankedSram(BankedSramConfig(num_banks=num_banks, word_bytes=word_bytes))


class TestArbitration:
    def test_no_conflict_distinct_banks(self):
        s = sram(4)
        addrs = np.array([0, 4, 8, 12])  # banks 0,1,2,3
        winner_of, lost, cycles = s.arbitrate(addrs)
        assert not lost.any()
        assert cycles == 1
        assert winner_of.tolist() == [0, 1, 2, 3]

    def test_full_conflict_stall(self):
        s = sram(4)
        addrs = np.array([0, 16, 32])  # all bank 0
        winner_of, lost, cycles = s.arbitrate(addrs)
        assert lost.tolist() == [False, True, True]
        assert cycles == 3  # serialization
        assert winner_of.tolist() == [0, 1, 2]  # everyone eventually served

    def test_elide_replicate(self):
        s = sram(4)
        addrs = np.array([0, 16, 32])
        elide = np.array([True, True, True])
        winner_of, lost, cycles = s.arbitrate(addrs, elide=elide)
        assert cycles == 1
        assert winner_of.tolist() == [0, 0, 0]  # losers observe winner's data
        assert s.stats.elided == 2

    def test_partial_elide(self):
        s = sram(4)
        addrs = np.array([0, 16, 32])
        elide = np.array([False, False, True])
        winner_of, lost, cycles = s.arbitrate(addrs, elide=elide)
        # Port 1 must retry (1 extra cycle); port 2 is elided.
        assert cycles == 2
        assert winner_of.tolist() == [0, 1, 0]

    def test_conflict_stats_accumulate(self):
        s = sram(2)
        s.arbitrate(np.array([0, 8]))  # both bank 0
        s.arbitrate(np.array([0, 4]))  # banks 0, 1
        assert s.stats.accesses == 4
        assert s.stats.conflicted == 1
        assert s.stats.conflict_rate == 0.25

    def test_empty_request_group(self):
        s = sram(4)
        winner_of, lost, cycles = s.arbitrate(np.array([], dtype=np.int64))
        assert cycles == 0
        assert len(winner_of) == 0

    def test_bad_elide_shape(self):
        s = sram(4)
        with pytest.raises(ValueError):
            s.arbitrate(np.array([0, 4]), elide=np.array([True]))

    def test_more_banks_fewer_conflicts(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 16, size=(2000, 8)) * 4
        rates = []
        for banks in (2, 4, 8, 16, 32):
            s = sram(banks)
            s.conflict_groups_batch(addrs)
            rates.append(s.stats.conflict_rate)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_batch_matches_serial(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 12, size=(50, 8)) * 4
        batch = sram(4)
        lost_batch = batch.conflict_groups_batch(addrs)
        serial = sram(4)
        for row in addrs:
            _, lost, _ = serial.arbitrate(row)
            pass
        assert int(lost_batch.sum()) == serial.stats.conflicted

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BankedSramConfig(num_banks=3)  # not a power of two
        with pytest.raises(ValueError):
            BankedSramConfig(size_bytes=0)


class TestCrossbarArea:
    def test_calibration_point(self):
        assert crossbar_area_relative(32) == pytest.approx(2.0)

    def test_quadratic_growth(self):
        assert crossbar_area_relative(16) == pytest.approx(0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            crossbar_area_relative(0)


class TestCache:
    def test_hit_after_fill(self):
        c = FullyAssociativeCache(capacity_bytes=1024, line_bytes=64)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_lru_eviction(self):
        c = FullyAssociativeCache(capacity_bytes=128, line_bytes=64)  # 2 lines
        c.access(0)
        c.access(64)
        c.access(128)  # evicts line 0
        assert not c.access(0)

    def test_lru_recency_update(self):
        c = FullyAssociativeCache(capacity_bytes=128, line_bytes=64)
        c.access(0)
        c.access(64)
        c.access(0)  # refresh line 0
        c.access(128)  # should evict line 1 (64), not line 0
        assert c.access(0)

    def test_miss_rate_and_traffic(self):
        c = FullyAssociativeCache(capacity_bytes=1024, line_bytes=64)
        c.access_trace(np.arange(0, 64 * 10, 64))
        assert c.stats.misses == 10
        assert c.stats.miss_rate == 1.0
        assert c.dram_bytes_fetched == 640

    def test_reset(self):
        c = FullyAssociativeCache(capacity_bytes=1024)
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.access(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(capacity_bytes=32, line_bytes=64)
        with pytest.raises(ValueError):
            FullyAssociativeCache(capacity_bytes=0)


@settings(max_examples=25, deadline=None)
@given(
    banks=st.sampled_from([2, 4, 8, 16]),
    seed=st.integers(min_value=0, max_value=2**31),
    ports=st.integers(min_value=1, max_value=16),
)
def test_property_arbitration_serves_everyone(banks, seed, ports):
    """Stall-mode arbitration always serves every request as itself."""
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 14, size=ports) * 4
    s = sram(banks)
    winner_of, lost, cycles = s.arbitrate(addrs)
    assert winner_of.tolist() == list(range(ports))
    # Cycle count equals the worst-case bank occupancy.
    bank_ids = s.bank_of(addrs)
    worst = max(np.bincount(bank_ids, minlength=banks))
    assert cycles == worst
