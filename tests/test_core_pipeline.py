"""Tests for the ApproximationPipeline (search + elision + memoization)."""

import numpy as np
import pytest

from repro.core import (
    ApproxSetting,
    ApproximationPipeline,
    PointBufferBanking,
    TreeBufferBanking,
)
from repro.kdtree import ball_query, build_kdtree


def problem(n=128, m=16, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    return pts, pts[rng.choice(n, m, replace=False)]


class TestPipeline:
    def test_exact_setting_matches_ball_query(self):
        pts, queries = problem()
        pipe = ApproximationPipeline()
        got = pipe.query(pts, queries, 0.5, 8, ApproxSetting(0, None))
        tree = build_kdtree(pts)
        want, _ = ball_query(tree, queries, 0.5, 8)
        assert np.array_equal(got, want)

    def test_cache_hit_returns_same_array(self):
        pts, queries = problem(seed=1)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        assert a is b  # memoized

    def test_cache_distinguishes_settings(self):
        pts, queries = problem(seed=2)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(0, None), cache_key="k")
        assert a is not b

    def test_cache_distinguishes_banking(self):
        pts, queries = problem(seed=3)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        pipe.tree_banking = TreeBufferBanking(8)
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        assert a is not b  # new key, recomputed

    def test_clear_cache(self):
        pts, queries = problem(seed=4)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None), cache_key="k")
        pipe.clear_cache()
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None), cache_key="k")
        assert a is not b
        assert np.array_equal(a, b)

    def test_no_cache_key_disables_memoization(self):
        pts, queries = problem(seed=5)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None))
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None))
        assert a is not b

    def test_aggregation_elision_rewrites_indices(self):
        pts, queries = problem(n=512, m=64, seed=6)
        plain = ApproximationPipeline(elide_aggregation=False)
        eliding = ApproximationPipeline(
            elide_aggregation=True, point_banking=PointBufferBanking(4)
        )
        a = plain.query(pts, queries, 0.8, 16, ApproxSetting(0, None))
        b = eliding.query(pts, queries, 0.8, 16, ApproxSetting(0, None))
        assert not np.array_equal(a, b)
        for i in range(len(queries)):
            assert set(b[i]) <= set(a[i])  # replication never invents ids
