"""Tests for the ApproximationPipeline (search + elision + memoization)."""

import numpy as np
import pytest

from repro.core import (
    ApproxSetting,
    ApproximationPipeline,
    PointBufferBanking,
    TreeBufferBanking,
)
from repro.kdtree import ball_query, build_kdtree


def problem(n=128, m=16, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    return pts, pts[rng.choice(n, m, replace=False)]


class TestPipeline:
    def test_exact_setting_matches_ball_query(self):
        pts, queries = problem()
        pipe = ApproximationPipeline()
        got = pipe.query(pts, queries, 0.5, 8, ApproxSetting(0, None))
        tree = build_kdtree(pts)
        want, _ = ball_query(tree, queries, 0.5, 8)
        assert np.array_equal(got, want)

    def test_cache_hit_returns_same_array(self):
        pts, queries = problem(seed=1)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        assert a is b  # memoized

    def test_cache_distinguishes_settings(self):
        pts, queries = problem(seed=2)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(0, None), cache_key="k")
        assert a is not b

    def test_cache_distinguishes_banking(self):
        pts, queries = problem(seed=3)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        pipe.tree_banking = TreeBufferBanking(8)
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k")
        assert a is not b  # new key, recomputed

    def test_clear_cache(self):
        pts, queries = problem(seed=4)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None), cache_key="k")
        pipe.clear_cache()
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None), cache_key="k")
        assert a is not b
        assert np.array_equal(a, b)

    def test_no_cache_key_disables_memoization(self):
        pts, queries = problem(seed=5)
        pipe = ApproximationPipeline()
        a = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None))
        b = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None))
        assert a is not b

    def test_query_with_counts_exact_path(self):
        pts, queries = problem(seed=7)
        pipe = ApproximationPipeline()
        indices, counts = pipe.query_with_counts(
            pts, queries, 0.5, 8, ApproxSetting(0, None)
        )
        tree = build_kdtree(pts)
        want_idx, want_cnt = ball_query(tree, queries, 0.5, 8)
        assert np.array_equal(indices, want_idx)
        assert np.array_equal(counts, want_cnt)

    def test_counts_served_from_cache_hit(self):
        # Counts used to be stored in the cache but unreachable; the hit
        # path must now hand back the exact cached objects.
        pts, queries = problem(seed=8)
        pipe = ApproximationPipeline()
        idx_a, cnt_a = pipe.query_with_counts(
            pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k"
        )
        assert pipe.session.results.stats.hits == 0
        idx_b, cnt_b = pipe.query_with_counts(
            pts, queries, 0.5, 8, ApproxSetting(2, 3), cache_key="k"
        )
        assert pipe.session.results.stats.hits == 1
        assert idx_a is idx_b
        assert cnt_a is cnt_b

    def test_query_and_query_with_counts_share_cache(self):
        pts, queries = problem(seed=9)
        pipe = ApproximationPipeline()
        indices = pipe.query(pts, queries, 0.5, 8, ApproxSetting(1, None), cache_key="k")
        idx2, counts = pipe.query_with_counts(
            pts, queries, 0.5, 8, ApproxSetting(1, None), cache_key="k"
        )
        assert indices is idx2  # one entry serves both call shapes
        assert counts.shape == (len(queries),)

    def test_mutated_points_do_not_hit_stale_cache(self):
        # The stale-cache hazard: same cache_key, different geometry.
        pts, queries = problem(seed=10)
        pipe = ApproximationPipeline()
        stale = pipe.query(pts, queries, 0.5, 8, ApproxSetting(0, None), cache_key="k")
        moved = pts + 0.35
        fresh = pipe.query(moved, queries, 0.5, 8, ApproxSetting(0, None), cache_key="k")
        tree = build_kdtree(moved)
        want, _ = ball_query(tree, queries, 0.5, 8)
        assert np.array_equal(fresh, want)
        assert not np.array_equal(stale, fresh)

    def test_aggregation_elision_rewrites_indices(self):
        pts, queries = problem(n=512, m=64, seed=6)
        plain = ApproximationPipeline(elide_aggregation=False)
        eliding = ApproximationPipeline(
            elide_aggregation=True, point_banking=PointBufferBanking(4)
        )
        a = plain.query(pts, queries, 0.8, 16, ApproxSetting(0, None))
        b = eliding.query(pts, queries, 0.8, 16, ApproxSetting(0, None))
        assert not np.array_equal(a, b)
        for i in range(len(queries)):
            assert set(b[i]) <= set(a[i])  # replication never invents ids
