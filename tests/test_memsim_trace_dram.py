"""Unit tests for memory traces and the DRAM model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    DramConfig,
    DramModel,
    continuous_mask,
    fraction_noncontiguous,
    interleave_round_robin,
)


class TestTrace:
    def test_fully_sequential_trace(self):
        addrs = np.arange(0, 640, 64)
        assert fraction_noncontiguous(addrs, 64) == pytest.approx(1 / 10)
        mask = continuous_mask(addrs, 64)
        assert not mask[0] and mask[1:].all()

    def test_fully_random_trace(self):
        addrs = np.array([0, 1000, 64, 5000])
        assert fraction_noncontiguous(addrs, 64) == 1.0

    def test_empty_trace(self):
        assert fraction_noncontiguous(np.array([]), 64) == 0.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            continuous_mask(np.array([0]), 0)

    def test_interleave_round_robin(self):
        merged = interleave_round_robin([[1, 2, 3], [10, 20], [100]])
        assert merged.tolist() == [1, 10, 100, 2, 20, 3]

    def test_interleave_empty(self):
        assert interleave_round_robin([]).tolist() == []
        assert interleave_round_robin([[], []]).tolist() == []

    def test_interleave_breaks_streams(self):
        # Two individually-sequential traces become almost fully
        # non-contiguous when interleaved — the Fig. 2 effect.
        a = np.arange(0, 64 * 20, 64)
        b = np.arange(10_000, 10_000 + 64 * 20, 64)
        merged = interleave_round_robin([a, b])
        assert fraction_noncontiguous(merged, 64) == 1.0


class TestDram:
    def test_stream_costs_less_than_random(self):
        cfg = DramConfig()
        seq = DramModel(cfg)
        rnd = DramModel(cfg)
        n = 100
        addrs_seq = np.arange(n) * cfg.burst_bytes
        rng = np.random.default_rng(0)
        addrs_rnd = rng.integers(0, 10**8, size=n) * 4096
        seq.access_trace(addrs_seq, cfg.burst_bytes)
        rnd.access_trace(addrs_rnd, cfg.burst_bytes)
        assert seq.usage.cycles < rnd.usage.cycles
        assert seq.usage.random_accesses < rnd.usage.random_accesses

    def test_stream_method_accounting(self):
        model = DramModel()
        inc = model.stream(4096)
        assert inc.streaming_bytes == 4096
        assert inc.random_bytes == 0
        assert inc.cycles > 0
        assert model.usage.total_bytes == 4096

    def test_stream_zero_bytes(self):
        model = DramModel()
        inc = model.stream(0)
        assert inc.cycles == 0
        assert inc.total_bytes == 0

    def test_stream_rejects_negative(self):
        with pytest.raises(ValueError):
            DramModel().stream(-1)

    def test_trace_same_row_is_streaming(self):
        cfg = DramConfig(row_bytes=2048)
        model = DramModel(cfg)
        model.access_trace(np.array([0, 64, 128]), 64)
        assert model.usage.random_accesses == 1  # first access opens a row
        assert model.usage.streaming_accesses == 2

    def test_trace_row_jumps_are_random(self):
        cfg = DramConfig(row_bytes=2048)
        model = DramModel(cfg)
        model.access_trace(np.array([0, 4096, 0, 4096]), 64)
        assert model.usage.random_accesses == 4

    def test_usage_merge(self):
        model = DramModel()
        model.stream(1000)
        model.stream(1000)
        assert model.usage.streaming_bytes == 2000

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DramConfig(row_bytes=0)
        with pytest.raises(ValueError):
            DramConfig(burst_bytes=4096, row_bytes=2048)

    def test_reset(self):
        model = DramModel()
        model.stream(100)
        model.reset()
        assert model.usage.total_bytes == 0


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=500))
def test_property_streaming_is_cheapest_ordering(n):
    """Any permutation of a sequential trace costs at least as much."""
    cfg = DramConfig()
    addrs = np.arange(n) * cfg.burst_bytes
    seq = DramModel(cfg)
    seq.access_trace(addrs, cfg.burst_bytes)
    perm = DramModel(cfg)
    rng = np.random.default_rng(n)
    perm.access_trace(rng.permutation(addrs), cfg.burst_bytes)
    assert seq.usage.cycles <= perm.usage.cycles
