"""Autograd correctness: every op checked against numerical gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(build, x0, atol=1e-5):
    """build(Tensor) -> scalar Tensor; compares autograd vs numerical."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    num = numerical_grad(lambda arr: build(Tensor(arr)).item(), x0.copy())
    assert np.allclose(t.grad, num, atol=atol), f"grad mismatch: {t.grad} vs {num}"


RNG = np.random.default_rng(0)


class TestElementwise:
    def test_add(self):
        check_grad(lambda t: (t + 3.0).sum(), RNG.normal(size=(3, 4)))

    def test_mul(self):
        check_grad(lambda t: (t * t).sum(), RNG.normal(size=(3, 4)))

    def test_div(self):
        check_grad(lambda t: (t / 2.5).sum(), RNG.normal(size=(4,)))

    def test_rdiv(self):
        x = RNG.uniform(1.0, 2.0, size=(4,))
        check_grad(lambda t: (1.0 / t).sum(), x)

    def test_pow(self):
        x = RNG.uniform(0.5, 2.0, size=(5,))
        check_grad(lambda t: (t**3).sum(), x)

    def test_neg_sub(self):
        check_grad(lambda t: (5.0 - t).sum(), RNG.normal(size=(3,)))

    def test_exp_log(self):
        x = RNG.uniform(0.5, 2.0, size=(4,))
        check_grad(lambda t: (t.exp() + t.log()).sum(), x)

    def test_relu(self):
        x = RNG.normal(size=(10,))
        x[np.abs(x) < 1e-3] = 0.5  # keep away from the kink
        check_grad(lambda t: (t.relu() * 2.0).sum(), x)

    def test_tanh_sigmoid(self):
        check_grad(lambda t: (t.tanh() + t.sigmoid()).sum(), RNG.normal(size=(6,)))


class TestBroadcastingAndMatmul:
    def test_broadcast_add(self):
        a0 = RNG.normal(size=(3, 4))
        b0 = RNG.normal(size=(4,))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_matmul(self):
        w0 = RNG.normal(size=(4, 2))
        x0 = RNG.normal(size=(3, 4))

        def f(t):
            return (t @ Tensor(w0)).sum()

        check_grad(f, x0)

    def test_matmul_weight_grad(self):
        x0 = RNG.normal(size=(3, 4))
        w0 = RNG.normal(size=(4, 2))
        w = Tensor(w0.copy(), requires_grad=True)
        (Tensor(x0) @ w).sum().backward()
        num = numerical_grad(lambda arr: (Tensor(x0) @ Tensor(arr)).sum().item(), w0.copy())
        assert np.allclose(w.grad, num, atol=1e-5)

    def test_batched_matmul(self):
        x0 = RNG.normal(size=(2, 3, 4))
        w0 = RNG.normal(size=(4, 5))
        check_grad(lambda t: ((t @ Tensor(w0)) ** 2).sum(), x0)


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_grad(lambda t: (t.sum(axis=0) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_mean(self):
        check_grad(lambda t: (t.mean(axis=1) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_max_axis(self):
        x = RNG.normal(size=(4, 5))
        check_grad(lambda t: (t.max(axis=1) * 2.0).sum(), x)

    def test_max_routes_to_single_argmax_on_ties(self):
        x = np.ones((1, 3))
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        assert t.grad.sum() == 1.0  # not 3.0

    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_transpose(self):
        check_grad(lambda t: (t.transpose(1, 0) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_take_gather(self):
        x0 = RNG.normal(size=(5, 3))
        idx = np.array([[0, 1], [1, 1]])
        check_grad(lambda t: (t.take(idx) ** 2).sum(), x0)

    def test_take_repeated_indices_accumulate(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        x.take(np.array([0, 0, 0])).sum().backward()
        assert np.allclose(x.grad[0], 3.0)
        assert np.allclose(x.grad[1:], 0.0)

    def test_concat(self):
        a0 = RNG.normal(size=(2, 3))
        b0 = RNG.normal(size=(2, 2))
        a = Tensor(a0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        a.concat([b], axis=1).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert np.allclose(x.grad, 7.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x.detach() * 2).sum()
        assert not y.requires_grad

    def test_diamond_graph(self):
        # f(x) = (x*2) + (x*2) reuses a node; gradient must not double-count.
        x = Tensor(np.array([1.0]), requires_grad=True)
        a = x * 2.0
        y = a + a
        y.backward()
        assert np.allclose(x.grad, 4.0)

    def test_deep_chain(self):
        x = Tensor(np.array([1.001]), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.0 + 0.0
        y.backward()
        assert np.allclose(x.grad, 1.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_composite_expression_grad(seed):
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0.2, 1.5, size=(3, 3))

    def f(t):
        return ((t @ Tensor(np.eye(3))).relu().sum(axis=0) ** 2).mean()

    check_grad(f, x0, atol=1e-4)
