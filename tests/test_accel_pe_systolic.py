"""Unit tests for the PE pipeline and systolic array models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import FiveStagePipeline, MatmulCost, SystolicArray
from repro.memsim import EnergyModel


class TestFiveStagePipeline:
    def test_single_visit_latency_is_depth(self):
        run = FiveStagePipeline().run([0])
        assert run.cycles == 5

    def test_steady_state_ii_one(self):
        run = FiveStagePipeline().run([0] * 100)
        assert run.cycles == 5 + 100 - 1
        assert run.throughput > 0.95

    def test_retries_add_bubbles(self):
        run = FiveStagePipeline().run([2, 0, 1])
        assert run.cycles == FiveStagePipeline.analytic_cycles(3, 3)
        assert run.retry_bubbles == 3

    def test_empty_input(self):
        run = FiveStagePipeline().run([])
        assert run.cycles == 0
        assert run.visits_completed == 0

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            FiveStagePipeline().run([-1])

    def test_rejects_short_pipeline(self):
        with pytest.raises(ValueError):
            FiveStagePipeline(depth=2)

    def test_occupancy_bounded_by_depth(self):
        run = FiveStagePipeline().run([1, 0, 2, 0, 0, 1])
        assert max(run.occupancy_trace) <= 5

    @settings(max_examples=30, deadline=None)
    @given(
        retries=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40)
    )
    def test_property_matches_analytic_formula(self, retries):
        run = FiveStagePipeline().run(retries)
        assert run.cycles == FiveStagePipeline.analytic_cycles(
            len(retries), sum(retries)
        )
        assert run.visits_completed == len(retries)


class TestSystolicArray:
    def test_small_matmul_fits_one_tile(self):
        arr = SystolicArray(16, 16)
        cost = arr.matmul(100, 8, 8)
        assert cost.cycles == 100 + 32
        assert cost.macs == 100 * 8 * 8

    def test_tiling_multiplies_cycles(self):
        arr = SystolicArray(16, 16)
        one = arr.matmul(100, 16, 16)
        four = arr.matmul(100, 32, 32)
        assert four.cycles == 4 * one.cycles

    def test_zero_rows(self):
        cost = SystolicArray().matmul(0, 8, 8)
        assert cost.cycles == 0 and cost.macs == 0

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 16)
        with pytest.raises(ValueError):
            SystolicArray().matmul(10, 0, 8)

    def test_shared_mlp_chains(self):
        arr = SystolicArray()
        chain = arr.shared_mlp(50, [3, 16, 16])
        a = arr.matmul(50, 3, 16)
        b = arr.matmul(50, 16, 16)
        assert chain.cycles == a.cycles + b.cycles
        assert chain.macs == a.macs + b.macs

    def test_shared_mlp_needs_two_widths(self):
        with pytest.raises(ValueError):
            SystolicArray().shared_mlp(10, [8])

    def test_energy_components(self):
        arr = SystolicArray()
        cost = arr.matmul(10, 8, 8)
        energy = arr.energy(cost, EnergyModel())
        assert energy.components["mlp_macs"] == pytest.approx(0.5 * cost.macs)
        assert "dram_streaming" in energy.components

    def test_bigger_array_is_faster(self):
        small = SystolicArray(8, 8).matmul(1000, 64, 64)
        big = SystolicArray(32, 32).matmul(1000, 64, 64)
        assert big.cycles < small.cycles
