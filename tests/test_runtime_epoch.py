"""Epoch-batched training materialization: bit-identity and cache economy.

The contract of :mod:`repro.runtime.epoch` is that pulling all of an
epoch's neighbor-search work in front of the gradient loop changes
*nothing* observable about training except speed:

* :class:`EpochPlan.draw` consumes the trainer RNG in exactly the order
  the retired per-step loop did (permutation, then one sampler draw per
  input, per epoch), so every downstream draw is unchanged;
* epoch losses and eval metrics are bit-identical seed for seed (pinned
  here against an inline copy of the per-step loop);
* after materialization the gradient loop's pipeline lookups are pure
  cache hits;
* the process fan-out path fills the session with exactly the entries the
  in-process path computes.
"""

import numpy as np
import pytest

from repro.core import ApproxSetting
from repro.core.pipeline import ApproximationPipeline
from repro.geometry import (
    LidarDetectionDataset,
    PartSegmentationDataset,
    ShapeClassificationDataset,
    num_part_classes,
)
from repro.models import FrustumPointNet, PointNetPPClassifier, PointNetPPSegmenter
from repro.models.layers import farthest_point_sampling
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.runtime import EpochPlan, MaterializeRequest, SweepRunner
from repro.runtime.epoch import materialize_requests
from repro.training import (
    ClassificationTrainer,
    DetectionTrainer,
    FixedSetting,
    MixedSetting,
    SegmentationTrainer,
)

MIXED = MixedSetting(top_heights=[0, 2, 3], elision_heights=[5, None])


def per_step_reference_train(trainer, dataset, epochs):
    """The retired per-step loop, verbatim: the bit-identity baseline."""
    items = [(i, dataset[i]) for i in range(len(dataset))]
    trainer.model.train()
    epoch_losses = []
    for _ in range(epochs):
        order = trainer.rng.permutation(len(items))
        losses = []
        for pos in order:
            idx, sample = items[pos]
            setting = trainer.sampler.sample(trainer.rng)
            trainer.optimizer.zero_grad()
            loss = trainer._loss(sample, setting, cache_key=idx)
            loss.backward()
            trainer.optimizer.step()
            losses.append(loss.item())
        epoch_losses.append(float(np.mean(losses)))
    return epoch_losses


@pytest.fixture(scope="module")
def cls_data():
    return ShapeClassificationDataset(
        size=10, num_points=96, seed=0, occlusion=0.0, noise=0.01, rotate=False
    )


class TestScheduleDraw:
    def test_rng_stream_compatible_with_per_step_draws(self):
        plan = EpochPlan.draw(np.random.default_rng(11), MIXED, 7, 3)
        rng = np.random.default_rng(11)
        for schedule in plan.schedules:
            np.testing.assert_array_equal(schedule.order, rng.permutation(7))
            assert schedule.settings == [MIXED.sample(rng) for _ in range(7)]

    def test_epoch_requests_bind_scheduled_settings_in_visit_order(self):
        plan = EpochPlan.draw(np.random.default_rng(3), MIXED, 4, 1)
        calls = []

        def plan_fn(pos):
            calls.append(pos)
            from repro.runtime import QueryRequest

            return [
                QueryRequest(
                    points=np.zeros((2, 3)), queries=np.zeros((1, 3)),
                    radius=0.1, max_neighbors=2, cache_key=(pos, "sa1"),
                )
            ]

        requests = plan.epoch_requests(0, plan_fn)
        schedule = plan.schedules[0]
        assert calls == [int(p) for p in schedule.order]  # one plan per sample
        assert [r.setting for r in requests] == schedule.settings
        assert [r.cache_key for r in requests] == [
            (int(p), "sa1") for p in schedule.order
        ]


class TestLossIdentity:
    def _make_cls(self, dataset, seed=7):
        model = PointNetPPClassifier(dataset.num_classes, np.random.default_rng(3))
        return ClassificationTrainer(model, MIXED, lr=2e-3, seed=seed)

    def test_classification_losses_bit_identical(self, cls_data):
        ref = per_step_reference_train(self._make_cls(cls_data), cls_data, 2)
        got = self._make_cls(cls_data).train(cls_data, epochs=2).epoch_losses
        assert got == ref  # exact float equality, not approx

    def test_segmentation_losses_bit_identical(self):
        data = PartSegmentationDataset(size=6, num_points=96, seed=4, noise=0.01)

        def make():
            model = PointNetPPSegmenter(num_part_classes(), np.random.default_rng(5))
            return SegmentationTrainer(
                model, num_classes=num_part_classes(),
                sampler=MIXED, lr=2e-3, seed=9,
            )

        ref = per_step_reference_train(make(), data, 2)
        got = make().train(data, epochs=2).epoch_losses
        assert got == ref

    def test_detection_losses_bit_identical(self):
        data = LidarDetectionDataset(size=4, num_points=1024, seed=6, num_cars=2)

        def make():
            model = FrustumPointNet(np.random.default_rng(2))
            return DetectionTrainer(model, frustum_points=96, sampler=MIXED, seed=13)

        ref = per_step_reference_train(make(), data, 2)
        got = make().train(data, epochs=2).epoch_losses
        assert got == ref

    def test_eval_metrics_bit_identical_and_warm(self, cls_data):
        trainer = self._make_cls(cls_data)
        trainer.train(cls_data, epochs=1)
        setting = ApproxSetting(2, 5)
        cold = self._make_cls(cls_data)
        cold.train(cls_data, epochs=1)
        # Route one through explicit pre-materialization to show the eval
        # loop itself adds zero computes on top of it.
        session = trainer.model.pipeline.session
        trainer.model.pipeline.materialize(
            [req.with_setting(setting) for req in trainer._eval_plan(cls_data)]
        )
        misses_before = session.results.stats.misses
        acc = trainer.evaluate(cls_data, setting)
        assert session.results.stats.misses == misses_before
        assert acc == cold.evaluate(cls_data, setting)


class TestWarmCache:
    def test_gradient_loop_runs_on_pure_cache_hits(self, cls_data):
        model = PointNetPPClassifier(cls_data.num_classes, np.random.default_rng(0))
        trainer = ClassificationTrainer(
            model, FixedSetting(ApproxSetting(2, 5)), lr=2e-3, seed=1
        )
        trainer.train(cls_data, epochs=1)
        stats = model.pipeline.session.results.stats
        # Materialization misses once per (sample, layer); every forward
        # lookup afterwards hits.  2 SA layers per sample.
        assert stats.misses == 2 * len(cls_data)
        assert stats.hits == 2 * len(cls_data)

    def test_model_without_query_plan_still_trains(self, cls_data):
        from repro.nn.module import Parameter

        class Blind(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros((3, cls_data.num_classes)))

            def forward(self, points, setting, cache_key=None):
                pooled = np.asarray(points, dtype=np.float64).mean(
                    axis=0, keepdims=True
                )
                return Tensor(pooled) @ self.w

        trainer = ClassificationTrainer(Blind(), FixedSetting(ApproxSetting()), seed=0)
        report = trainer.train(cls_data, epochs=1)
        assert len(report.epoch_losses) == 1


class TestMaterializeRequests:
    def _requests(self, clouds, settings, radius=0.3, k=8):
        out = []
        for ci, cloud in enumerate(clouds):
            queries = cloud[farthest_point_sampling(cloud, 32)]
            for setting in settings:
                out.append(
                    MaterializeRequest(
                        points=cloud, queries=queries, radius=radius,
                        max_neighbors=k, setting=setting, cache_key=(ci, "sa1"),
                    )
                )
        return out

    def test_dedupe_and_already_cached_accounting(self, rng):
        clouds = [rng.normal(size=(128, 3)) for _ in range(3)]
        settings = [ApproxSetting(0, None), ApproxSetting(2, 4)]
        pipeline = ApproximationPipeline()
        requests = self._requests(clouds, settings)
        report = pipeline.materialize(requests + requests)  # duplicates
        assert report.scheduled == 12
        assert report.deduped == 6
        assert report.computed == 6
        again = pipeline.materialize(requests)
        assert again.already_cached == 6 and again.computed == 0

    def test_working_set_larger_than_cache_grows_capacity(self, rng):
        # A grid bigger than the session LRU must not evict its own
        # entries before the consuming loop reads them: the bound grows to
        # the deduped working set and every post-materialization lookup
        # is a hit.
        from repro.runtime import SearchSession

        session = SearchSession(max_results=4)
        pipeline = ApproximationPipeline(session=session)
        clouds = [rng.normal(size=(64, 3)) for _ in range(4)]
        settings = [ApproxSetting(0, None), ApproxSetting(2, 4)]
        requests = self._requests(clouds, settings, k=4)
        assert len(requests) == 8  # > max_results
        report = pipeline.materialize(requests)
        assert report.cache_grown_to == 8
        assert session.results.max_entries == 8
        misses_before = session.results.stats.misses
        for req in requests:
            pipeline.query_with_counts(
                req.points, req.queries, req.radius, req.max_neighbors,
                req.setting, cache_key=req.cache_key,
            )
        assert session.results.stats.misses == misses_before

    def test_cached_working_set_half_survives_new_inserts(self, rng):
        # already-cached working-set keys get their recency refreshed, so
        # inserting the computed half evicts unrelated entries, not them.
        from repro.runtime import SearchSession

        session = SearchSession(max_results=4)
        pipeline = ApproximationPipeline(session=session)
        clouds = [rng.normal(size=(64, 3)) for _ in range(8)]
        old = self._requests(clouds[:4], [ApproxSetting(0, None)], k=4)
        pipeline.materialize(old)  # 4 entries, cache exactly full
        new = self._requests(clouds[4:], [ApproxSetting(0, None)], k=4)
        report = pipeline.materialize(old + new)  # working set = 8
        assert report.already_cached == 4 and report.computed == 4
        misses_before = session.results.stats.misses
        for req in old + new:
            pipeline.query_with_counts(
                req.points, req.queries, req.radius, req.max_neighbors,
                req.setting, cache_key=req.cache_key,
            )
        assert session.results.stats.misses == misses_before

    def test_uncacheable_requests_skipped(self, rng):
        cloud = rng.normal(size=(64, 3))
        req = MaterializeRequest(
            points=cloud, queries=cloud[:8], radius=0.3, max_neighbors=4,
            setting=ApproxSetting(), cache_key=None,
        )
        report = ApproximationPipeline().materialize([req])
        assert report.scheduled == 0 and report.computed == 0

    def test_process_fanout_fills_identical_cache(self, rng):
        clouds = [rng.normal(size=(96, 3)) for _ in range(3)]
        settings = [ApproxSetting(0, None), ApproxSetting(3, 6)]
        requests = self._requests(clouds, settings)

        serial = ApproximationPipeline()
        materialize_requests(serial, requests)
        fanned = ApproximationPipeline()
        runner = SweepRunner(num_workers=2, backend="process")
        materialize_requests(fanned, requests, runner=runner)

        a = serial.session.results._data
        b = fanned.session.results._data
        assert set(a) == set(b)
        for key in a:
            np.testing.assert_array_equal(a[key][0], b[key][0])
            np.testing.assert_array_equal(a[key][1], b[key][1])

    def test_train_with_process_runner_identical_losses(self, cls_data):
        def make():
            model = PointNetPPClassifier(cls_data.num_classes, np.random.default_rng(3))
            return ClassificationTrainer(model, MIXED, lr=2e-3, seed=7)

        serial = make().train(cls_data, epochs=1).epoch_losses
        fanned = make().train(
            cls_data, epochs=1, runner=SweepRunner(num_workers=2, backend="process")
        ).epoch_losses
        assert fanned == serial

    def test_evaluate_settings_matches_individual_evaluates(self, cls_data):
        model = PointNetPPClassifier(cls_data.num_classes, np.random.default_rng(1))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()), seed=2)
        trainer.train(cls_data, epochs=1)
        settings = [ApproxSetting(0, None), ApproxSetting(2, 5), ApproxSetting(3, None)]
        swept = trainer.evaluate_settings(cls_data, settings)
        assert list(swept) == settings  # input order preserved
        for setting in settings:
            assert swept[setting] == trainer.evaluate(cls_data, setting)

    def test_evaluate_settings_process_runner_identical(self, cls_data):
        # The fanned path (grid materialization + pooled scoring) must
        # score exactly like the serial path.
        model = PointNetPPClassifier(cls_data.num_classes, np.random.default_rng(1))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()), seed=2)
        trainer.train(cls_data, epochs=1)
        settings = [ApproxSetting(0, None), ApproxSetting(2, 5)]
        serial = trainer.evaluate_settings(cls_data, settings)
        fanned = trainer.evaluate_settings(
            cls_data, settings, runner=SweepRunner(num_workers=2, backend="process")
        )
        assert fanned == serial
