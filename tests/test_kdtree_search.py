"""Exact searches must agree with brute force; traversal stats must be sane."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdtree import (
    TraversalStats,
    ball_query,
    brute_ball_query,
    brute_knn_search,
    brute_radius_search,
    build_kdtree,
    knn_search,
    radius_search,
)


def random_points(n, seed=0):
    return np.random.default_rng(seed).normal(size=(n, 3))


class TestRadiusSearch:
    def test_matches_brute_force(self):
        pts = random_points(200, seed=1)
        tree = build_kdtree(pts)
        rng = np.random.default_rng(2)
        for _ in range(20):
            q = rng.normal(size=3)
            got = sorted(radius_search(tree, q, radius=0.5))
            want = sorted(brute_radius_search(pts, q, 0.5).tolist())
            assert got == want

    def test_rejects_nonpositive_radius(self):
        tree = build_kdtree(random_points(10))
        with pytest.raises(ValueError):
            radius_search(tree, np.zeros(3), radius=0.0)

    def test_max_neighbors_cap(self):
        pts = random_points(100, seed=3)
        tree = build_kdtree(pts)
        got = radius_search(tree, pts.mean(axis=0), radius=10.0, max_neighbors=5)
        assert len(got) == 5

    def test_stats_counted(self):
        pts = random_points(100, seed=4)
        tree = build_kdtree(pts)
        stats = TraversalStats()
        radius_search(tree, np.zeros(3), radius=0.3, stats=stats)
        assert stats.queries == 1
        assert 0 < stats.nodes_visited <= 100
        assert stats.stack_pops == stats.nodes_visited
        # Pruning plus visiting plus leftover stack covers the whole tree.
        assert stats.nodes_visited + stats.nodes_pruned <= 100

    def test_trace_recording(self):
        pts = random_points(50, seed=5)
        tree = build_kdtree(pts)
        stats = TraversalStats()
        radius_search(tree, np.zeros(3), radius=1.0, stats=stats, record_trace=True)
        assert len(stats.visit_trace) == stats.nodes_visited
        assert stats.visit_trace[0] == tree.root

    def test_pruning_happens_for_small_radius(self):
        pts = random_points(500, seed=6)
        tree = build_kdtree(pts)
        stats = TraversalStats()
        radius_search(tree, pts[0], radius=0.05, stats=stats)
        assert stats.nodes_visited < 500
        assert stats.nodes_pruned > 0


class TestKnnSearch:
    def test_matches_brute_force(self):
        pts = random_points(150, seed=7)
        tree = build_kdtree(pts)
        rng = np.random.default_rng(8)
        for _ in range(20):
            q = rng.normal(size=3)
            got = knn_search(tree, q, k=7)
            want = brute_knn_search(pts, q, 7).tolist()
            # Distances must match exactly even if ties reorder ids.
            d_got = sorted(((pts[i] - q) ** 2).sum() for i in got)
            d_want = sorted(((pts[i] - q) ** 2).sum() for i in want)
            assert np.allclose(d_got, d_want)

    def test_k_larger_than_n(self):
        pts = random_points(5, seed=9)
        tree = build_kdtree(pts)
        got = knn_search(tree, np.zeros(3), k=10)
        assert sorted(got) == list(range(5))

    def test_rejects_bad_k(self):
        tree = build_kdtree(random_points(5))
        with pytest.raises(ValueError):
            knn_search(tree, np.zeros(3), k=0)

    def test_nearest_first_ordering(self):
        pts = random_points(60, seed=10)
        tree = build_kdtree(pts)
        q = np.array([0.1, -0.2, 0.3])
        got = knn_search(tree, q, k=5)
        dists = [((pts[i] - q) ** 2).sum() for i in got]
        assert dists == sorted(dists)


class TestBallQuery:
    def test_matches_brute_force(self):
        pts = random_points(120, seed=11)
        tree = build_kdtree(pts)
        queries = random_points(10, seed=12)
        idx_t, cnt_t = ball_query(tree, queries, radius=0.6, max_neighbors=8)
        idx_b, cnt_b = brute_ball_query(pts, queries, radius=0.6, max_neighbors=8)
        assert np.array_equal(cnt_t, cnt_b)
        for i in range(10):
            # Set equality over the true-hit region (tree order may differ).
            k = cnt_t[i]
            assert set(idx_t[i, :k]) == set(idx_b[i, :k])

    def test_padding_replicates_first(self):
        pts = np.array([[0, 0, 0], [5, 5, 5], [6, 6, 6]], dtype=float)
        tree = build_kdtree(pts)
        idx, cnt = ball_query(tree, np.array([[0.0, 0.0, 0.0]]), 0.5, 4)
        assert cnt[0] == 1
        assert (idx[0] == idx[0, 0]).all()

    def test_empty_result_falls_back_to_nearest(self):
        pts = np.array([[10, 10, 10], [11, 11, 11]], dtype=float)
        tree = build_kdtree(pts)
        idx, cnt = ball_query(tree, np.array([[0.0, 0.0, 0.0]]), 0.1, 3)
        assert cnt[0] == 0
        assert (idx[0] == 0).all()  # point 0 is nearest

    def test_shapes(self):
        pts = random_points(40, seed=13)
        tree = build_kdtree(pts)
        idx, cnt = ball_query(tree, random_points(6, seed=14), 0.8, 16)
        assert idx.shape == (6, 16)
        assert cnt.shape == (6,)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31),
    radius=st.floats(min_value=0.05, max_value=3.0),
)
def test_property_radius_agrees_with_brute(n, seed, radius):
    pts = random_points(n, seed=seed)
    tree = build_kdtree(pts)
    q = np.random.default_rng(seed + 1).normal(size=3)
    got = sorted(radius_search(tree, q, radius))
    want = sorted(brute_radius_search(pts, q, radius).tolist())
    assert got == want


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31),
    k=st.integers(min_value=1, max_value=10),
)
def test_property_knn_distance_agrees_with_brute(n, seed, k):
    pts = random_points(n, seed=seed)
    tree = build_kdtree(pts)
    q = np.random.default_rng(seed + 1).normal(size=3)
    got = knn_search(tree, q, k)
    want = brute_knn_search(pts, q, k)
    d = lambda ids: sorted(float(((pts[i] - q) ** 2).sum()) for i in ids)
    assert np.allclose(d(got), d(want))
