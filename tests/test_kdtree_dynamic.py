"""DynamicKdTree equivalence + unit suite.

The contract under test: on every frame, the incremental overlay's query
results are **bit-identical** to rebuilding a frozen-reference tree from
scratch over the alive slots (:func:`repro.kdtree.dynamic_reference
.scratch_dynamic_query`).  The degenerate-mutation tests walk the index
through the sequences most likely to break an incremental structure —
empty/singleton boundaries, duplicate coordinates, full-churn frames,
interleaved bursts — with the parity pin asserted after every step.
"""

import numpy as np
import pytest

from repro.kdtree import (
    DirtyRegionDigest,
    DynamicKdTree,
    DynamicStats,
    scratch_dynamic_query,
)
from repro.runtime.treebuild import DynamicSplitLayout


def assert_parity(dyn, queries, radius, k):
    """Pin dyn.query against the rebuild-from-scratch reference."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    got_idx, got_cnt = dyn.query(queries, radius, k)
    coords, alive = dyn.state()
    m = len(queries)
    want_idx, want_cnt = scratch_dynamic_query(
        coords, alive, queries, np.full(m, radius), np.full(m, k)
    )
    np.testing.assert_array_equal(got_idx, want_idx)
    np.testing.assert_array_equal(got_cnt, want_cnt)


def grid_queries(rng, lo=-2.0, hi=2.0, m=12):
    return rng.uniform(lo, hi, size=(m, 3))


# ----------------------------------------------------------------------
# Degenerate mutation sequences (satellite: the breakage-prone shapes)
# ----------------------------------------------------------------------

class TestDegenerateSequences:
    def test_query_on_empty_tree(self):
        dyn = DynamicKdTree()
        idx, cnt = dyn.query(np.zeros((2, 3)), 1.0, 4)
        np.testing.assert_array_equal(idx, np.full((2, 4), -1))
        np.testing.assert_array_equal(cnt, np.zeros(2, dtype=np.int64))
        assert_parity(dyn, np.zeros((2, 3)), 1.0, 4)

    def test_insert_into_empty_tree(self):
        dyn = DynamicKdTree()
        slots = dyn.insert(np.array([[0.1, 0.2, 0.3]]))
        np.testing.assert_array_equal(slots, [0])
        assert len(dyn) == 1
        assert_parity(dyn, np.zeros((3, 3)), 1.0, 4)

    def test_insert_into_singleton_tree(self):
        dyn = DynamicKdTree(np.array([[0.0, 0.0, 0.0]]))
        dyn.insert(np.array([[0.05, 0.0, 0.0], [3.0, 3.0, 3.0]]))
        assert_parity(dyn, np.zeros((4, 3)), 0.5, 4)

    def test_remove_down_to_empty_and_refill(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(9, 3))
        dyn = DynamicKdTree(pts)
        queries = grid_queries(rng)
        # Peel off points one at a time; parity must hold at every size
        # including the empty cloud.
        for slot in range(9):
            dyn.remove([slot])
            assert_parity(dyn, queries, 1.5, 4)
        assert len(dyn) == 0
        idx, cnt = dyn.query(queries, 1.5, 4)
        assert (cnt == 0).all() and (idx == -1).all()
        # Refilling an emptied index must behave like a fresh one.
        dyn.insert(rng.normal(size=(5, 3)))
        assert_parity(dyn, queries, 1.5, 4)

    def test_duplicate_coordinate_inserts_tie_route_by_slot(self):
        """Coincident points: ties in d2 must break by ascending slot id."""
        dyn = DynamicKdTree(np.zeros((1, 3)))
        dyn.insert(np.zeros((4, 3)))  # four more copies of the same point
        dyn.refresh(flush=True)
        idx, cnt = dyn.query(np.zeros((1, 3)), 0.5, 3)
        np.testing.assert_array_equal(idx, [[0, 1, 2]])
        np.testing.assert_array_equal(cnt, [3])
        assert_parity(dyn, np.zeros((2, 3)), 0.5, 3)
        # Removing the middle copy shifts the tie order deterministically.
        dyn.remove([1])
        idx, cnt = dyn.query(np.zeros((1, 3)), 0.5, 3)
        np.testing.assert_array_equal(idx, [[0, 2, 3]])
        assert_parity(dyn, np.zeros((2, 3)), 0.5, 3)

    def test_full_churn_frame(self):
        """Remove every point and insert a full replacement in one frame."""
        rng = np.random.default_rng(1)
        dyn = DynamicKdTree(rng.normal(size=(40, 3)))
        queries = grid_queries(rng)
        for _ in range(4):
            dyn.remove(dyn.alive_slots())
            dyn.insert(rng.normal(size=(40, 3)))
            assert_parity(dyn, queries, 1.0, 8)

    def test_interleaved_insert_remove_bursts(self):
        rng = np.random.default_rng(2)
        dyn = DynamicKdTree(rng.normal(size=(30, 3)), buffer_cap=8, max_segments=3)
        queries = grid_queries(rng)
        for frame in range(12):
            burst = rng.integers(1, 6)
            for _ in range(burst):
                if rng.random() < 0.5 and len(dyn) > 2:
                    alive = dyn.alive_slots()
                    take = rng.choice(alive, size=min(3, len(alive)), replace=False)
                    dyn.remove(take)
                else:
                    dyn.insert(rng.normal(size=(rng.integers(1, 5), 3)))
            assert_parity(dyn, queries, 1.2, 6)

    def test_randomized_churn_parity(self):
        """30 frames of mixed churn with tight maintenance knobs, so the
        suite exercises spills, threshold rebuilds, and merges."""
        rng = np.random.default_rng(3)
        dyn = DynamicKdTree(
            rng.normal(size=(120, 3)),
            buffer_cap=16,
            max_segments=3,
            rebuild_fraction=0.2,
        )
        for frame in range(30):
            alive = dyn.alive_slots()
            k = max(1, int(0.1 * len(alive)))
            dyn.remove(rng.choice(alive, size=k, replace=False))
            dyn.insert(rng.normal(size=(k, 3)))
            assert_parity(dyn, grid_queries(rng), 1.0, 8)


# ----------------------------------------------------------------------
# Merged (serving-kernel) queries
# ----------------------------------------------------------------------

class TestMergedQueries:
    def test_merged_matches_per_request_query(self):
        rng = np.random.default_rng(4)
        dyn = DynamicKdTree(rng.normal(size=(80, 3)), buffer_cap=8)
        dyn.remove(rng.choice(80, size=10, replace=False))
        dyn.insert(rng.normal(size=(15, 3)))
        batches = [grid_queries(rng, m=m) for m in (3, 5, 2)]
        radii_req = [0.8, 1.2, 1.5]
        ks = [4, 8, 2]
        merged_q = np.concatenate(batches)
        radii = np.concatenate(
            [np.full(len(b), r) for b, r in zip(batches, radii_req)]
        )
        ids = np.concatenate(
            [np.full(len(b), i, dtype=np.int64) for i, b in enumerate(batches)]
        )
        merged = dyn.query_merged(merged_q, radii, ids, ks)
        assert len(merged) == 3
        for (mi, mc), batch, r, k in zip(merged, batches, radii_req, ks):
            si, sc = dyn.query(batch, r, k)
            np.testing.assert_array_equal(mi, si[:, :k])
            np.testing.assert_array_equal(mc, sc)

    def test_merged_validation(self):
        dyn = DynamicKdTree(np.zeros((1, 3)))
        q = np.zeros((2, 3))
        with pytest.raises(ValueError, match="positive"):
            dyn.query_merged(q, np.array([0.5, -1.0]), np.array([0, 1]), [4, 4])
        with pytest.raises(ValueError, match="grouped"):
            dyn.query_merged(q, np.array([0.5, 0.5]), np.array([1, 0]), [4, 4])
        with pytest.raises(ValueError, match="one radius per query"):
            dyn.query_merged(q, np.array([0.5]), np.array([0, 0]), [4])


# ----------------------------------------------------------------------
# Dirty-region digest
# ----------------------------------------------------------------------

class TestDigest:
    def test_digest_is_pure_function_of_state(self):
        """Segmentation, maintenance mode, and history must not leak in."""
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(50, 3))
        a = DynamicKdTree(pts, buffer_cap=4, max_segments=2)
        b = DynamicKdTree(pts, maintenance="rebuild")
        c = DynamicKdTree(pts, maintenance="state")
        assert a.digest == b.digest == c.digest
        extra = rng.normal(size=(3, 3))
        for dyn in (a, b, c):
            dyn.remove([1, 7])
            dyn.insert(extra)
            dyn.refresh(flush=True)
        assert a.digest == b.digest == c.digest
        # And a replica rebuilt from the snapshot agrees too.
        replica = DynamicKdTree.from_state(*a.state())
        assert replica.digest == a.digest

    def test_mutations_change_the_digest(self):
        dyn = DynamicKdTree(np.arange(30.0).reshape(10, 3))
        d0 = dyn.digest
        dyn.remove([4])
        d1 = dyn.digest
        assert d1 != d0
        dyn.insert(np.array([[9.0, 9.0, 9.0]]))
        assert dyn.digest != d1

    def test_dirty_region_rehash_is_local(self):
        """A one-chunk mutation on a many-chunk cloud re-hashes one chunk."""
        rng = np.random.default_rng(6)
        dyn = DynamicKdTree(rng.normal(size=(4096, 3)), digest_chunk=256)
        dyn.digest  # settle: every chunk hashed once
        before = dyn.digest_chunks_hashed
        assert before == 16
        dyn.remove([100])  # slot 100 lives in chunk 0 only
        dyn.digest
        assert dyn.digest_chunks_hashed == before + 1

    def test_digest_distinguishes_alive_bits(self):
        """Same coordinates, different tombstones -> different digest."""
        pts = np.arange(12.0).reshape(4, 3)
        a = DynamicKdTree(pts)
        b = DynamicKdTree(pts)
        b.remove([2])
        assert a.digest != b.digest

    def test_digest_chunk_validation(self):
        with pytest.raises(ValueError):
            DirtyRegionDigest(0)


# ----------------------------------------------------------------------
# Replicas (the worker-recovery path)
# ----------------------------------------------------------------------

class TestFromState:
    def test_replica_is_indistinguishable(self):
        rng = np.random.default_rng(7)
        dyn = DynamicKdTree(rng.normal(size=(60, 3)), buffer_cap=8)
        dyn.remove(rng.choice(60, size=8, replace=False))
        dyn.insert(rng.normal(size=(10, 3)))
        replica = DynamicKdTree.from_state(*dyn.state())
        assert replica.digest == dyn.digest
        assert replica.num_slots == dyn.num_slots
        queries = grid_queries(rng)
        np.testing.assert_array_equal(
            dyn.query(queries, 1.0, 6)[0], replica.query(queries, 1.0, 6)[0]
        )
        # Further identical mutations keep slot ids aligned.
        a = dyn.insert(np.ones((2, 3)))
        b = replica.insert(np.ones((2, 3)))
        np.testing.assert_array_equal(a, b)
        assert dyn.digest == replica.digest

    def test_from_state_shape_mismatch(self):
        with pytest.raises(ValueError, match="same slots"):
            DynamicKdTree.from_state(np.zeros((3, 3)), np.ones(2, dtype=bool))


# ----------------------------------------------------------------------
# DRAM layout refresh (core/split_tree consumers)
# ----------------------------------------------------------------------

class TestDynamicSplitLayout:
    def test_refresh_lays_out_only_new_segments(self):
        rng = np.random.default_rng(8)
        dyn = DynamicKdTree(rng.normal(size=(200, 3)), buffer_cap=16)
        layout = DynamicSplitLayout(dyn, top_height=3)
        built0 = layout.layouts_built
        assert built0 == dyn.num_segments == layout.num_blocks
        # An untouched refresh is free.
        layout.refresh()
        assert layout.layouts_built == built0
        # Spill a new segment: exactly the new block is laid out.
        old_ids = set(dyn.segment_trees())
        dyn.insert(rng.normal(size=(20, 3)))
        dyn.refresh(flush=True)
        new_ids = set(dyn.segment_trees())
        layout.refresh()
        assert layout.num_blocks == dyn.num_segments
        assert layout.layouts_built == built0 + len(new_ids - old_ids)
        assert layout.total_bytes > 0

    def test_addresses_cover_every_segment(self):
        rng = np.random.default_rng(9)
        dyn = DynamicKdTree(rng.normal(size=(100, 3)), buffer_cap=8)
        dyn.insert(rng.normal(size=(12, 3)))
        dyn.refresh(flush=True)
        layout = DynamicSplitLayout(dyn, top_height=2)
        seen = set()
        for sid in dyn.segment_trees():
            addr = layout.dram_address_of(sid, 0)
            assert addr not in seen
            seen.add(addr)

    def test_top_height_validation(self):
        dyn = DynamicKdTree(np.zeros((2, 3)) + np.arange(2)[:, None])
        with pytest.raises(ValueError):
            DynamicSplitLayout(dyn, top_height=-1)


# ----------------------------------------------------------------------
# Error handling and stats
# ----------------------------------------------------------------------

class TestErrorsAndStats:
    def test_remove_rejects_bad_slots(self):
        dyn = DynamicKdTree(np.arange(9.0).reshape(3, 3))
        with pytest.raises(ValueError, match="out of range"):
            dyn.remove([5])
        with pytest.raises(ValueError, match="duplicate"):
            dyn.remove([1, 1])
        dyn.remove([1])
        with pytest.raises(ValueError, match="already removed"):
            dyn.remove([1])

    def test_insert_rejects_bad_points(self):
        dyn = DynamicKdTree()
        with pytest.raises(ValueError, match=r"\(N, 3\)"):
            dyn.insert(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="finite"):
            dyn.insert(np.array([[np.nan, 0.0, 0.0]]))

    def test_state_mode_rejects_queries(self):
        dyn = DynamicKdTree(np.zeros((2, 3)), maintenance="state")
        with pytest.raises(RuntimeError, match="state-only"):
            dyn.query(np.zeros((1, 3)), 1.0, 4)
        assert dyn.num_segments == 0  # no index is ever built

    def test_query_settings_validation(self):
        dyn = DynamicKdTree(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            dyn.query(np.zeros((1, 3)), -1.0, 4)
        with pytest.raises(ValueError):
            dyn.query(np.zeros((1, 3)), 1.0, 0)
        with pytest.raises(ValueError, match="finite"):
            dyn.query(np.array([[np.inf, 0.0, 0.0]]), 1.0, 4)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DynamicKdTree(builder="gpu")
        with pytest.raises(ValueError):
            DynamicKdTree(maintenance="magic")
        with pytest.raises(ValueError):
            DynamicKdTree(buffer_cap=0)
        with pytest.raises(ValueError):
            DynamicKdTree(rebuild_fraction=0.0)

    def test_incremental_does_less_build_work_than_rebuild(self):
        rng = np.random.default_rng(10)
        pts = rng.normal(size=(300, 3))
        inc = DynamicKdTree(pts, buffer_cap=64)
        reb = DynamicKdTree(pts, maintenance="rebuild")
        queries = grid_queries(rng, m=4)
        for _ in range(10):
            alive = inc.alive_slots()
            take = rng.choice(alive, size=5, replace=False)
            new = rng.normal(size=(5, 3))
            for dyn in (inc, reb):
                dyn.remove(take)
                dyn.insert(new)
                dyn.query(queries, 1.0, 4)
        assert isinstance(inc.stats, DynamicStats)
        assert inc.stats.points_indexed < reb.stats.points_indexed

    def test_reference_builder_matches_vector_builder(self):
        rng = np.random.default_rng(11)
        pts = rng.normal(size=(70, 3))
        a = DynamicKdTree(pts, builder="vector")
        b = DynamicKdTree(pts, builder="reference")
        queries = grid_queries(rng)
        for dyn in (a, b):
            dyn.remove([3, 9])
            dyn.insert(np.ones((2, 3)))
        np.testing.assert_array_equal(
            a.query(queries, 1.0, 5)[0], b.query(queries, 1.0, 5)[0]
        )
