"""Unit and property tests for K-d tree construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdtree import KdTree, NODE_BYTES, build_kdtree


def random_points(n, seed=0):
    return np.random.default_rng(seed).normal(size=(n, 3))


class TestBuild:
    def test_single_point(self):
        tree = build_kdtree(np.array([[1.0, 2.0, 3.0]]))
        assert tree.num_nodes == 1
        assert tree.height == 1
        assert tree.children(0) == (-1, -1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_kdtree(np.empty((0, 3)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            build_kdtree(np.zeros((4, 2)))

    def test_rejects_bad_rule(self):
        with pytest.raises(ValueError):
            build_kdtree(random_points(4), split_rule="median-of-medians")

    def test_balanced_height(self):
        for n in (1, 2, 3, 7, 8, 100, 255, 256):
            tree = build_kdtree(random_points(n, seed=n))
            expected = int(np.ceil(np.log2(n + 1)))
            assert tree.height == expected, f"n={n}"

    def test_all_points_present_once(self):
        tree = build_kdtree(random_points(73))
        assert sorted(tree.point_id.tolist()) == list(range(73))

    def test_level_order_numbering(self):
        tree = build_kdtree(random_points(64))
        # Level-order: depth is non-decreasing with node id.
        assert (np.diff(tree.depth) >= 0).all()

    def test_root_subtree_is_whole_tree(self):
        tree = build_kdtree(random_points(50))
        assert tree.subtree_size[0] == 50
        assert len(tree.subtree_nodes(0)) == 50

    def test_node_addresses(self):
        tree = build_kdtree(random_points(10))
        assert tree.node_address(0) == 0
        assert tree.node_address(3) == 3 * NODE_BYTES

    def test_invariants_validate(self):
        tree = build_kdtree(random_points(128, seed=5))
        tree.validate()

    def test_cycle_rule_dims(self):
        tree = build_kdtree(random_points(15), split_rule="cycle")
        for node in range(tree.num_nodes):
            assert tree.split_dim[node] == tree.depth[node] % 3

    def test_nodes_at_depth(self):
        tree = build_kdtree(random_points(15))
        # 15 points build a perfect tree: 1, 2, 4, 8 nodes per level.
        assert [len(tree.nodes_at_depth(d)) for d in range(4)] == [1, 2, 4, 8]

    def test_duplicate_points_ok(self):
        pts = np.zeros((9, 3))
        tree = build_kdtree(pts)
        tree.validate()
        assert tree.num_nodes == 9


class TestValidate:
    """The Euler-interval rewrite of ``validate`` (the old per-node
    subtree walks were O(N^2)) must still catch every corruption class."""

    def _tree(self, n=64, seed=7):
        return build_kdtree(random_points(n, seed=seed))

    def test_full_size_tree_is_fast(self):
        # ~10k nodes took minutes under the quadratic walk; now trivial.
        build_kdtree(random_points(10_000, seed=1)).validate()

    def test_detects_duplicated_point_id(self):
        tree = self._tree()
        tree.point_id[0] = tree.point_id[1]
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_wrong_depth(self):
        tree = self._tree()
        tree.depth[tree.left[0]] += 1
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_wrong_subtree_size(self):
        tree = self._tree()
        tree.subtree_size[0] -= 1
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_split_plane_violation(self):
        tree = self._tree()
        node = 0
        assert tree.left[node] >= 0 and tree.right[node] >= 0
        tree.split_dim[node] = (tree.split_dim[node] + 1) % 3
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_shared_child(self):
        tree = self._tree()
        leaves = np.nonzero((tree.left < 0) & (tree.right < 0))[0]
        tree.left[leaves[0]] = tree.root
        with pytest.raises(AssertionError):
            tree.validate()

    def test_does_not_pollute_euler_cache(self):
        tree = self._tree()
        tree.validate()
        assert tree.tin is None and tree.tout is None


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=512),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_structural_invariants(n, seed):
    """Any random cloud builds a valid, balanced tree containing all points."""
    tree = build_kdtree(random_points(n, seed=seed))
    tree.validate()
    assert tree.height == int(np.ceil(np.log2(n + 1)))
