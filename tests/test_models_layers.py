"""Tests for point-cloud network building blocks."""

import numpy as np
import pytest

from repro.core import ApproxSetting, ApproximationPipeline
from repro.models import (
    FeaturePropagation,
    GlobalMaxPool,
    SetAbstraction,
    farthest_point_sampling,
)
from repro.nn import Tensor


def rng():
    return np.random.default_rng(0)


class TestFPS:
    def test_first_is_start(self):
        pts = rng().normal(size=(30, 3))
        idx = farthest_point_sampling(pts, 5, start=3)
        assert idx[0] == 3

    def test_no_duplicates(self):
        pts = rng().normal(size=(50, 3))
        idx = farthest_point_sampling(pts, 20)
        assert len(set(idx.tolist())) == 20

    def test_deterministic(self):
        pts = rng().normal(size=(40, 3))
        assert np.array_equal(
            farthest_point_sampling(pts, 10), farthest_point_sampling(pts, 10)
        )

    def test_spreads_points(self):
        # FPS of a two-cluster cloud must pick from both clusters early.
        a = rng().normal(loc=-5, scale=0.1, size=(20, 3))
        b = rng().normal(loc=5, scale=0.1, size=(20, 3))
        pts = np.concatenate([a, b])
        idx = farthest_point_sampling(pts, 2)
        assert (idx[0] < 20) != (idx[1] < 20)

    def test_validation(self):
        pts = rng().normal(size=(10, 3))
        with pytest.raises(ValueError):
            farthest_point_sampling(pts, 0)
        with pytest.raises(ValueError):
            farthest_point_sampling(pts, 11)


class TestSetAbstraction:
    def make(self, in_features=0, num_centroids=8):
        return SetAbstraction(
            num_centroids, 0.5, 4, in_features, (16, 16),
            ApproximationPipeline(), rng(),
        )

    def test_output_shapes(self):
        sa = self.make()
        pts = rng().normal(size=(32, 3))
        centroids, feats = sa(pts, None, ApproxSetting())
        assert centroids.shape == (8, 3)
        assert feats.shape == (8, 16)

    def test_group_all(self):
        sa = SetAbstraction(None, 1.0, 4, 0, (16,), ApproximationPipeline(), rng())
        pts = rng().normal(size=(32, 3))
        centroids, feats = sa(pts, None, ApproxSetting())
        assert centroids.shape == (1, 3)
        assert feats.shape == (1, 16)

    def test_features_required_when_declared(self):
        sa = self.make(in_features=8)
        with pytest.raises(ValueError):
            sa(rng().normal(size=(32, 3)), None, ApproxSetting())

    def test_gradient_flows_from_pooled_output(self):
        sa = self.make()
        pts = rng().normal(size=(32, 3))
        _, feats = sa(pts, None, ApproxSetting())
        feats.sum().backward()
        assert any(p.grad is not None for p in sa.parameters())

    def test_approximation_changes_output(self):
        sa = SetAbstraction(
            16, 1.5, 16, 0, (16, 16), ApproximationPipeline(), rng()
        )
        pts = rng().normal(size=(128, 3))
        _, exact = sa(pts, None, ApproxSetting(0, None))
        _, approx = sa(pts, None, ApproxSetting(5, 1))
        assert not np.allclose(exact.data, approx.data)

    def test_cache_reuse_consistent(self):
        pipe = ApproximationPipeline()
        sa = SetAbstraction(8, 0.5, 4, 0, (16,), pipe, rng())
        pts = rng().normal(size=(32, 3))
        _, a = sa(pts, None, ApproxSetting(2, 3), cache_key=("s", 1))
        _, b = sa(pts, None, ApproxSetting(2, 3), cache_key=("s", 1))
        assert np.allclose(a.data, b.data)


class TestFeaturePropagation:
    def test_shapes_and_gradient(self):
        fp = FeaturePropagation(16, 8, (32,), rng())
        dense = rng().normal(size=(20, 3))
        coarse = rng().normal(size=(5, 3))
        cf = Tensor(rng().normal(size=(5, 16)), requires_grad=True)
        skip = Tensor(rng().normal(size=(20, 8)))
        out = fp(dense, coarse, cf, skip)
        assert out.shape == (20, 32)
        out.sum().backward()
        assert cf.grad is not None

    def test_exact_at_coarse_points(self):
        # Interpolating back onto the coarse points themselves must return
        # (nearly) the coarse features: nearest neighbor at distance ~0
        # dominates the inverse-distance weights.
        fp = FeaturePropagation(4, 0, (4,), rng(), k=3)
        coarse = rng().normal(size=(6, 3))
        cf = Tensor(rng().normal(size=(6, 4)))
        idx = np.empty((6, 3), dtype=int)
        # Direct check of the interpolation weights via forward behaviour:
        out_same = fp(coarse, coarse, cf, None)
        out_far = fp(coarse + 10.0, coarse, cf, None)
        assert not np.allclose(out_same.data, out_far.data)

    def test_requires_skip_when_declared(self):
        fp = FeaturePropagation(4, 4, (8,), rng())
        with pytest.raises(ValueError):
            fp(rng().normal(size=(5, 3)), rng().normal(size=(3, 3)),
               Tensor(np.ones((3, 4))), None)

    def test_validation(self):
        with pytest.raises(ValueError):
            FeaturePropagation(4, 0, (8,), rng(), k=0)


class TestGlobalMaxPool:
    def test_shape_and_grad(self):
        pool = GlobalMaxPool()
        x = Tensor(rng().normal(size=(10, 6)), requires_grad=True)
        out = pool(x)
        assert out.shape == (1, 6)
        out.sum().backward()
        assert (x.grad.sum(axis=0) == 1.0).all()
