"""Tests for the approximate neighbor search (ANS) and its lockstep sim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ApproxSetting, TreeBufferBanking, approximate_ball_query
from repro.kdtree import ball_query, build_kdtree


def make_problem(n=200, m=20, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3))
    queries = rng.normal(size=(m, 3))
    return points, queries, build_kdtree(points)


class TestExactEquivalence:
    def test_baseline_setting_matches_exact(self):
        points, queries, tree = make_problem()
        exact_idx, exact_cnt = ball_query(tree, queries, 0.5, 8)
        idx, cnt, report = approximate_ball_query(
            tree, queries, 0.5, 8, ApproxSetting(0, None)
        )
        assert np.array_equal(cnt, exact_cnt)
        for i in range(len(queries)):
            k = cnt[i]
            assert set(idx[i, :k]) == set(exact_idx[i, :k])

    def test_baseline_no_skips(self):
        points, queries, tree = make_problem(seed=1)
        _, _, report = approximate_ball_query(
            tree, queries, 0.5, 8, ApproxSetting(0, None)
        )
        assert report.nodes_skipped == 0
        assert report.subtrees_loaded == 1


class TestSplitTreeApproximation:
    def test_results_are_subset_of_exact(self):
        points, queries, tree = make_problem(seed=2)
        exact_idx, exact_cnt = ball_query(tree, queries, 0.6, 16)
        idx, cnt, _ = approximate_ball_query(
            tree, queries, 0.6, 16, ApproxSetting(3, None)
        )
        for i in range(len(queries)):
            exact_set = set(exact_idx[i, : exact_cnt[i]])
            approx_set = set(idx[i, : cnt[i]])
            assert approx_set <= exact_set
            assert cnt[i] <= exact_cnt[i]

    def test_taller_top_tree_visits_fewer_nodes(self):
        points, queries, tree = make_problem(n=500, m=40, seed=3)
        visits = []
        for ht in (0, 2, 4, 6):
            _, _, report = approximate_ball_query(
                tree, queries, 0.7, 16, ApproxSetting(ht, None)
            )
            visits.append(report.nodes_visited)
        # Larger h_t restricts backtracking: node visits must not grow.
        assert all(a >= b for a, b in zip(visits, visits[1:]))

    def test_queue_occupancy_recorded(self):
        points, queries, tree = make_problem(seed=4)
        _, _, report = approximate_ball_query(
            tree, queries, 0.5, 8, ApproxSetting(2, None)
        )
        assert sum(report.queue_occupancy.values()) == len(queries)
        assert report.subtrees_loaded == len(report.queue_occupancy)

    def test_every_row_padded_and_valid(self):
        points, queries, tree = make_problem(seed=5)
        idx, cnt, _ = approximate_ball_query(
            tree, queries, 0.3, 8, ApproxSetting(4, None)
        )
        assert idx.shape == (len(queries), 8)
        assert (idx >= 0).all() and (idx < len(points)).all()

    def test_setting_scaled_to_short_tree(self):
        points = np.random.default_rng(6).normal(size=(7, 3))
        tree = build_kdtree(points)  # height 3
        idx, cnt, _ = approximate_ball_query(
            tree, points[:3], 0.5, 4, ApproxSetting(10, 20)
        )
        assert idx.shape == (3, 4)


class TestElision:
    def test_elision_skips_nodes(self):
        points, queries, tree = make_problem(n=500, m=64, seed=7)
        _, _, no_elide = approximate_ball_query(
            tree, queries, 0.7, 16, ApproxSetting(2, None)
        )
        _, _, elide = approximate_ball_query(
            tree, queries, 0.7, 16, ApproxSetting(2, 3), num_pes=4
        )
        assert no_elide.nodes_skipped == 0
        assert elide.nodes_skipped > 0
        assert elide.nodes_visited < no_elide.nodes_visited

    def test_lower_elision_height_skips_more(self):
        points, queries, tree = make_problem(n=500, m=64, seed=8)
        skips = []
        for he in (3, 5, 7, 9):
            _, _, report = approximate_ball_query(
                tree, queries, 0.7, 16, ApproxSetting(2, he), num_pes=4
            )
            skips.append(report.nodes_skipped)
        assert all(a >= b for a, b in zip(skips, skips[1:]))

    def test_elision_results_subset_of_ans(self):
        points, queries, tree = make_problem(n=300, m=32, seed=9)
        idx_a, cnt_a, _ = approximate_ball_query(
            tree, queries, 0.6, 16, ApproxSetting(2, None)
        )
        idx_e, cnt_e, _ = approximate_ball_query(
            tree, queries, 0.6, 16, ApproxSetting(2, 4), num_pes=4
        )
        for i in range(len(queries)):
            assert set(idx_e[i, : cnt_e[i]]) <= set(idx_a[i, : cnt_a[i]])

    def test_elision_records_conflicts(self):
        points, queries, tree = make_problem(n=500, m=64, seed=10)
        _, _, report = approximate_ball_query(
            tree, queries, 0.7, 16, ApproxSetting(2, 4), num_pes=4
        )
        assert report.tree_sram.accesses > 0
        assert report.tree_sram.conflicted > 0
        assert report.tree_sram.elided <= report.tree_sram.conflicted
        assert report.lockstep_cycles > 0

    def test_single_pe_never_conflicts(self):
        points, queries, tree = make_problem(n=300, m=32, seed=11)
        _, _, report = approximate_ball_query(
            tree, queries, 0.6, 8, ApproxSetting(2, 3), num_pes=1
        )
        assert report.tree_sram.conflicted == 0
        assert report.nodes_skipped == 0

    def test_more_banks_fewer_skips(self):
        points, queries, tree = make_problem(n=500, m=64, seed=12)
        skips = []
        for banks in (1, 2, 4, 8):
            _, _, report = approximate_ball_query(
                tree, queries, 0.7, 16, ApproxSetting(2, 3),
                banking=TreeBufferBanking(banks), num_pes=8,
            )
            skips.append(report.nodes_skipped)
        assert skips[0] >= skips[-1]

    def test_deterministic(self):
        points, queries, tree = make_problem(seed=13)
        a = approximate_ball_query(tree, queries, 0.5, 8, ApproxSetting(2, 3))
        b = approximate_ball_query(tree, queries, 0.5, 8, ApproxSetting(2, 3))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_rejects_bad_max_neighbors(self):
        points, queries, tree = make_problem()
        with pytest.raises(ValueError):
            approximate_ball_query(tree, queries, 0.5, 0, ApproxSetting())


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    ht=st.integers(min_value=0, max_value=4),
)
def test_property_approx_is_sound(seed, ht):
    """Approximate search never invents neighbors: every reported hit is a
    true radius neighbor, under any setting."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(100, 3))
    queries = rng.normal(size=(10, 3))
    tree = build_kdtree(points)
    idx, cnt, _ = approximate_ball_query(
        tree, queries, 0.5, 8, ApproxSetting(ht, 3), num_pes=4
    )
    for i in range(10):
        for j in range(cnt[i]):
            d = np.linalg.norm(points[idx[i, j]] - queries[i])
            assert d <= 0.5 + 1e-9
