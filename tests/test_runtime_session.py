"""SearchSession: tree caching, LRU memoization, stale-geometry safety."""

import numpy as np
import pytest

from repro.kdtree import ball_query
from repro.runtime import LruCache, SearchSession, geometry_digest


class TestGeometryDigest:
    def test_content_sensitive(self, rng):
        a = rng.normal(size=(20, 3))
        b = a.copy()
        assert geometry_digest(a) == geometry_digest(b)
        b[7, 1] += 1e-12
        assert geometry_digest(a) != geometry_digest(b)

    def test_shape_and_dtype_sensitive(self):
        flat = np.zeros(12)
        assert geometry_digest(flat) != geometry_digest(flat.reshape(4, 3))
        assert geometry_digest(flat) != geometry_digest(flat.astype(np.float32))

    def test_multiple_arrays_are_order_sensitive(self, rng):
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        assert geometry_digest(a, b) != geometry_digest(b, a)


class TestLruCache:
    def test_hit_miss_accounting(self):
        cache = LruCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_evicts_least_recently_used(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LruCache(max_entries=0)

    def test_clear_resets_stats(self):
        """Regression (PR 10): clear() emptied the entries but kept the
        old hit/miss/eviction counters, so the post-clear hit rate lied
        about a cache that no longer held anything."""
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("ghost")
        cache.put("b", 2)
        cache.put("c", 3)  # evicts
        assert (cache.stats.hits, cache.stats.misses, cache.stats.evictions) == (
            1,
            1,
            1,
        )
        cache.clear()
        assert len(cache) == 0
        assert (cache.stats.hits, cache.stats.misses, cache.stats.evictions) == (
            0,
            0,
            0,
        )
        assert cache.stats.hit_rate == 0.0

    def test_reset_stats_keeps_entries(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.get("a")
        cache.reset_stats()
        assert cache.get("a") == 1  # entry survived the counter reset
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_pop_and_drop_where_do_not_skew_stats(self):
        cache = LruCache(max_entries=4)
        cache.put(("x", 1), "a")
        cache.put(("y", 1), "b")
        cache.put(("y", 2), "c")
        assert cache.pop(("x", 1)) == "a"
        assert cache.pop("missing", "fallback") == "fallback"
        assert cache.drop_where(lambda key: key[0] == "y") == 2
        assert len(cache) == 0
        # Maintenance traffic is not caller traffic: counters untouched.
        assert cache.stats.hits == 0 and cache.stats.misses == 0


class TestSearchSession:
    def test_tree_for_reuses_tree(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(50, 3))
        assert session.tree_for(pts) is session.tree_for(pts.copy())
        assert session.trees.stats.hits == 1

    def test_tree_for_rebuilds_on_mutation(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(50, 3))
        t1 = session.tree_for(pts)
        pts[0] += 1.0
        t2 = session.tree_for(pts)
        assert t1 is not t2

    def test_ball_query_matches_reference(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(200, 3))
        queries = pts[:40]
        idx, cnt = session.ball_query(pts, queries, 0.4, 8)
        want_idx, want_cnt = ball_query(session.tree_for(pts), queries, 0.4, 8)
        np.testing.assert_array_equal(idx, want_idx)
        np.testing.assert_array_equal(cnt, want_cnt)

    def test_memoized_query_returns_cached_object(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(80, 3))
        a = session.ball_query(pts, pts[:10], 0.3, 4, cache_key="layer0")
        b = session.ball_query(pts, pts[:10], 0.3, 4, cache_key="layer0")
        assert a is b

    def test_stale_cache_hazard_is_fixed(self, rng):
        # The regression the geometry digest exists for: reuse a cache_key
        # after mutating the points and the session must NOT serve the old
        # geometry's neighbor matrix.
        session = SearchSession()
        pts = rng.normal(size=(120, 3))
        queries = pts[:20].copy()
        stale_idx, _ = session.ball_query(pts, queries, 0.4, 6, cache_key="k")
        pts += rng.normal(size=pts.shape)  # same key, new geometry
        fresh_idx, fresh_cnt = session.ball_query(pts, queries, 0.4, 6, cache_key="k")
        want_idx, want_cnt = ball_query(session.tree_for(pts), queries, 0.4, 6)
        np.testing.assert_array_equal(fresh_idx, want_idx)
        np.testing.assert_array_equal(fresh_cnt, want_cnt)
        assert not np.array_equal(stale_idx, fresh_idx)

    def test_result_cache_is_bounded(self, rng):
        session = SearchSession(max_results=3)
        pts = rng.normal(size=(30, 3))
        for i in range(6):
            session.ball_query(pts, pts[i : i + 4], 0.5, 4, cache_key=("q", i))
        assert len(session.results) == 3
        assert session.results.stats.evictions == 3

    def test_clear(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(30, 3))
        session.ball_query(pts, pts[:4], 0.5, 4, cache_key="k")
        tree = session.tree_for(pts)
        session.split_tree_for(tree, 2)
        session.clear()
        assert len(session.results) == 0 and len(session.trees) == 0
        assert len(session.split_trees) == 0

    def test_split_tree_for_reuses_layout(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(60, 3))
        tree = session.tree_for(pts)
        split = session.split_tree_for(tree, 2)
        assert session.split_tree_for(tree, 2) is split
        assert session.split_tree_for(tree, 3) is not split
        assert session.split_trees.stats.hits == 1

    def test_split_tree_keyed_by_structure(self, rng):
        # Same coordinates, different split rule: structurally different
        # trees must not share split-tree cache entries.
        from repro.kdtree import build_kdtree
        from repro.runtime import tree_digest

        pts = rng.normal(size=(60, 3))
        widest = build_kdtree(pts, split_rule="widest")
        cycled = build_kdtree(pts, split_rule="cycle")
        assert tree_digest(widest) != tree_digest(cycled)
        session = SearchSession()
        assert session.split_tree_for(widest, 2) is not session.split_tree_for(cycled, 2)
