"""Cross-module integration tests.

These pin the contracts *between* subsystems: the functional approximate
search and the cycle-level engine must agree on results; the training
pipeline must produce models whose inference matches a fresh pipeline with
the same banking; accelerator workloads must be runnable end to end on all
variants.
"""

import numpy as np
import pytest

from repro.accel import (
    NeighborSearchEngine,
    PointCloudAccelerator,
    evaluation_hardware,
    evaluation_networks,
    make_mesorasi,
    workload_points,
)
from repro.core import (
    ApproxSetting,
    ApproximationPipeline,
    TreeBufferBanking,
    approximate_ball_query,
)
from repro.geometry import ShapeClassificationDataset
from repro.kdtree import build_kdtree
from repro.models import PointNetPPClassifier
from repro.nn import no_grad


class TestEngineFunctionalAgreement:
    def test_engine_results_match_functional_search(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(512, 3))
        queries = pts[rng.choice(512, 64, replace=False)]
        tree = build_kdtree(pts)
        hw = evaluation_hardware()
        setting = ApproxSetting(3, 5)
        engine_idx, engine_cnt, _ = NeighborSearchEngine(hw).run(
            tree, queries, 0.5, 8, setting
        )
        func_idx, func_cnt, _ = approximate_ball_query(
            tree, queries, 0.5, 8, setting.scaled_to(tree.height),
            banking=TreeBufferBanking(hw.tree_buffer.num_banks),
            num_pes=hw.num_pes,
            simulate_conflicts=True,
        )
        # The engine is the functional model plus timing: results identical.
        assert np.array_equal(engine_idx, func_idx)
        assert np.array_equal(engine_cnt, func_cnt)

    def test_model_inference_independent_of_pipeline_instance(self):
        ds = ShapeClassificationDataset(size=2, num_points=96, rotate=False)
        cloud, _ = ds[0]
        setting = ApproxSetting(2, 4)
        logits = []
        for _ in range(2):
            model = PointNetPPClassifier(
                ds.num_classes, np.random.default_rng(7), ApproximationPipeline()
            )
            model.eval()
            with no_grad():
                logits.append(model(cloud.points, setting).data)
        assert np.array_equal(logits[0], logits[1])


class TestAcceleratorSuiteRunnable:
    @pytest.mark.parametrize("name", list(evaluation_networks()))
    def test_every_network_runs_on_every_variant(self, name):
        hw = evaluation_hardware()
        spec = evaluation_networks()[name]
        pts = workload_points(name)
        runs = {
            "mesorasi": make_mesorasi(hw).run_network(spec, pts, ApproxSetting(0, None)),
            "crescent": PointCloudAccelerator(
                hw, NeighborSearchEngine(hw), True
            ).run_network(spec, pts, ApproxSetting(4, 8)),
        }
        for label, run in runs.items():
            assert run.cycles > 0, (name, label)
            assert run.energy.total > 0, (name, label)
            assert len(run.layers) >= len(spec.layers), (name, label)

    def test_results_deterministic_across_processes_worth(self):
        # Same seed -> identical cycles (no hidden global state).
        hw = evaluation_hardware()
        spec = evaluation_networks()["PointNet++ (c)"]
        pts = workload_points("PointNet++ (c)")
        acc = PointCloudAccelerator(hw, NeighborSearchEngine(hw), True)
        a = acc.run_network(spec, pts, ApproxSetting(4, 8), seed=3)
        b = acc.run_network(spec, pts, ApproxSetting(4, 8), seed=3)
        assert a.cycles == b.cycles
        assert a.energy.total == pytest.approx(b.energy.total)
