"""Equivalence suite for the level-synchronous tree builders.

Pins :func:`repro.runtime.treebuild.vectorized_build_kdtree` bit-identical
to the frozen per-node reference :func:`repro.kdtree.build.build_kdtree`
(all six node arrays, values and dtypes, both split rules), and
:class:`VectorizedSplitTree` layout-identical to
:class:`repro.core.split_tree.SplitTree` — the contract that lets the
session route every cold build through the fast path without any golden
snapshot, cycle count, or serving result shifting by a bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.split_tree import SplitTree
from repro.kdtree.build import build_kdtree
from repro.runtime import SearchSession
from repro.runtime import treebuild as tb
from repro.runtime.treebuild import (
    VectorizedSplitTree,
    euler_tour,
    vectorized_build_kdtree,
)

NODE_FIELDS = ("point_id", "split_dim", "left", "right", "depth", "subtree_size")
RULES = ("widest", "cycle")


def assert_same_tree(ref, fast):
    for field in NODE_FIELDS:
        a, b = getattr(ref, field), getattr(fast, field)
        assert a.dtype == b.dtype, field
        np.testing.assert_array_equal(a, b, err_msg=field)


def cloud(kind, n, rng):
    if kind == "normal":
        return rng.normal(size=(n, 3))
    if kind == "heavy-ties":
        return rng.integers(0, 4, size=(n, 3)).astype(float)
    if kind == "collinear":
        pts = np.zeros((n, 3))
        pts[:, 0] = rng.integers(0, 3, size=n)
        return pts
    if kind == "duplicate-rows":
        return np.repeat(rng.normal(size=(max(1, n // 4), 3)), 4, axis=0)[:n]
    raise AssertionError(kind)


CLOUD_KINDS = ("normal", "heavy-ties", "collinear", "duplicate-rows")


class TestBuilderEquivalence:
    @pytest.mark.parametrize("kind", CLOUD_KINDS)
    def test_randomized_bit_identical(self, kind):
        rng = np.random.default_rng(hash(kind) % 2**32)
        for _ in range(30):
            n = int(rng.integers(1, 300))
            pts = cloud(kind, n, rng)
            for rule in RULES:
                assert_same_tree(
                    build_kdtree(pts, rule), vectorized_build_kdtree(pts, rule)
                )

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_tiny_clouds(self, n):
        rng = np.random.default_rng(n)
        for pts in (rng.normal(size=(n, 3)), np.zeros((n, 3))):
            for rule in RULES:
                assert_same_tree(
                    build_kdtree(pts, rule), vectorized_build_kdtree(pts, rule)
                )

    def test_all_duplicate_points(self):
        pts = np.ones((17, 3)) * 2.5
        for rule in RULES:
            assert_same_tree(
                build_kdtree(pts, rule), vectorized_build_kdtree(pts, rule)
            )

    def test_ties_on_split_value(self):
        # Several points share the median's split coordinate: routing of
        # the tied points is decided purely by the stable sort.
        pts = np.array(
            [[1.0, 9, 0], [1.0, 3, 0], [2.0, 5, 0], [1.0, 7, 0], [0.0, 1, 0]]
        )
        for rule in RULES:
            assert_same_tree(
                build_kdtree(pts, rule), vectorized_build_kdtree(pts, rule)
            )

    def test_unbalanced_short_branches(self):
        # Size-2 subtrees produce right-only nodes (the `parked` descent
        # shape): n = 2 is the smallest, n = 6 nests one per side.
        for n in (2, 6):
            rng = np.random.default_rng(n)
            pts = rng.normal(size=(n, 3))
            for rule in RULES:
                ref = build_kdtree(pts, rule)
                assert (ref.left[ref.subtree_size == 2] < 0).all()
                assert_same_tree(ref, vectorized_build_kdtree(pts, rule))

    def test_negative_zero_ties_with_zero(self):
        pts = np.array([[-0.0, 1, 0], [0.0, 2, 0], [-0.0, 3, 0]])
        assert_same_tree(build_kdtree(pts), vectorized_build_kdtree(pts))

    def test_stable_fallback_path_identical(self, monkeypatch):
        # Force the overflow guard so the kind="stable" branch (huge-n
        # fallback) is exercised on a testable size.
        monkeypatch.setattr(tb, "_FUSED_KEY_LIMIT", 0)
        rng = np.random.default_rng(11)
        pts = rng.integers(0, 5, size=(200, 3)).astype(float)
        for rule in RULES:
            assert_same_tree(
                build_kdtree(pts, rule), vectorized_build_kdtree(pts, rule)
            )

    def test_error_parity(self):
        for bad in (np.empty((0, 3)), np.zeros((4, 2))):
            with pytest.raises(ValueError):
                vectorized_build_kdtree(bad)
        with pytest.raises(ValueError):
            vectorized_build_kdtree(np.zeros((4, 3)), split_rule="bogus")

    def test_result_validates(self):
        tree = vectorized_build_kdtree(np.random.default_rng(0).normal(size=(500, 3)))
        tree.validate()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=2**31),
    rule=st.sampled_from(RULES),
)
def test_property_bit_identical(n, seed, rule):
    pts = np.random.default_rng(seed).normal(size=(n, 3))
    assert_same_tree(build_kdtree(pts, rule), vectorized_build_kdtree(pts, rule))


class TestEulerTour:
    def test_matches_reference_walk(self):
        rng = np.random.default_rng(4)
        for n in (1, 2, 3, 9, 64, 257):
            pts = rng.integers(0, 4, size=(n, 3)).astype(float)
            ref = build_kdtree(pts)
            ref._ensure_euler()
            fast = vectorized_build_kdtree(pts)
            tin, tout = euler_tour(fast)
            np.testing.assert_array_equal(ref.tin, tin)
            np.testing.assert_array_equal(ref.tout, tout)

    def test_caches_onto_tree(self):
        tree = vectorized_build_kdtree(np.random.default_rng(0).normal(size=(20, 3)))
        tin, tout = euler_tour(tree)
        assert tree.tin is tin and tree.tout is tout
        tin2, _ = euler_tour(tree)
        assert tin2 is tin

    def test_respects_existing_cache(self):
        tree = build_kdtree(np.random.default_rng(0).normal(size=(20, 3)))
        tree._ensure_euler()
        tin, _ = euler_tour(tree)
        assert tin is tree.tin


class TestSplitTreeEquivalence:
    def _pair(self, n, seed, kind="normal"):
        rng = np.random.default_rng(seed)
        pts = cloud(kind, n, rng)
        return build_kdtree(pts), vectorized_build_kdtree(pts), rng

    @pytest.mark.parametrize("kind", CLOUD_KINDS)
    def test_layout_identical(self, kind):
        ref_tree, fast_tree, rng = self._pair(200, 8, kind)
        for top_height in (0, 1, 3, ref_tree.height - 1):
            ref = SplitTree(ref_tree, top_height)
            fast = VectorizedSplitTree(fast_tree, top_height)
            np.testing.assert_array_equal(ref.top_nodes, fast.top_nodes)
            np.testing.assert_array_equal(ref.subtree_roots, fast.subtree_roots)
            assert ref.total_bytes == fast.total_bytes
            assert ref.top_tree_bytes() == fast.top_tree_bytes()
            assert ref.max_subtree_nodes() == fast.max_subtree_nodes()
            assert ref._subtree_base == fast._subtree_base
            for node in range(ref_tree.num_nodes):
                assert ref.dram_address_of(node) == fast.dram_address_of(node)
            for root in ref.subtree_roots:
                np.testing.assert_array_equal(
                    ref.subtree_nodes(int(root)), fast.subtree_nodes(int(root))
                )
                assert ref.subtree_bytes(int(root)) == fast.subtree_bytes(int(root))

    def test_parked_root_subtree_extraction(self):
        # subtree_nodes must serve nodes *above* the sub-tree level too
        # (short-branch descents park there); the reference walks the
        # tree on demand, the fast path slices the preorder permutation.
        ref_tree, fast_tree, rng = self._pair(150, 9)
        ref = SplitTree(ref_tree, 2)
        fast = VectorizedSplitTree(fast_tree, 2)
        for node in rng.integers(0, ref_tree.num_nodes, size=16):
            np.testing.assert_array_equal(
                ref.subtree_nodes(int(node)), fast.subtree_nodes(int(node))
            )

    def test_routing_and_occupancy_identical(self):
        ref_tree, fast_tree, rng = self._pair(180, 10)
        queries = rng.normal(size=(64, 3))
        for top_height in (0, 2, 4):
            ref = SplitTree(ref_tree, top_height)
            fast = VectorizedSplitTree(fast_tree, top_height)
            np.testing.assert_array_equal(
                ref.route_queries(queries), fast.route_queries(queries)
            )
            ref_occ = ref.queue_occupancy(queries)
            fast_occ = fast.queue_occupancy(queries)
            assert ref_occ == fast_occ
            # Same insertion order too: DRAM streaming iterates the dict.
            assert list(ref_occ) == list(fast_occ)

    def test_constructor_error_parity(self):
        tree = vectorized_build_kdtree(np.random.default_rng(0).normal(size=(15, 3)))
        for bad in (-1, tree.height, tree.height + 3):
            with pytest.raises(ValueError):
                VectorizedSplitTree(tree, bad)
            with pytest.raises(ValueError):
                SplitTree(tree, bad)


class TestSessionRouting:
    def test_default_builder_is_vector(self):
        session = SearchSession()
        assert session.builder == "vector"
        pts = np.random.default_rng(1).normal(size=(40, 3))
        tree = session.tree_for(pts)
        assert_same_tree(build_kdtree(pts), tree)
        assert isinstance(session.split_tree_for(tree, 2), VectorizedSplitTree)

    def test_reference_builder_option(self):
        session = SearchSession(builder="reference")
        pts = np.random.default_rng(2).normal(size=(40, 3))
        tree = session.tree_for(pts)
        assert_same_tree(build_kdtree(pts), tree)
        split = session.split_tree_for(tree, 2)
        assert isinstance(split, SplitTree)
        assert not isinstance(split, VectorizedSplitTree)

    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError):
            SearchSession(builder="turbo")

    def test_trees_still_cached(self):
        session = SearchSession()
        pts = np.random.default_rng(3).normal(size=(40, 3))
        assert session.tree_for(pts) is session.tree_for(pts)
        tree = session.tree_for(pts)
        assert session.split_tree_for(tree, 1) is session.split_tree_for(tree, 1)

    def test_vector_and_reference_sessions_agree_end_to_end(self):
        rng = np.random.default_rng(5)
        pts = rng.integers(0, 6, size=(120, 3)).astype(float)
        queries = rng.normal(size=(16, 3)) * 2
        fast = SearchSession().ball_query(pts, queries, 1.5, 8)
        ref = SearchSession(builder="reference").ball_query(pts, queries, 1.5, 8)
        np.testing.assert_array_equal(fast[0], ref[0])
        np.testing.assert_array_equal(fast[1], ref[1])
