"""Unit tests for dataset classes and transforms."""

import numpy as np
import pytest

from repro.geometry import (
    Compose,
    Jitter,
    LidarDetectionDataset,
    PartSegmentationDataset,
    RandomDropout,
    RandomScale,
    RandomYawRotation,
    ShapeClassificationDataset,
    PointCloud,
)


class TestShapeClassificationDataset:
    def test_len_and_indexing(self):
        ds = ShapeClassificationDataset(size=16, num_points=64, seed=0)
        assert len(ds) == 16
        cloud, label = ds[0]
        assert len(cloud) == 64
        assert 0 <= label < ds.num_classes

    def test_deterministic(self):
        ds = ShapeClassificationDataset(size=8, num_points=32, seed=7)
        a, la = ds[3]
        b, lb = ds[3]
        assert np.array_equal(a.points, b.points)
        assert la == lb

    def test_out_of_range(self):
        ds = ShapeClassificationDataset(size=4)
        with pytest.raises(IndexError):
            ds[4]
        with pytest.raises(IndexError):
            ds[-1]

    def test_classes_cycle(self):
        ds = ShapeClassificationDataset(size=16, num_points=32)
        labels = [ds[i][1] for i in range(16)]
        # Balanced: every class appears size/num_classes times.
        assert labels[: ds.num_classes] == list(range(ds.num_classes))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ShapeClassificationDataset(size=0)

    def test_disjoint_seeds_give_disjoint_data(self):
        train = ShapeClassificationDataset(size=4, num_points=32, seed=0)
        test = ShapeClassificationDataset(size=4, num_points=32, seed=10_000)
        assert not np.array_equal(train[0][0].points, test[0][0].points)


class TestPartSegmentationDataset:
    def test_indexing(self):
        ds = PartSegmentationDataset(size=6, num_points=60)
        cloud = ds[0]
        assert len(cloud) == 60
        assert cloud.labels is not None

    def test_categories_cycle(self):
        ds = PartSegmentationDataset(size=6)
        cats = [ds[i].attrs["category"] for i in range(6)]
        assert cats[:3] == ds.categories


class TestLidarDetectionDataset:
    def test_indexing(self):
        ds = LidarDetectionDataset(size=2, num_points=1024, num_cars=2)
        scene = ds[1]
        assert len(scene.cloud) == 1024
        assert len(scene.boxes) == 2


class TestTransforms:
    def make(self):
        rng = np.random.default_rng(0)
        return PointCloud(rng.normal(size=(32, 3)), labels=np.arange(32))

    def test_yaw_rotation_preserves_z_norms(self):
        cloud = self.make()
        out = RandomYawRotation()(cloud, np.random.default_rng(1))
        assert np.allclose(out.points[:, 2], cloud.points[:, 2])
        assert np.allclose(
            np.linalg.norm(out.points[:, :2], axis=1),
            np.linalg.norm(cloud.points[:, :2], axis=1),
        )

    def test_jitter_bounded(self):
        cloud = self.make()
        out = Jitter(sigma=0.01, clip=0.02)(cloud, np.random.default_rng(1))
        assert np.abs(out.points - cloud.points).max() <= 0.02 + 1e-12

    def test_jitter_rejects_negative(self):
        with pytest.raises(ValueError):
            Jitter(sigma=-1)

    def test_scale_bounds(self):
        cloud = self.make()
        out = RandomScale(0.5, 0.5)(cloud, np.random.default_rng(1))
        assert np.allclose(out.points, cloud.points * 0.5)

    def test_scale_invalid(self):
        with pytest.raises(ValueError):
            RandomScale(2.0, 1.0)

    def test_dropout_keeps_size(self):
        cloud = self.make()
        out = RandomDropout(0.9)(cloud, np.random.default_rng(3))
        assert len(out) == len(cloud)

    def test_dropout_invalid(self):
        with pytest.raises(ValueError):
            RandomDropout(1.0)

    def test_compose_order(self):
        cloud = self.make()
        pipeline = Compose([RandomScale(2.0, 2.0), RandomScale(0.5, 0.5)])
        out = pipeline(cloud, np.random.default_rng(0))
        assert np.allclose(out.points, cloud.points)
