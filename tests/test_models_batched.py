"""Stacked mini-batch paths: bit-identity against the per-sample paths.

The contract of every ``forward_batch`` / ``reduction="per_sample"`` /
``batch_size=`` addition is that batching changes *nothing* but speed:

* row ``b`` of a stacked forward equals the per-sample forward of sample
  ``b`` bit for bit (all four networks);
* the vectorized geometry plans (batched FPS, 3-NN interpolation) equal
  the historical per-sample/per-point loops bit for bit;
* per-sample loss rows equal the scalar per-sample losses bit for bit;
* ``train(batch_size=1)`` reproduces the default per-sample loop — losses
  *and* trained parameters — bit for bit, and batched ``evaluate`` returns
  the same metric the retired per-sample evaluation loop computed.
"""

import numpy as np
import pytest

from repro.core import ApproxSetting
from repro.geometry import (
    LidarDetectionDataset,
    PartSegmentationDataset,
    ShapeClassificationDataset,
    num_part_classes,
)
from repro.kdtree.brute import brute_knn_search
from repro.models import (
    DensePointClassifier,
    FrustumPointNet,
    PointNetPPClassifier,
    PointNetPPSegmenter,
)
from repro.models.layers import (
    farthest_point_sampling,
    farthest_point_sampling_batched,
    interpolation_plan,
)
from repro.nn.losses import huber_loss, mse_loss, softmax_cross_entropy
from repro.training import (
    ClassificationTrainer,
    DetectionTrainer,
    MixedSetting,
    SegmentationTrainer,
)

MIXED = MixedSetting(top_heights=[0, 2], elision_heights=[5, None])
SETTING = ApproxSetting(top_height=2, elision_height=None)


def _clouds(batch=3, n=96, seed=0):
    return np.random.default_rng(seed).normal(scale=0.5, size=(batch, n, 3))


class TestGeometryPlans:
    def test_batched_fps_rows_bit_identical(self):
        pts = _clouds(4, 80, seed=1)
        batched = farthest_point_sampling_batched(pts, 24)
        for b in range(len(pts)):
            np.testing.assert_array_equal(
                batched[b], farthest_point_sampling(pts[b], 24)
            )

    def test_batched_fps_validates_shape_and_count(self):
        with pytest.raises(ValueError):
            farthest_point_sampling_batched(np.zeros((5, 3)), 2)
        with pytest.raises(ValueError):
            farthest_point_sampling_batched(np.zeros((2, 5, 3)), 6)

    def test_interpolation_plan_matches_per_point_loop(self):
        # The retired FeaturePropagation inner loop, verbatim.
        rng = np.random.default_rng(2)
        dense = rng.normal(size=(50, 3))
        coarse = rng.normal(size=(12, 3))
        k = min(3, len(coarse))
        idx_ref = np.empty((len(dense), k), dtype=np.int64)
        w_ref = np.empty((len(dense), k))
        for i in range(len(dense)):
            nearest = brute_knn_search(coarse, dense[i], k)
            idx_ref[i] = nearest
            d = np.linalg.norm(coarse[nearest] - dense[i], axis=1)
            inv = 1.0 / np.maximum(d, 1e-8)
            w_ref[i] = inv / inv.sum()
        idx, w = interpolation_plan(dense, coarse, 3)
        np.testing.assert_array_equal(idx, idx_ref)
        assert w.tobytes() == w_ref.tobytes()

    def test_interpolation_plan_batched_rows_match_unbatched(self):
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(3, 40, 3))
        coarse = rng.normal(size=(3, 9, 3))
        idx, w = interpolation_plan(dense, coarse, 3)
        for b in range(3):
            idx_b, w_b = interpolation_plan(dense[b], coarse[b], 3)
            np.testing.assert_array_equal(idx[b], idx_b)
            assert w[b].tobytes() == w_b.tobytes()

    def test_interpolation_plan_caps_k_and_checks_leading_axes(self):
        rng = np.random.default_rng(4)
        idx, _w = interpolation_plan(rng.normal(size=(5, 3)), rng.normal(size=(2, 3)), 3)
        assert idx.shape == (5, 2)
        with pytest.raises(ValueError):
            interpolation_plan(
                rng.normal(size=(2, 5, 3)), rng.normal(size=(3, 4, 3)), 3
            )


class TestModelForwardBatch:
    """Row ``b`` of forward_batch == forward(sample ``b``), bitwise."""

    def _assert_rows(self, stacked, per_sample_fn, batch):
        for b in range(batch):
            assert stacked.data[b].tobytes() == per_sample_fn(b).data.tobytes()

    def test_classifier(self):
        pts = _clouds(3, 96, seed=5)
        model = PointNetPPClassifier(4, np.random.default_rng(0))
        model.eval()
        settings = [SETTING, ApproxSetting(), ApproxSetting(3, 5)]
        out = model.forward_batch(pts, settings)
        self._assert_rows(out, lambda b: model(pts[b], settings[b]), 3)
        assert out.shape == (3, 1, 4)

    def test_segmenter(self):
        pts = _clouds(2, 96, seed=6)
        model = PointNetPPSegmenter(5, np.random.default_rng(1))
        model.eval()
        out = model.forward_batch(pts, SETTING)  # single setting broadcasts
        self._assert_rows(out, lambda b: model(pts[b], SETTING), 2)
        assert out.shape == (2, 96, 5)

    def test_densepoint(self):
        pts = _clouds(2, 96, seed=7)
        model = DensePointClassifier(4, np.random.default_rng(2))
        model.eval()
        out = model.forward_batch(pts, SETTING)
        self._assert_rows(out, lambda b: model(pts[b], SETTING), 2)

    def test_fpointnet(self):
        pts = _clouds(2, 96, seed=8)
        model = FrustumPointNet(np.random.default_rng(3))
        model.eval()
        pred = model.forward_batch(pts, SETTING)
        for b in range(2):
            single = model(pts[b], SETTING)
            sliced = pred.sample(b)
            assert (
                sliced.segmentation_logits.data.tobytes()
                == single.segmentation_logits.data.tobytes()
            )
            assert sliced.box_params.data.tobytes() == single.box_params.data.tobytes()

    def test_batch_gradients_flow(self):
        pts = _clouds(3, 96, seed=9)
        model = PointNetPPClassifier(4, np.random.default_rng(0))
        model.eval()  # keep dropout out of it; gradients still flow
        labels = np.array([[0], [1], [2]])
        loss = softmax_cross_entropy(
            model.forward_batch(pts, SETTING), labels, reduction="per_sample"
        ).mean()
        model.zero_grad()
        loss.backward()
        total = sum(
            float(np.abs(p.grad).sum())
            for p in model.parameters()
            if p.grad is not None
        )
        assert total > 0

    def test_settings_length_is_validated(self):
        pts = _clouds(3, 96, seed=10)
        model = PointNetPPClassifier(4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.forward_batch(pts, [SETTING, SETTING])


class TestPerSampleReduction:
    def test_cross_entropy_rows_match_scalar_losses(self):
        rng = np.random.default_rng(11)
        from repro.nn.tensor import Tensor

        logits = rng.normal(size=(4, 7, 5))
        labels = rng.integers(0, 5, size=(4, 7))
        per = softmax_cross_entropy(Tensor(logits), labels, reduction="per_sample")
        assert per.shape == (4,)
        for b in range(4):
            scalar = softmax_cross_entropy(Tensor(logits[b]), labels[b])
            assert per.data[b] == scalar.data

    def test_huber_and_mse_rows_match_scalar_losses(self):
        rng = np.random.default_rng(12)
        from repro.nn.tensor import Tensor

        pred = rng.normal(scale=2.0, size=(3, 1, 8))
        target = rng.normal(size=(3, 1, 8))
        hub = huber_loss(Tensor(pred), target, reduction="per_sample")
        mse = mse_loss(Tensor(pred), target, reduction="per_sample")
        for b in range(3):
            assert hub.data[b] == huber_loss(Tensor(pred[b]), target[b]).data
            assert mse.data[b] == mse_loss(Tensor(pred[b]), target[b]).data

    def test_unknown_reduction_rejected(self):
        from repro.nn.tensor import Tensor

        with pytest.raises(ValueError):
            mse_loss(Tensor(np.ones((2, 2))), np.ones((2, 2)), reduction="sum")
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.float64(1.0)), 1.0, reduction="per_sample")


@pytest.fixture(scope="module")
def cls_data():
    return ShapeClassificationDataset(
        size=8, num_points=96, seed=0, occlusion=0.0, noise=0.01, rotate=False
    )


class TestMiniBatchTraining:
    def _trainer(self, dataset, seed=7):
        model = PointNetPPClassifier(dataset.num_classes, np.random.default_rng(3))
        return ClassificationTrainer(model, MIXED, lr=2e-3, seed=seed)

    def test_batch_size_one_bit_identical_to_default_loop(self, cls_data):
        base = self._trainer(cls_data)
        ref = base.train(cls_data, epochs=2).epoch_losses
        batched = self._trainer(cls_data)
        got = batched.train(cls_data, epochs=2, batch_size=1).epoch_losses
        assert got == ref
        for p_ref, p_got in zip(
            base.model.parameters(), batched.model.parameters()
        ):
            assert p_ref.data.tobytes() == p_got.data.tobytes()

    def test_minibatch_losses_match_per_sample_losses_first_step(self, cls_data):
        # Before any optimizer step the parameters agree, so the first
        # chunk's recorded per-sample losses must equal what the default
        # loop computes for those same (sample, setting) pairs.
        from repro.runtime import EpochPlan

        batch = len(cls_data)  # one chunk == whole epoch: no steps between
        ref = self._trainer(cls_data, seed=5)
        plan = EpochPlan.draw(
            np.random.default_rng(5), ref.sampler, len(cls_data), 1
        )
        schedule = plan.schedules[0]
        expected = []
        for setting, pos in zip(schedule.settings, schedule.order):
            ref.model.train()
            loss = ref._loss(cls_data[int(pos)], setting, cache_key=int(pos))
            expected.append(loss.item())
        got = self._trainer(cls_data, seed=5)
        report = got.train(cls_data, epochs=1, batch_size=batch)
        assert report.epoch_losses == [float(np.mean(expected))]

    def test_minibatch_training_learns(self, cls_data):
        trainer = self._trainer(cls_data)
        report = trainer.train(cls_data, epochs=4, batch_size=4)
        assert len(report.epoch_losses) == 4
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_invalid_batch_size_rejected(self, cls_data):
        with pytest.raises(ValueError):
            self._trainer(cls_data).train(cls_data, epochs=1, batch_size=0)

    def test_segmentation_minibatch_runs(self):
        data = PartSegmentationDataset(size=6, num_points=96, seed=4, noise=0.01)
        model = PointNetPPSegmenter(num_part_classes(), np.random.default_rng(0))
        trainer = SegmentationTrainer(
            model, num_classes=num_part_classes(), sampler=MIXED, lr=3e-3
        )
        report = trainer.train(data, epochs=1, batch_size=3)
        assert len(report.epoch_losses) == 1 and np.isfinite(report.final_loss)

    def test_detection_minibatch_runs(self):
        data = LidarDetectionDataset(size=4, num_points=1024, seed=6, num_cars=2)
        model = FrustumPointNet(np.random.default_rng(0))
        trainer = DetectionTrainer(model, frustum_points=96, sampler=MIXED)
        report = trainer.train(data, epochs=1, batch_size=2)
        assert len(report.epoch_losses) == 1 and np.isfinite(report.final_loss)


class TestBatchedEvaluate:
    def test_classification_evaluate_matches_per_sample_loop(self, cls_data):
        from repro.nn.tensor import no_grad
        from repro.training.metrics import overall_accuracy

        trainer = self._trained(cls_data)
        batched = trainer.evaluate(cls_data, SETTING)
        # The retired per-sample evaluation loop, verbatim.
        trainer.model.eval()
        preds, labels = [], []
        with no_grad():
            for i in range(len(cls_data)):
                cloud, label = cls_data[i]
                logits = trainer.model(cloud.points, SETTING, cache_key=("eval", i))
                preds.append(int(logits.data.argmax()))
                labels.append(label)
        assert batched == overall_accuracy(np.array(preds), np.array(labels))

    def _trained(self, dataset):
        model = PointNetPPClassifier(dataset.num_classes, np.random.default_rng(1))
        trainer = ClassificationTrainer(model, MIXED, lr=2e-3, seed=3)
        trainer.train(dataset, epochs=1, batch_size=4)
        return trainer

    def test_segmentation_evaluate_matches_per_sample_loop(self):
        from repro.geometry.partseg import PART_CATEGORIES, part_id
        from repro.nn.tensor import no_grad
        from repro.training.metrics import mean_iou

        data = PartSegmentationDataset(size=5, num_points=96, seed=9, noise=0.01)
        model = PointNetPPSegmenter(num_part_classes(), np.random.default_rng(2))
        trainer = SegmentationTrainer(model, num_classes=num_part_classes())
        batched = trainer.evaluate(data, SETTING)
        trainer.model.eval()
        all_preds, all_labels = [], []
        with no_grad():
            for i in range(len(data)):
                cloud = data[i]
                logits = trainer.model(cloud.points, SETTING, cache_key=("eval", i))
                category = cloud.attrs.get("category")
                if category in PART_CATEGORIES:
                    allowed = np.array(
                        [part_id(p) for p in PART_CATEGORIES[category]]
                    )
                    preds = allowed[logits.data[:, allowed].argmax(axis=-1)]
                else:
                    preds = logits.data.argmax(axis=-1)
                all_preds.append(preds)
                all_labels.append(cloud.labels)
        assert batched == mean_iou(
            np.concatenate(all_preds),
            np.concatenate(all_labels),
            num_part_classes(),
        )

    def test_detection_evaluate_matches_per_sample_loop(self):
        from repro.nn.tensor import no_grad
        from repro.training.metrics import detection_iou_geomean

        data = LidarDetectionDataset(size=3, num_points=1024, seed=8, num_cars=2)
        model = FrustumPointNet(np.random.default_rng(4))
        trainer = DetectionTrainer(model, frustum_points=96)
        batched = trainer.evaluate(data, SETTING)
        trainer.model.eval()
        predicted, truth = [], []
        with no_grad():
            for i in range(len(data)):
                scene = data[i]
                box = scene.boxes[0]
                crop, _ = trainer._frustum_sample(scene, box, seed=10_000 + i)
                pred = trainer.model(crop, SETTING, cache_key=("eval", i))
                predicted.append(pred.decode(crop))
                truth.append(box)
        assert batched == detection_iou_geomean(predicted, truth)

    def test_evaluate_falls_back_for_models_without_forward_batch(self, cls_data):
        from repro.nn.module import Module, Parameter
        from repro.nn.tensor import Tensor

        class Blind(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros((3, cls_data.num_classes)))

            def forward(self, points, setting, cache_key=None):
                pooled = np.asarray(points, dtype=np.float64).mean(
                    axis=0, keepdims=True
                )
                return Tensor(pooled) @ self.w

        trainer = ClassificationTrainer(Blind(), MIXED, seed=0)
        acc = trainer.evaluate(cls_data, SETTING)
        assert 0.0 <= acc <= 1.0
